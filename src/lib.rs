//! # emp — Enriched Max-P Regionalization (facade crate)
//!
//! A from-scratch Rust implementation of *"EMP: Max-P Regionalization with
//! Enriched Constraints"* (Kang & Magdy, ICDE 2022): the EMP problem model,
//! the three-phase **FaCT** solver, the classic max-p-regions baseline, an
//! exact solver for tiny instances, a geometry/contiguity substrate, and
//! synthetic census datasets.
//!
//! This crate re-exports the workspace members under stable paths:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `emp-core` | constraints, FaCT solver, validation |
//! | [`geo`] | `emp-geo` | polygons, contiguity detection, WKT/GeoJSON |
//! | [`graph`] | `emp-graph` | contiguity graphs, connectivity machinery |
//! | [`data`] | `emp-data` | synthetic census datasets (paper presets) |
//! | [`baseline`] | `emp-baseline` | max-p-regions comparison heuristic |
//! | [`exact`] | `emp-exact` | exact branch-and-bound for tiny instances |
//! | [`oracle`] | `emp-oracle` | differential/metamorphic oracle, fuzz harness |
//!
//! ## Quickstart
//!
//! ```
//! use emp::prelude::*;
//!
//! // A synthetic 100-area dataset with census-like attributes.
//! let dataset = emp::data::build_sized("demo", 100);
//! let instance = dataset.to_instance().unwrap();
//!
//! // The paper's default query (Table II), written as SQL-ish text.
//! let constraints = parse_constraints(
//!     "MIN(POP16UP) <= 3000 AND AVG(EMPLOYED) IN [1500, 3500] AND SUM(TOTALPOP) >= 20k",
//! ).unwrap();
//!
//! let report = solve(&instance, &constraints, &FactConfig::default()).unwrap();
//! println!("p = {}, unassigned = {}", report.p(), report.solution.unassigned.len());
//! validate_solution(&instance, &constraints, &report.solution).unwrap();
//! ```

pub use emp_baseline as baseline;
pub use emp_core as core;
pub use emp_data as data;
pub use emp_exact as exact;
pub use emp_geo as geo;
pub use emp_graph as graph;
pub use emp_obs as obs;
pub use emp_oracle as oracle;

/// Convenient top-level re-exports for the common workflow.
pub mod prelude {
    pub use emp_baseline::{solve_mp, MpConfig};
    pub use emp_core::prelude::*;
    pub use emp_core::{p_upper_bound, Verdict};
    pub use emp_data::prelude::*;
    pub use emp_exact::{exact_solve, ExactConfig};
    pub use emp_graph::ContiguityGraph;
}
