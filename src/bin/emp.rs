//! `emp` — command-line EMP regionalization.
//!
//! ```text
//! emp generate    --areas N [--islands K] [--seed S] --out PREFIX
//! emp info        --input FILE[.geojson|.shp]
//! emp feasibility --input FILE --query "CONSTRAINTS"
//! emp solve       --input FILE --query "CONSTRAINTS" [--dissim ATTR]
//!                 [--seed S] [--iterations K] [--merge-limit M]
//!                 [--no-local-search] [--out result.geojson] [--stats]
//! ```
//!
//! `--input` accepts a GeoJSON FeatureCollection or an ESRI shapefile (the
//! matching `.dbf` is looked up next to the `.shp`). `solve` writes the
//! input features back out with a `REGION` property (`-1` = unassigned,
//! the paper's `U_0`).

use emp::core::{describe, EmpError, FactConfig};
use emp::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage("missing command");
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "feasibility" => cmd_feasibility(&opts),
        "solve" => cmd_solve(&opts),
        "--help" | "-h" | "help" => {
            usage("");
            return ExitCode::SUCCESS;
        }
        other => return usage(&format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

/// Parsed command-line options (flat namespace shared by all subcommands).
#[derive(Default)]
struct Options {
    input: Option<PathBuf>,
    out: Option<PathBuf>,
    query: Option<String>,
    dissim: Option<String>,
    areas: usize,
    islands: usize,
    seed: u64,
    iterations: usize,
    merge_limit: usize,
    local_search: bool,
    stats: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            areas: 400,
            islands: 1,
            seed: 2022,
            iterations: 3,
            merge_limit: 3,
            local_search: true,
            ..Default::default()
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} needs a value"))
            };
            match arg.as_str() {
                "--input" => o.input = Some(PathBuf::from(value("--input")?)),
                "--out" => o.out = Some(PathBuf::from(value("--out")?)),
                "--query" => o.query = Some(value("--query")?),
                "--dissim" => o.dissim = Some(value("--dissim")?),
                "--areas" => o.areas = parse_num(&value("--areas")?)?,
                "--islands" => o.islands = parse_num(&value("--islands")?)?,
                "--seed" => o.seed = parse_num(&value("--seed")?)? as u64,
                "--iterations" => o.iterations = parse_num(&value("--iterations")?)?,
                "--merge-limit" => o.merge_limit = parse_num(&value("--merge-limit")?)?,
                "--no-local-search" => o.local_search = false,
                "--stats" => o.stats = true,
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(o)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage:\n  emp generate    --areas N [--islands K] [--seed S] --out PREFIX\n  \
         emp info        --input FILE\n  \
         emp feasibility --input FILE --query \"...\"\n  \
         emp solve       --input FILE --query \"...\" [--dissim ATTR] [--seed S]\n                  \
         [--iterations K] [--merge-limit M] [--no-local-search]\n                  \
         [--out result.geojson] [--stats]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn load_dataset(opts: &Options) -> Result<Dataset, Box<dyn std::error::Error>> {
    let path = opts
        .input
        .as_ref()
        .ok_or("--input is required for this command")?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    match path.extension().and_then(|e| e.to_str()) {
        Some("geojson") | Some("json") => {
            let text = std::fs::read_to_string(path)?;
            Ok(Dataset::from_geojson(name, &text)?)
        }
        Some("shp") => {
            let shp = std::fs::read(path)?;
            let dbf = std::fs::read(path.with_extension("dbf"))?;
            Ok(Dataset::from_shapefile(name, &shp, &dbf)?)
        }
        other => {
            Err(format!("unsupported input extension {other:?} (want .geojson or .shp)").into())
        }
    }
}

fn cmd_generate(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let out = opts.out.as_ref().ok_or("--out PREFIX is required")?;
    let spec = TessellationSpec {
        islands: opts.islands,
        seed: opts.seed,
        ..TessellationSpec::squareish(opts.areas, opts.seed)
    };
    let dataset = Dataset::generate("generated", &spec);
    if out.extension().and_then(|e| e.to_str()) == Some("geojson") {
        std::fs::write(out, dataset.to_geojson())?;
        eprintln!("wrote {} areas to {}", dataset.len(), out.display());
    } else {
        let bundle = dataset.to_shapefile()?;
        let base: &Path = out;
        std::fs::write(base.with_extension("shp"), &bundle.shp)?;
        std::fs::write(base.with_extension("shx"), &bundle.shx)?;
        std::fs::write(base.with_extension("dbf"), &bundle.dbf)?;
        eprintln!(
            "wrote {} areas to {}.{{shp,shx,dbf}}",
            dataset.len(),
            base.display()
        );
    }
    Ok(())
}

fn cmd_info(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let dataset = load_dataset(opts)?;
    let components = emp::graph::connected_components(&dataset.graph).count();
    println!("dataset: {}", dataset.name);
    println!("areas: {}", dataset.len());
    println!("adjacency edges: {}", dataset.graph.edge_count());
    println!("mean degree: {:.2}", dataset.graph.mean_degree());
    println!("connected components: {components}");
    println!("attributes:");
    let attrs = &dataset.attributes;
    for (ci, name) in attrs.names().iter().enumerate() {
        println!(
            "  {name}: min {:.1}, mean {:.1}, max {:.1}",
            attrs.min(ci),
            attrs.mean(ci),
            attrs.max(ci)
        );
    }
    Ok(())
}

fn instance_of(dataset: &Dataset, opts: &Options) -> Result<EmpInstance, EmpError> {
    match &opts.dissim {
        Some(attr) => dataset.to_instance_with(attr),
        None => {
            // Default to HOUSEHOLDS (paper) or the first attribute.
            let fallback = dataset
                .attributes
                .names()
                .first()
                .cloned()
                .unwrap_or_default();
            dataset
                .to_instance()
                .or_else(|_| dataset.to_instance_with(&fallback))
        }
    }
}

fn cmd_feasibility(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let dataset = load_dataset(opts)?;
    let query_text = opts.query.as_ref().ok_or("--query is required")?;
    let constraints = parse_constraints(query_text)?;
    let instance = instance_of(&dataset, opts)?;
    let engine = emp::core::engine::ConstraintEngine::compile(&instance, &constraints)?;
    let report = emp::core::feasibility::feasibility_phase(&engine);
    for (c, v) in constraints.constraints().iter().zip(&report.verdicts) {
        println!("{c}: {v}");
    }
    println!("invalid areas: {}", report.invalid_areas.len());
    println!("seed areas: {}", report.seeds.len());
    println!(
        "p upper bound: {}",
        emp::core::p_upper_bound(&instance, &constraints)?
    );
    if report.is_infeasible() {
        return Err("query is infeasible on this dataset".into());
    }
    Ok(())
}

fn cmd_solve(opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let dataset = load_dataset(opts)?;
    let query_text = opts.query.as_ref().ok_or("--query is required")?;
    let constraints = parse_constraints(query_text)?;
    let instance = instance_of(&dataset, opts)?;

    let config = FactConfig {
        construction_iterations: opts.iterations,
        merge_limit: opts.merge_limit,
        local_search: opts.local_search,
        seed: opts.seed,
        ..FactConfig::default()
    };
    let report = solve(&instance, &constraints, &config)?;
    validate_solution(&instance, &constraints, &report.solution)
        .map_err(|problems| problems.join("; "))?;

    let improved = match report.improvement() {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".to_string(),
    };
    println!(
        "p = {}, unassigned = {} ({:.1}%), heterogeneity {:.1} (tabu improved {improved})",
        report.p(),
        report.solution.unassigned.len(),
        report.solution.unassigned_fraction() * 100.0,
        report.solution.heterogeneity,
    );
    println!(
        "times: feasibility {:.3}s, construction {:.3}s, local search {:.3}s",
        report.timings.feasibility, report.timings.construction, report.timings.local_search
    );
    if opts.stats {
        let stats = describe(&instance, &constraints, &report.solution)?;
        println!("\n{stats}");
    }
    if let Some(out) = &opts.out {
        let mut features = Vec::with_capacity(dataset.len());
        for (i, geom) in dataset.areas.iter().enumerate() {
            let mut properties = std::collections::BTreeMap::new();
            for (ci, name) in dataset.attributes.names().iter().enumerate() {
                properties.insert(name.clone(), dataset.attributes.value(ci, i));
            }
            let region = report.solution.assignment[i]
                .map(|r| r as f64)
                .unwrap_or(-1.0);
            properties.insert("REGION".to_string(), region);
            features.push(emp::geo::geojson::AreaFeature {
                geometry: geom.clone(),
                properties,
            });
        }
        std::fs::write(out, emp::geo::geojson::write_feature_collection(&features))?;
        eprintln!("wrote labeled GeoJSON to {}", out.display());
    }
    Ok(())
}
