//! Exploring the feasibility phase: how FaCT signals infeasible queries and
//! lets the analyst tune them (paper §V-A), plus GeoJSON export of a result.
//!
//! ```text
//! cargo run --release --example feasibility_explorer
//! ```

use emp::core::EmpError;
use emp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = emp::data::build_sized("explorer", 300);
    let instance = dataset.to_instance()?;
    let attrs = instance.attributes();
    let emp_col = attrs.column_index("EMPLOYED").expect("column");
    println!(
        "EMPLOYED spans [{:.0}, {:.0}], mean {:.0}",
        attrs.min(emp_col),
        attrs.max(emp_col),
        attrs.mean(emp_col)
    );

    // A ladder of queries from hopeless to comfortable.
    let queries = [
        // Hard infeasible: no area can witness this MIN range.
        "MIN(EMPLOYED) IN [50000, 60000]",
        // Theorem-3 case: the global average is far below the range; a full
        // partition is impossible, but regions + unassigned areas are fine.
        "AVG(EMPLOYED) IN [4000, 5000]",
        // Filtering case: areas above the MAX bound must be dropped.
        "MAX(EMPLOYED) <= 3000 AND SUM(TOTALPOP) >= 15k",
        // Comfortable query.
        "AVG(EMPLOYED) IN [1200, 3800] AND SUM(TOTALPOP) >= 15k",
    ];

    for text in queries {
        println!("\nquery: {text}");
        let constraints = parse_constraints(text)?;
        match solve(&instance, &constraints, &FactConfig::seeded(9)) {
            Err(EmpError::Infeasible { reasons }) => {
                println!("  -> hard infeasible: {}", reasons.join("; "));
            }
            Err(other) => return Err(other.into()),
            Ok(report) => {
                for (c, v) in constraints
                    .constraints()
                    .iter()
                    .zip(&report.feasibility.verdicts)
                {
                    println!("  {c}: {v}");
                }
                println!(
                    "  -> p = {}, unassigned = {} ({:.1}%), filtered invalid = {}",
                    report.p(),
                    report.solution.unassigned.len(),
                    report.solution.unassigned_fraction() * 100.0,
                    report.feasibility.invalid_areas.len()
                );
                // The theoretical p upper bound helps judge solution quality.
                let bound = p_upper_bound(&instance, &constraints)?;
                println!("  -> theoretical p upper bound: {bound}");
            }
        }
    }

    // Export the final solvable query's dataset to GeoJSON for GIS tools.
    let geojson = dataset.to_geojson();
    let path = std::env::temp_dir().join("emp_explorer.geojson");
    std::fs::write(&path, &geojson)?;
    println!(
        "\ndataset exported to {} ({} bytes); round-trips losslessly:",
        path.display(),
        geojson.len()
    );
    let back = Dataset::from_geojson("reload", &geojson)?;
    println!(
        "  reloaded {} areas, contiguity graph identical: {}",
        back.len(),
        back.graph == dataset.graph
    );
    Ok(())
}
