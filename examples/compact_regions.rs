//! Alternative local-search objectives (paper §III: "our work can support
//! alternative definitions, such as improving spatial compactness or
//! balancing multiple criteria").
//!
//! Solves the same EMP query three times — heterogeneity objective (the
//! paper's default), pure spatial compactness, and a balanced combination —
//! and compares the resulting region shapes.
//!
//! ```text
//! cargo run --release --example compact_regions
//! ```

use emp::core::objective::{Channel, ObjectiveSpec};
use emp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = emp::data::build_sized("compact", 400);
    let constraints = parse_constraints("SUM(TOTALPOP) >= 40k")?;

    // Area centroids feed the compactness channels.
    let (xs, ys): (Vec<f64>, Vec<f64>) = dataset
        .areas
        .iter()
        .map(|a| {
            let c = a.centroid();
            (c.x, c.y)
        })
        .unzip();
    let dissim = dataset
        .attributes
        .column_by_name("HOUSEHOLDS")
        .expect("generated column")
        .to_vec();

    let objectives: Vec<(&str, ObjectiveSpec)> = vec![
        (
            "heterogeneity (paper default)",
            ObjectiveSpec::heterogeneity(dissim.clone()),
        ),
        (
            "spatial compactness",
            ObjectiveSpec::compactness(xs.clone(), ys.clone())?,
        ),
        (
            "balanced (heterogeneity + compactness)",
            ObjectiveSpec::from_channels(vec![
                Channel {
                    name: "dissim".into(),
                    values: dissim.clone(),
                    weight: 1.0,
                },
                // Centroid units are cells; weight them up so both criteria
                // matter at similar magnitudes.
                Channel {
                    name: "x".into(),
                    values: xs,
                    weight: 300.0,
                },
                Channel {
                    name: "y".into(),
                    values: ys,
                    weight: 300.0,
                },
            ])?,
        ),
    ];

    println!("objective                                |   p | H (dissim) | mean bbox diag");
    for (name, spec) in objectives {
        let instance = dataset.to_instance()?.with_objective(spec)?;
        let report = solve(&instance, &constraints, &FactConfig::seeded(21))?;
        validate_solution(&instance, &constraints, &report.solution).map_err(|p| p.join("; "))?;

        // Report the *paper's* heterogeneity for comparison regardless of
        // the optimized objective, plus a shape measure (mean region bbox
        // diagonal — smaller = more compact).
        let h: f64 = report
            .solution
            .regions
            .iter()
            .map(|members| {
                let vals: Vec<f64> = members.iter().map(|&a| dissim[a as usize]).collect();
                emp::core::heterogeneity::DissimStat::from_values(&vals).pairwise()
            })
            .sum();
        let mean_diag: f64 = report
            .solution
            .regions
            .iter()
            .map(|members| {
                let bbox = members.iter().fold(emp::geo::BBox::EMPTY, |acc, &a| {
                    acc.union(&dataset.areas[a as usize].bbox())
                });
                (bbox.width().powi(2) + bbox.height().powi(2)).sqrt()
            })
            .sum::<f64>()
            / report.p().max(1) as f64;
        println!("{name:40} | {:3} | {h:10.0} | {mean_diag:10.2}", report.p());
    }

    println!(
        "\nthe compactness objective trades dissimilarity homogeneity for tighter\n\
         region shapes; the balanced objective sits in between — all three keep\n\
         the same constraints satisfied."
    );
    Ok(())
}
