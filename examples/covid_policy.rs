//! The paper's §I motivating scenario: COVID-19 policy regions.
//!
//! "Policymakers can issue a query to identify reasonably populated regions
//! with a total population ≥ 200000, an average monthly income between
//! $3000 to $5000, and public transportation passengers ≥ 10000."
//!
//! The classic max-p-regions formulation cannot express this query (three
//! simultaneous constraints, one with both bounds); EMP can.
//!
//! ```text
//! cargo run --release --example covid_policy
//! ```

use emp::core::attr::AttributeTable;
use emp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a metropolitan-scale synthetic dataset and attach the scenario's
    // attributes: population, mean monthly income, transit ridership.
    let base = emp::data::build_sized("covid", 800);
    let n = base.len();
    let mut rng = StdRng::seed_from_u64(0xC0319);

    let mut attrs = AttributeTable::new(n);
    // Tract population ~ 4k with spread; reuse the calibrated TOTALPOP.
    let totalpop = base
        .attributes
        .column_by_name("TOTALPOP")
        .expect("generated column")
        .to_vec();
    // Income: log-normal around $3.8k/month.
    let income_dist = LogNormal::new(8.23, 0.25)?;
    let income: Vec<f64> = (0..n).map(|_| income_dist.sample(&mut rng)).collect();
    // Transit ridership correlates with population density.
    let transit: Vec<f64> = totalpop
        .iter()
        .map(|&p| p * rng.gen_range(0.15..0.6))
        .collect();
    attrs.push_column("TOTALPOP", totalpop)?;
    attrs.push_column("INCOME", income)?;
    attrs.push_column("TRANSIT", transit)?;

    // Dissimilarity: income — policy regions should be economically
    // homogeneous.
    let instance = EmpInstance::new(base.graph, attrs, "INCOME")?;

    let query = parse_constraints(
        "SUM(TOTALPOP) >= 200k AND AVG(INCOME) IN [3000, 5000] AND SUM(TRANSIT) >= 10k",
    )?;
    println!("policy query: {query}");

    let report = solve(&instance, &query, &FactConfig::seeded(11))?;
    println!(
        "p = {} policy regions, {} unassigned areas",
        report.p(),
        report.solution.unassigned.len()
    );

    // Report per-region statistics for the policymaker.
    let attrs = instance.attributes();
    let (pop_c, inc_c, tr_c) = (
        attrs.column_index("TOTALPOP").expect("column exists"),
        attrs.column_index("INCOME").expect("column exists"),
        attrs.column_index("TRANSIT").expect("column exists"),
    );
    println!("\nregion | areas |  population |  avg income | transit");
    for (i, region) in report.solution.regions.iter().enumerate() {
        let pop: f64 = region.iter().map(|&a| attrs.value(pop_c, a as usize)).sum();
        let inc: f64 = region
            .iter()
            .map(|&a| attrs.value(inc_c, a as usize))
            .sum::<f64>()
            / region.len() as f64;
        let tr: f64 = region.iter().map(|&a| attrs.value(tr_c, a as usize)).sum();
        println!(
            "{i:6} | {:5} | {pop:11.0} | {inc:11.0} | {tr:7.0}",
            region.len()
        );
        assert!(pop >= 200_000.0 && (3000.0..=5000.0).contains(&inc) && tr >= 10_000.0);
    }

    validate_solution(&instance, &query, &report.solution)
        .map_err(|problems| problems.join("; "))?;
    println!("\nall policy regions verified feasible");
    Ok(())
}
