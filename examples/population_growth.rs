//! The paper's §I second scenario: population-growth analysis regions.
//!
//! "Studying the changes in population requires considering multiple factors
//! ... such as the minimum population of each area, the maximum school
//! drop-out rate, the average age of the population, and total
//! unemployment." — four constraints with four different aggregates, one per
//! family, on four different attributes.
//!
//! ```text
//! cargo run --release --example population_growth
//! ```

use emp::core::attr::AttributeTable;
use emp::core::Aggregate;
use emp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = emp::data::build_sized("growth", 600);
    let n = base.len();
    let mut rng = StdRng::seed_from_u64(0x6A0);

    let mut attrs = AttributeTable::new(n);
    let population = base
        .attributes
        .column_by_name("TOTALPOP")
        .expect("generated column")
        .to_vec();
    // Drop-out rate in percent, mostly small with a heavy tail.
    let dropout: Vec<f64> = (0..n)
        .map(|_| {
            let base: f64 = rng.gen_range(1.0..9.0);
            if rng.gen_bool(0.08) {
                base + rng.gen_range(5.0..25.0)
            } else {
                base
            }
        })
        .collect();
    // Mean age per area.
    let age: Vec<f64> = (0..n).map(|_| rng.gen_range(24.0..58.0)).collect();
    // Unemployed count correlates with population.
    let unemployed: Vec<f64> = population
        .iter()
        .map(|&p| p * rng.gen_range(0.02..0.12))
        .collect();
    attrs.push_column("POPULATION", population)?;
    attrs.push_column("DROPOUT", dropout)?;
    attrs.push_column("AGE", age)?;
    attrs.push_column("UNEMPLOYED", unemployed)?;

    let instance = EmpInstance::new(base.graph, attrs, "POPULATION")?;

    // One constraint per aggregate family:
    //   every area populated enough, no high-dropout outliers, working-age
    //   average, and enough unemployment mass for the study to be meaningful.
    let query = parse_constraints(
        "MIN(POPULATION) >= 1000 AND MAX(DROPOUT) <= 12 \
         AND AVG(AGE) IN [30, 45] AND SUM(UNEMPLOYED) >= 2000",
    )?;
    println!("growth-analysis query: {query}");

    // The feasibility phase tells the analyst what filtering the query
    // implies before any regions are built.
    let report = solve(&instance, &query, &FactConfig::seeded(5))?;
    for (c, v) in query.constraints().iter().zip(&report.feasibility.verdicts) {
        println!("  {c}: {v}");
    }
    println!(
        "invalid areas filtered into U_0 by the feasibility phase: {}",
        report.feasibility.invalid_areas.len()
    );

    println!(
        "\np = {} regions, {} unassigned, heterogeneity improved {:.1}%",
        report.p(),
        report.solution.unassigned.len(),
        report.improvement().unwrap_or(0.0) * 100.0
    );

    // Show that each constraint family did its job on the first regions.
    let engine_check = |region: &Vec<u32>| -> (f64, f64, f64, f64) {
        let attrs = instance.attributes();
        let g =
            |name: &str, a: u32| attrs.value(attrs.column_index(name).expect("column"), a as usize);
        let min_pop = region
            .iter()
            .map(|&a| g("POPULATION", a))
            .fold(f64::INFINITY, f64::min);
        let max_drop = region
            .iter()
            .map(|&a| g("DROPOUT", a))
            .fold(0.0f64, f64::max);
        let avg_age = region.iter().map(|&a| g("AGE", a)).sum::<f64>() / region.len() as f64;
        let unemp: f64 = region.iter().map(|&a| g("UNEMPLOYED", a)).sum();
        (min_pop, max_drop, avg_age, unemp)
    };
    println!("\nregion | areas | min pop | max dropout | avg age | unemployed");
    for (i, region) in report.solution.regions.iter().take(8).enumerate() {
        let (mp, md, aa, un) = engine_check(region);
        println!(
            "{i:6} | {:5} | {mp:7.0} | {md:11.1} | {aa:7.1} | {un:10.0}",
            region.len()
        );
    }

    assert!(query.has(Aggregate::Min) && query.has(Aggregate::Max));
    validate_solution(&instance, &query, &report.solution)
        .map_err(|problems| problems.join("; "))?;
    println!("\nall regions verified against all four constraint families");
    Ok(())
}
