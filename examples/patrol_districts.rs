//! The paper's §I third scenario: police patrol sector design
//! (Camacho-Collados et al.) — balance workload across sectors using COUNT
//! bounds and a two-sided SUM range on calls-for-service.
//!
//! Also demonstrates EMP on a *multi-component* dataset (a city with two
//! disconnected precinct clusters), which classic MP-regions cannot handle,
//! and compares against the MP-regions baseline where expressible.
//!
//! ```text
//! cargo run --release --example patrol_districts
//! ```

use emp::core::attr::AttributeTable;
use emp::prelude::*;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A two-island city: 300 beats in two disconnected clusters.
    let spec = emp::data::TessellationSpec {
        n: 300,
        row_width: 20,
        islands: 2,
        jitter: 0.2,
        seed: 77,
    };
    let city = Dataset::generate("patrol-city", &spec);
    let components = emp::graph::connected_components(&city.graph).count();
    println!(
        "city: {} beats in {components} disconnected clusters",
        city.len()
    );

    let n = city.len();
    let mut rng = StdRng::seed_from_u64(0x911);
    let mut attrs = AttributeTable::new(n);
    // Calls for service per beat; a few hot spots.
    let calls: Vec<f64> = (0..n)
        .map(|_| {
            let base: f64 = rng.gen_range(20.0..120.0);
            if rng.gen_bool(0.05) {
                base * rng.gen_range(3.0..6.0)
            } else {
                base
            }
        })
        .collect();
    // Patrol workload score (response times, area, priorities).
    let workload: Vec<f64> = calls.iter().map(|&c| c * rng.gen_range(0.8..1.3)).collect();
    attrs.push_column("CALLS", calls)?;
    attrs.push_column("WORKLOAD", workload)?;
    let instance = EmpInstance::new(city.graph, attrs, "WORKLOAD")?;

    // Balanced sectors: a two-sided calls range keeps sectors neither idle
    // nor overloaded; COUNT keeps them geographically manageable.
    let query = parse_constraints("SUM(CALLS) IN [600, 1400] AND COUNT(*) BETWEEN 3 AND 12")?;
    println!("patrol query: {query}");

    let report = solve(&instance, &query, &FactConfig::seeded(4))?;
    println!(
        "p = {} patrol sectors, {} beats unassigned",
        report.p(),
        report.solution.unassigned.len()
    );

    // Workload balance summary.
    let attrs = instance.attributes();
    let calls_c = attrs.column_index("CALLS").expect("column");
    let sums: Vec<f64> = report
        .solution
        .regions
        .iter()
        .map(|r| r.iter().map(|&a| attrs.value(calls_c, a as usize)).sum())
        .collect();
    let (min, max) = (
        sums.iter().copied().fold(f64::INFINITY, f64::min),
        sums.iter().copied().fold(0.0f64, f64::max),
    );
    let mean = sums.iter().sum::<f64>() / sums.len().max(1) as f64;
    println!(
        "sector call volume: min {min:.0}, mean {mean:.0}, max {max:.0} (imbalance {:.2}x)",
        max / min
    );

    validate_solution(&instance, &query, &report.solution)
        .map_err(|problems| problems.join("; "))?;
    println!("all sectors contiguous and within the workload band");

    // Contrast with the MP-regions baseline: it can only express the lower
    // bound, so sector sizes drift apart.
    let mp = solve_mp(&instance, "CALLS", 600.0, &MpConfig::seeded(4))?;
    let mp_sums: Vec<f64> = mp
        .solution
        .regions
        .iter()
        .map(|r| r.iter().map(|&a| attrs.value(calls_c, a as usize)).sum())
        .collect();
    let mp_max = mp_sums.iter().copied().fold(0.0f64, f64::max);
    let mp_min = mp_sums.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nMP-regions baseline (lower bound only): p = {}, imbalance {:.2}x (EMP: {:.2}x)",
        mp.p(),
        mp_max / mp_min,
        max / min
    );
    Ok(())
}
