//! Quickstart: generate a dataset, pose an enriched max-p query, inspect the
//! regions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use emp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic census-like dataset: 400 areas, four attributes
    //    (TOTALPOP, POP16UP, EMPLOYED, HOUSEHOLDS), rook contiguity derived
    //    from the polygon tessellation.
    let dataset = emp::data::build_sized("quickstart", 400);
    println!(
        "dataset: {} areas, {} adjacency edges, mean degree {:.2}",
        dataset.len(),
        dataset.graph.edge_count(),
        dataset.graph.mean_degree()
    );

    // 2. An EMP query — the paper's Table II defaults. Constraints are
    //    SQL-inspired and can be written as text.
    let constraints = parse_constraints(
        "MIN(POP16UP) <= 3000 AND AVG(EMPLOYED) IN [1500, 3500] AND SUM(TOTALPOP) >= 20k",
    )?;
    println!("query: {constraints}");

    // 3. Solve with FaCT (feasibility -> construction -> tabu search).
    let instance = dataset.to_instance()?;
    let report = solve(&instance, &constraints, &FactConfig::default())?;

    println!(
        "\nFaCT found p = {} regions, {} unassigned areas ({:.1}%)",
        report.p(),
        report.solution.unassigned.len(),
        report.solution.unassigned_fraction() * 100.0
    );
    println!(
        "heterogeneity: {:.0} -> {:.0} ({:.1}% improvement from tabu search)",
        report.heterogeneity_before,
        report.solution.heterogeneity,
        report.improvement().unwrap_or(0.0) * 100.0
    );
    println!(
        "phase times: feasibility {:.3}s, construction {:.3}s, local search {:.3}s",
        report.timings.feasibility, report.timings.construction, report.timings.local_search
    );

    // 4. Inspect the first few regions: every region satisfies every
    //    constraint.
    let attrs = instance.attributes();
    let pop_col = attrs.column_index("TOTALPOP").expect("column exists");
    for (i, region) in report.solution.regions.iter().take(5).enumerate() {
        let pop: f64 = region
            .iter()
            .map(|&a| attrs.value(pop_col, a as usize))
            .sum();
        println!(
            "region {i}: {} areas, total population {:.0}",
            region.len(),
            pop
        );
    }

    // 5. The validator re-checks everything from scratch (contiguity,
    //    disjointness, constraints, heterogeneity).
    validate_solution(&instance, &constraints, &report.solution)
        .map_err(|problems| problems.join("; "))?;
    println!("\nsolution validated: all regions contiguous and feasible");
    Ok(())
}
