//! Work-stealing job pool for the experiment harness.
//!
//! Experiments decompose into independent *cells* — one (dataset, combo,
//! seed, options) solve each — whose costs vary by orders of magnitude
//! (a 200-area p-only solve vs. a 50k-area tabu run). A fixed chunking
//! would leave workers idle behind the slowest chunk, so the pool uses
//! classic work stealing over `crossbeam::deque`: a global [`Injector`]
//! feeds per-worker FIFO deques, and idle workers steal from the injector
//! first, then from their siblings.
//!
//! **Determinism contract:** tasks are indexed at submission and results are
//! written into their submission slot, so [`JobPool::run`] returns results
//! in submission order no matter which worker ran what when. Combined with
//! per-job buffered telemetry (replayed in submission order, see
//! [`emp_obs::BufferSink`]) this makes harness output independent of the
//! worker count and of scheduling.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::Mutex;

/// A boxed job returning `T`.
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Derives a per-cell seed from a base seed and a position tag path
/// (experiment ordinal, cell ordinal, …) with a SplitMix64-style avalanche.
/// Distinct tag paths give statistically independent seeds; the same path
/// always gives the same seed, so results do not depend on execution order.
pub fn derive_seed(base: u64, tags: &[u64]) -> u64 {
    let mut z = base ^ 0x9E37_79B9_7F4A_7C15;
    for (i, &t) in tags.iter().enumerate() {
        z = z
            .wrapping_add(t.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((i as u64 + 1).rotate_left(24));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// A fixed-width work-stealing pool. Cheap to construct; threads are scoped
/// to each [`run`](JobPool::run) call, so a pool holds no resources between
/// runs.
#[derive(Clone, Copy, Debug)]
pub struct JobPool {
    jobs: usize,
}

impl JobPool {
    /// A pool with `jobs` workers (0 is clamped to 1).
    pub fn new(jobs: usize) -> Self {
        JobPool { jobs: jobs.max(1) }
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns their results **in submission order**.
    ///
    /// With one worker (or one task) the tasks run inline on the calling
    /// thread — the sequential reference path. Otherwise `min(jobs, tasks)`
    /// scoped threads drain a shared injector, stealing from each other
    /// when their local deque runs dry. A panicking task propagates the
    /// panic to the caller after the scope joins.
    pub fn run<'a, T: Send>(&self, tasks: Vec<Job<'a, T>>) -> Vec<T> {
        let n = tasks.len();
        if self.jobs <= 1 || n <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }

        let injector: Injector<(usize, Job<'a, T>)> = Injector::new();
        for task in tasks.into_iter().enumerate() {
            injector.push(task);
        }

        let workers: Vec<Worker<(usize, Job<'a, T>)>> =
            (0..self.jobs.min(n)).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<(usize, Job<'a, T>)>> =
            workers.iter().map(Worker::stealer).collect();

        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for local in workers {
                let injector = &injector;
                let stealers = &stealers;
                let slots = &slots;
                scope.spawn(move || {
                    while let Some((index, task)) = find_task(&local, injector, stealers) {
                        let result = task();
                        *slots[index].lock().expect("result slot poisoned") = Some(result);
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every submitted job produces a result")
            })
            .collect()
    }
}

/// Next task for a worker: local deque, then the injector (stealing a batch
/// into the local deque), then sibling deques. `None` once everything is
/// drained — jobs never enqueue new jobs, so empty-everywhere is terminal.
fn find_task<T>(local: &Worker<T>, injector: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    loop {
        if let Some(task) = local.pop() {
            return Some(task);
        }
        let mut retry = false;
        match injector.steal_batch_and_pop(local) {
            Steal::Success(task) => return Some(task),
            Steal::Retry => retry = true,
            Steal::Empty => {}
        }
        for stealer in stealers {
            match stealer.steal() {
                Steal::Success(task) => return Some(task),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed_tasks(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| Box::new(move || i * i) as Job<'static, usize>)
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let expect: Vec<usize> = (0..40).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8] {
            let pool = JobPool::new(jobs);
            assert_eq!(pool.run(boxed_tasks(40)), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(JobPool::new(0).jobs(), 1);
        assert_eq!(JobPool::new(0).run(boxed_tasks(3)), vec![0, 1, 4]);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Job<'_, ()>> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_, ()>
            })
            .collect();
        JobPool::new(4).run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn uneven_task_costs_still_order_correctly() {
        // Front-load slow tasks so stealing actually reorders execution.
        let tasks: Vec<Job<'_, usize>> = (0..24usize)
            .map(|i| {
                Box::new(move || {
                    if i < 4 {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    i
                }) as Job<'_, usize>
            })
            .collect();
        assert_eq!(JobPool::new(6).run(tasks), (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let a = derive_seed(2022, &[1, 2, 3]);
        assert_eq!(a, derive_seed(2022, &[1, 2, 3]), "stable");
        assert_ne!(a, derive_seed(2022, &[1, 3, 2]), "order-sensitive");
        assert_ne!(a, derive_seed(2023, &[1, 2, 3]), "base-sensitive");
        let mut seeds: Vec<u64> = (0..64).map(|i| derive_seed(7, &[i, 0])).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 64, "no collisions in a small fan-out");
    }
}
