//! `emp_top` — a `top`-style console for a running `repro --metrics-addr`.
//!
//! ```text
//! emp_top [--addr HOST:PORT] [--interval-ms MS] [--once]
//!
//!   --addr         the `/progress` endpoint to poll (default:
//!                  EMP_METRICS_ADDR or 127.0.0.1:9184)
//!   --interval-ms  poll period (default: 1000)
//!   --once         print one snapshot and exit (scripting / CI)
//! ```
//!
//! Each poll prints one line per registered solve: phase, iteration,
//! current/best heterogeneity, boundary size, and deadline headroom. The
//! endpoint serves plain HTTP/1.1 JSON lines (DESIGN.md §13), so the whole
//! client is a `TcpStream` and a JSON parse.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() {
    let mut addr: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut once = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next(),
            "--interval-ms" => {
                interval_ms = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--interval-ms needs milliseconds"));
            }
            "--once" => once = true,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let addr = addr
        .or_else(|| std::env::var("EMP_METRICS_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:9184".to_string());

    loop {
        match fetch_progress(&addr) {
            Ok(body) => print_snapshot(&body),
            Err(e) => eprintln!("emp_top: {addr}: {e}"),
        }
        if once {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// One `GET /progress` over a fresh connection (the server closes after
/// each response), returning the body.
fn fetch_progress(addr: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET /progress HTTP/1.1\r\nHost: {addr}\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
    else {
        return Err(std::io::Error::other("malformed HTTP response"));
    };
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("").to_string();
        return Err(std::io::Error::other(format!("server said '{status}'")));
    }
    Ok(body.to_string())
}

/// Renders one status line per solve from the `/progress` JSON lines.
fn print_snapshot(body: &str) {
    let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        println!("(no active solves)");
        return;
    }
    for line in lines {
        let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
        let Ok(v) = parsed else {
            eprintln!("emp_top: skipping unparseable line: {line}");
            continue;
        };
        let label = v["solve"].as_str().unwrap_or("?");
        let phase = v["phase"].as_str().unwrap_or("?");
        let iter = v["iteration"].as_u64().unwrap_or(0);
        let best = v["best_h"].as_f64();
        let current = v["current_h"].as_f64();
        let boundary = v["boundary_areas"].as_u64().unwrap_or(0);
        let elapsed = v["elapsed_s"].as_f64().unwrap_or(0.0);
        let h = match (current, best) {
            (Some(c), Some(b)) => format!("h={c:.3} best={b:.3}"),
            _ => "h=-".to_string(),
        };
        let deadline = match v["deadline_remaining_s"].as_f64() {
            Some(s) => format!(" deadline={s:.1}s"),
            None => String::new(),
        };
        let done = if v["done"].as_bool() == Some(true) {
            let reason = v["stop_reason"].as_str().unwrap_or("done");
            format!(" [{reason}]")
        } else {
            String::new()
        };
        println!(
            "{label:<28} {phase:<12} iter={iter:<8} {h} boundary={boundary} \
             elapsed={elapsed:.1}s{deadline}{done}"
        );
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: emp_top [--addr HOST:PORT] [--interval-ms MS] [--once]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
