//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--fast] [--dataset NAME] [--jobs N] [--out DIR] [--trace DIR]
//!       [--bench] [--mask-timings] [--deadline-ms MS] [--checkpoint DIR]
//!       [--metrics-addr ADDR] [EXPERIMENT...]
//!
//!   EXPERIMENT     one or more of: datasets table3 table4 min-runtime avg
//!                  sum-runtime scalability exact ablations all (default: all)
//!   --fast         small datasets + capped tabu (seconds instead of minutes)
//!   --dataset      default dataset preset for single-dataset experiments
//!                  (default: 2k, the paper's default)
//!   --jobs N       worker threads for the experiment cell pool (default:
//!                  EMP_JOBS or the host parallelism; N >= 1). Output is
//!                  identical for every N — only wall clock changes.
//!   --out DIR      output directory (default: results/)
//!   --trace DIR    also stream solver telemetry: one `<experiment>.jsonl`
//!                  event trace per experiment (see EXPERIMENTS.md)
//!   --bench        run every experiment twice — sequential (`--jobs 1`) and
//!                  parallel — verify the canonical outputs match, and write
//!                  per-experiment wall clocks to `BENCH_repro.json`
//!   --mask-timings replace wall-clock cells with `*` in rendered tables and
//!                  the INDEX.md elapsed column (for byte-exact diffing)
//!   --deadline-ms  per-cell wall-clock budget: cells that hit it report
//!                  their best valid incumbent instead of running on; each
//!                  experiment then logs a greppable
//!                  `budget: N cell(s) stopped early` line (DESIGN.md §11)
//!   --checkpoint   directory where deadline-interrupted FaCT cells dump
//!                  resumable checkpoints (requires --deadline-ms)
//!   --metrics-addr bind an embedded HTTP endpoint (e.g. `127.0.0.1:9184`,
//!                  port 0 picks a free port) serving live `/metrics`
//!                  (Prometheus text) and `/progress` (one JSON line per
//!                  solve) while experiments run; also honors the
//!                  `EMP_METRICS_ADDR` env var (flag wins)
//! ```
//!
//! A fixed-capacity flight recorder rides along on every run: the last
//! events of the solver stream are kept in a ring, dumped as replayable
//! JSONL next to the checkpoint for deadline-interrupted cells and to
//! `<out>/flight-panic.jsonl` on panic (DESIGN.md §13).
//!
//! Each experiment prints its tables and writes `<name>.md` / `<name>.csv`
//! into the output directory.

use emp_bench::canon;
use emp_bench::experiments::{registry, ExpContext, Experiment};
use emp_bench::table::Table;
use emp_obs::{
    JsonlWriter, LiveRegistry, MetricsServer, RingSink, SharedSink, DEFAULT_FLIGHT_CAPACITY,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut fast = false;
    let mut dataset = "2k".to_string();
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut bench = false;
    let mut mask_timings = false;
    let mut deadline_ms: Option<u64> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut metrics_addr: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--deadline-ms" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--deadline-ms needs a value"));
                deadline_ms = Some(v.parse().unwrap_or_else(|_| {
                    usage(&format!("--deadline-ms needs milliseconds, got '{v}'"))
                }));
            }
            "--checkpoint" => {
                checkpoint_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--checkpoint needs a directory")),
                ));
            }
            "--dataset" => {
                dataset = args
                    .next()
                    .unwrap_or_else(|| usage("--dataset needs a value"));
            }
            "--out" => {
                out_dir =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--trace" => {
                trace_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace needs a directory")),
                ));
            }
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage("--jobs needs a value"));
                jobs = Some(parse_jobs(&v));
            }
            "--metrics-addr" => {
                metrics_addr = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--metrics-addr needs host:port")),
                );
            }
            "--bench" => bench = true,
            "--mask-timings" => mask_timings = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag '{other}'")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = registry().iter().map(|e| e.name.to_string()).collect();
    }

    // Resolve the worker count once: an explicit `--jobs` wins and is
    // exported as EMP_JOBS so the data/geo auto-parallel paths follow suit.
    let jobs = jobs.unwrap_or_else(emp_geo::par::effective_jobs);
    std::env::set_var("EMP_JOBS", jobs.to_string());

    if checkpoint_dir.is_some() && deadline_ms.is_none() {
        usage("--checkpoint requires --deadline-ms (checkpoints only exist for interrupted cells)");
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }
    if let Some(dir) = &checkpoint_dir {
        std::fs::create_dir_all(dir).expect("create checkpoint directory");
    }

    let reg = registry();
    let selected: Vec<&Experiment> = wanted
        .iter()
        .map(|name| {
            reg.iter()
                .find(|e| e.name == *name)
                .unwrap_or_else(|| usage(&format!("unknown experiment '{name}'")))
        })
        .collect();

    let budget = BudgetArgs {
        deadline_ms,
        checkpoint_dir,
    };

    // Live telemetry: the registry only exists (and cells only pay the
    // mirror-flush cost) when an endpoint is actually bound. The flight
    // recorder always rides along — it is a fixed-capacity ring with zero
    // steady-state allocation, and a panic with no tail to dump is worse.
    let metrics_addr = metrics_addr.or_else(|| std::env::var("EMP_METRICS_ADDR").ok());
    let live = metrics_addr
        .as_ref()
        .map(|_| Arc::clone(LiveRegistry::global()));
    let flight = RingSink::new(DEFAULT_FLIGHT_CAPACITY);
    install_panic_hook(flight.clone(), out_dir.join("flight-panic.jsonl"));
    let _metrics_server = metrics_addr.map(|addr| {
        let server = MetricsServer::start(&addr, Arc::clone(LiveRegistry::global()))
            .unwrap_or_else(|e| usage(&format!("--metrics-addr {addr}: {e}")));
        eprintln!(
            ">> metrics: serving http://{0}/metrics and http://{0}/progress",
            server.local_addr()
        );
        server
    });
    let telemetry = Telemetry { live, flight };

    if bench {
        run_bench(
            &selected,
            fast,
            &dataset,
            jobs,
            &out_dir,
            &trace_dir,
            mask_timings,
            &budget,
            &telemetry,
        );
    } else {
        run_once(
            &selected,
            fast,
            &dataset,
            jobs,
            &out_dir,
            &trace_dir,
            mask_timings,
            &budget,
            &telemetry,
        );
    }
}

/// Live-telemetry plumbing threaded into every experiment context: the
/// registry backing `/metrics` + `/progress` (only when `--metrics-addr`
/// bound an endpoint) and the always-on flight-recorder ring.
struct Telemetry {
    live: Option<Arc<LiveRegistry>>,
    flight: RingSink,
}

/// Dumps the flight-recorder tail before the default panic report. The
/// dump is best-effort: a failed write must not mask the panic itself.
fn install_panic_hook(flight: RingSink, path: PathBuf) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if std::fs::write(&path, flight.dump_jsonl()).is_ok() {
            eprintln!("flight recorder dumped to {}", path.display());
        }
        previous(info);
    }));
}

/// Lifecycle-control settings (`--deadline-ms` / `--checkpoint`) threaded
/// into every experiment context.
struct BudgetArgs {
    deadline_ms: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
}

/// Per-experiment degradation summary: how many solver cells the deadline
/// stopped early. Printed (greppably) whenever a deadline is active — zero
/// included, so CI can assert the budget path actually ran.
fn report_stopped(budget: &BudgetArgs, name: &str) {
    if let Some(ms) = budget.deadline_ms {
        let n = emp_bench::runner::take_stopped_cells();
        eprintln!("   budget: {name}: {n} cell(s) stopped early (deadline {ms}ms)");
    }
}

/// The normal mode: one pass, one shared context (warm dataset cache).
#[allow(clippy::too_many_arguments)]
fn run_once(
    selected: &[&Experiment],
    fast: bool,
    dataset: &str,
    jobs: usize,
    out_dir: &Path,
    trace_dir: &Option<PathBuf>,
    mask_timings: bool,
    budget: &BudgetArgs,
    telemetry: &Telemetry,
) {
    let mut ctx = context(fast, dataset, jobs, budget, telemetry);
    let mut index = String::from("# EMP reproduction results\n\n");
    for exp in selected {
        eprintln!(">> running {} (covers {})", exp.name, exp.covers);
        let trace_sink = open_trace(trace_dir, exp.name);
        ctx.trace = trace_sink.clone();
        let t0 = Instant::now();
        let tables = (exp.run)(&ctx);
        let elapsed = t0.elapsed().as_secs_f64();
        report_stopped(budget, exp.name);
        flush_trace(trace_sink);
        if mask_timings {
            canonicalize_trace_file(trace_dir, exp.name);
        }
        ctx.trace = None;
        eprintln!("   done in {elapsed:.1}s ({} tables)", tables.len());
        write_experiment(exp, &tables, out_dir, mask_timings, true);
        index.push_str(&index_line(exp, elapsed, mask_timings));
    }
    write_file(&out_dir.join("INDEX.md"), &index);
    eprintln!(">> results written to {}", out_dir.display());
}

/// `--bench`: each experiment runs twice — a sequential reference pass and
/// the parallel pass — against fresh contexts (cold caches, fair timing).
/// The canonically-masked outputs of both passes must match byte-for-byte;
/// wall clocks land in `BENCH_repro.json`.
#[allow(clippy::too_many_arguments)]
fn run_bench(
    selected: &[&Experiment],
    fast: bool,
    dataset: &str,
    jobs: usize,
    out_dir: &Path,
    trace_dir: &Option<PathBuf>,
    mask_timings: bool,
    budget: &BudgetArgs,
    telemetry: &Telemetry,
) {
    let mut index = String::from("# EMP reproduction results\n\n");
    let mut entries = String::new();
    let mut all_identical = true;
    for exp in selected {
        eprintln!(">> benching {} (sequential pass)", exp.name);
        std::env::set_var("EMP_JOBS", "1");
        let ctx_seq = context(fast, dataset, 1, budget, telemetry);
        let t0 = Instant::now();
        let seq_tables = (exp.run)(&ctx_seq);
        let sequential_s = t0.elapsed().as_secs_f64();

        eprintln!(">> benching {} (parallel pass, {jobs} jobs)", exp.name);
        std::env::set_var("EMP_JOBS", jobs.to_string());
        let mut ctx_par = context(fast, dataset, jobs, budget, telemetry);
        let trace_sink = open_trace(trace_dir, exp.name);
        ctx_par.trace = trace_sink.clone();
        let t1 = Instant::now();
        let tables = (exp.run)(&ctx_par);
        let parallel_s = t1.elapsed().as_secs_f64();
        report_stopped(budget, exp.name);
        flush_trace(trace_sink);
        if mask_timings {
            canonicalize_trace_file(trace_dir, exp.name);
        }

        let identical = canonical_render(&seq_tables) == canonical_render(&tables);
        all_identical &= identical;
        if !identical {
            eprintln!("!! {}: sequential and parallel outputs DIVERGED", exp.name);
        }
        let speedup = sequential_s / parallel_s.max(1e-9);
        eprintln!(
            "   sequential {sequential_s:.2}s, parallel {parallel_s:.2}s ({speedup:.2}x), identical: {identical}"
        );
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"name\": \"{}\", \"sequential_s\": {sequential_s:.3}, \"parallel_s\": {parallel_s:.3}, \"speedup\": {speedup:.2}, \"identical_output\": {identical}}}",
            exp.name
        ));

        write_experiment(exp, &tables, out_dir, mask_timings, false);
        index.push_str(&index_line(exp, parallel_s, mask_timings));
    }
    write_file(&out_dir.join("INDEX.md"), &index);

    // Hand-rolled JSON: the schema is flat and fixed, and keeping the writer
    // dependency-free matters more than a serializer here.
    let report = format!(
        "{{\n  \"schema\": \"emp-bench-repro/1\",\n  \"fast\": {fast},\n  \"jobs\": {jobs},\n  \"host_parallelism\": {},\n  \"all_identical\": {all_identical},\n  \"experiments\": [\n{entries}\n  ]\n}}\n",
        emp_geo::par::host_parallelism(),
    );
    let path = out_dir.join("BENCH_repro.json");
    write_file(&path, &report);
    eprintln!(">> bench report written to {}", path.display());
    if !all_identical {
        eprintln!("error: parallel output diverged from the sequential reference");
        std::process::exit(1);
    }
}

fn context(
    fast: bool,
    dataset: &str,
    jobs: usize,
    budget: &BudgetArgs,
    telemetry: &Telemetry,
) -> ExpContext {
    let mut ctx = if fast {
        ExpContext::fast()
    } else {
        ExpContext::new()
    };
    ctx.dataset = dataset.to_string();
    ctx.jobs = jobs;
    ctx.deadline_ms = budget.deadline_ms;
    ctx.checkpoint_dir = budget.checkpoint_dir.clone();
    ctx.live = telemetry.live.clone();
    ctx.flight = Some(telemetry.flight.clone());
    ctx
}

/// One JSONL event trace per experiment; per-cell telemetry is buffered and
/// replayed in submission order, so the file is identical for every `--jobs`.
fn open_trace(trace_dir: &Option<PathBuf>, name: &str) -> Option<SharedSink> {
    trace_dir.as_ref().map(|dir| {
        let path = dir.join(format!("{name}.jsonl"));
        let writer = JsonlWriter::create(&path)
            .unwrap_or_else(|e| panic!("create trace {}: {e}", path.display()));
        SharedSink::new(Box::new(writer))
    })
}

fn flush_trace(sink: Option<SharedSink>) {
    if let Some(mut sink) = sink {
        use emp_obs::EventSink as _;
        sink.flush();
    }
}

/// Rewrites an experiment's JSONL trace with `wall_s` masked, so two trace
/// trees from different `--jobs` values diff clean (`--mask-timings`).
fn canonicalize_trace_file(trace_dir: &Option<PathBuf>, name: &str) {
    if let Some(dir) = trace_dir {
        let path = dir.join(format!("{name}.jsonl"));
        let content = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read trace {}: {e}", path.display()));
        write_file(&path, &canon::canonical_trace(&content));
    }
}

/// The render used for sequential-vs-parallel comparison: every wall-clock
/// cell masked, everything else byte-exact.
fn canonical_render(tables: &[Table]) -> String {
    tables
        .iter()
        .map(|t| canon::mask_timings(t).markdown())
        .collect::<Vec<_>>()
        .join("\n")
}

fn write_experiment(
    exp: &Experiment,
    tables: &[Table],
    out_dir: &Path,
    mask_timings: bool,
    print: bool,
) {
    let mut md = format!("# {} — covers {}\n\n", exp.name, exp.covers);
    let mut csv = String::new();
    for t in tables {
        let rendered = if mask_timings {
            canon::mask_timings(t)
        } else {
            t.clone()
        };
        if print {
            println!("{}", rendered.markdown());
        }
        md.push_str(&rendered.markdown());
        md.push('\n');
        csv.push_str(&format!("# {}\n{}\n", rendered.title, rendered.csv()));
    }
    write_file(&out_dir.join(format!("{}.md", exp.name)), &md);
    write_file(&out_dir.join(format!("{}.csv", exp.name)), &csv);
}

fn index_line(exp: &Experiment, elapsed: f64, mask_timings: bool) -> String {
    let elapsed = if mask_timings {
        canon::MASK.to_string()
    } else {
        format!("{elapsed:.1}s")
    };
    format!(
        "- [{}]({}.md) — covers {} ({elapsed})\n",
        exp.name, exp.name, exp.covers
    )
}

/// Parses a `--jobs` value; `0` is rejected rather than silently clamped.
fn parse_jobs(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(0) => usage("--jobs must be >= 1 (use --jobs 1 for a sequential run)"),
        Ok(n) => n,
        Err(_) => usage(&format!("--jobs needs a positive integer, got '{v}'")),
    }
}

fn write_file(path: &PathBuf, content: &str) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    f.write_all(content.as_bytes())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--fast] [--dataset NAME] [--jobs N] [--out DIR] [--trace DIR]\n\
         \x20            [--bench] [--mask-timings] [--deadline-ms MS] [--checkpoint DIR]\n\
         \x20            [--metrics-addr ADDR] [EXPERIMENT...]\n\
         experiments: {} all",
        registry()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
