//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--fast] [--dataset NAME] [--out DIR] [--trace DIR] [EXPERIMENT...]
//!
//!   EXPERIMENT   one or more of: datasets table3 table4 min-runtime avg
//!                sum-runtime scalability exact ablations all (default: all)
//!   --fast       small datasets + capped tabu (seconds instead of minutes)
//!   --dataset    default dataset preset for single-dataset experiments
//!                (default: 2k, the paper's default)
//!   --out DIR    output directory (default: results/)
//!   --trace DIR  also stream solver telemetry: one `<experiment>.jsonl`
//!                event trace per experiment (see EXPERIMENTS.md)
//! ```
//!
//! Each experiment prints its tables and writes `<name>.md` / `<name>.csv`
//! into the output directory.

use emp_bench::experiments::{registry, ExpContext};
use emp_obs::{JsonlWriter, SharedSink};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut fast = false;
    let mut dataset = "2k".to_string();
    let mut out_dir = PathBuf::from("results");
    let mut trace_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--dataset" => {
                dataset = args
                    .next()
                    .unwrap_or_else(|| usage("--dataset needs a value"));
            }
            "--out" => {
                out_dir =
                    PathBuf::from(args.next().unwrap_or_else(|| usage("--out needs a value")));
            }
            "--trace" => {
                trace_dir = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| usage("--trace needs a directory")),
                ));
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag '{other}'")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = registry().iter().map(|e| e.name.to_string()).collect();
    }

    let mut ctx = if fast {
        ExpContext::fast()
    } else {
        ExpContext::new()
    };
    ctx.dataset = dataset;
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("create trace directory");
    }

    let reg = registry();
    let mut index = String::from("# EMP reproduction results\n\n");
    for name in &wanted {
        let Some(exp) = reg.iter().find(|e| e.name == *name) else {
            usage(&format!("unknown experiment '{name}'"));
        };
        eprintln!(">> running {} (covers {})", exp.name, exp.covers);
        // One JSONL event trace per experiment; the SharedSink serializes
        // the sequential solves of the experiment into one file.
        let trace_sink = trace_dir.as_ref().map(|dir| {
            let path = dir.join(format!("{}.jsonl", exp.name));
            let writer = JsonlWriter::create(&path)
                .unwrap_or_else(|e| panic!("create trace {}: {e}", path.display()));
            SharedSink::new(Box::new(writer))
        });
        ctx.trace = trace_sink.clone();
        let t0 = Instant::now();
        let tables = (exp.run)(&ctx);
        let elapsed = t0.elapsed().as_secs_f64();
        if let Some(mut sink) = trace_sink {
            use emp_obs::EventSink as _;
            sink.flush();
        }
        ctx.trace = None;
        eprintln!("   done in {elapsed:.1}s ({} tables)", tables.len());

        let mut md = format!("# {} — covers {}\n\n", exp.name, exp.covers);
        let mut csv = String::new();
        for t in &tables {
            println!("{}", t.markdown());
            md.push_str(&t.markdown());
            md.push('\n');
            csv.push_str(&format!("# {}\n{}\n", t.title, t.csv()));
        }
        write_file(&out_dir.join(format!("{}.md", exp.name)), &md);
        write_file(&out_dir.join(format!("{}.csv", exp.name)), &csv);
        index.push_str(&format!(
            "- [{}]({}.md) — covers {} ({elapsed:.1}s)\n",
            exp.name, exp.name, exp.covers
        ));
    }
    write_file(&out_dir.join("INDEX.md"), &index);
    eprintln!(">> results written to {}", out_dir.display());
}

fn write_file(path: &PathBuf, content: &str) {
    let mut f =
        std::fs::File::create(path).unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
    f.write_all(content.as_bytes())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: repro [--fast] [--dataset NAME] [--out DIR] [--trace DIR] [EXPERIMENT...]\n\
         experiments: {} all",
        registry()
            .iter()
            .map(|e| e.name)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
