//! Core hot-path bench: graph build, BFS sweep, articulation recompute, and
//! end-to-end `solve` on sized synthetic presets (1k / 5k / 10k areas).
//!
//! Emits `BENCH_core.json` at the workspace root. A two-step protocol
//! captures before/after numbers across a representation change:
//!
//! ```text
//! # on the old code: record raw timings
//! cargo run --release -p emp-bench --bin bench_core -- --save-baseline /tmp/before.json
//! # on the new code: merge the baseline in and compute speedups
//! cargo run --release -p emp-bench --bin bench_core -- --baseline /tmp/before.json
//! ```
//!
//! `--smoke` runs one sample on the smallest size only (the CI mode); see
//! EXPERIMENTS.md for how to read the artifact.
//!
//! `--jobs N` sets the tabu worker count for the *parallel* solve column
//! (default: `EMP_JOBS` or the host parallelism). The canonical `solve_s`
//! metric always times the serial path (`jobs = 1`) so the regression
//! watchdog compares like with like across machines; when the effective
//! job count exceeds 1 the entry additionally records `solve_par_s`, the
//! `solve_par_speedup` ratio, and asserts the sharded evaluator reproduced
//! the serial `p` and heterogeneity exactly (`DESIGN.md` §12).
//!
//! `--check-regression` turns the run into a perf watchdog: instead of
//! overwriting `BENCH_core.json`, the fresh numbers are compared against it
//! (or `--against FILE`) with the noise-aware thresholds of
//! [`emp_bench::regress`] — min-of-k inputs, relative *and* absolute floors
//! (tune with `--rel` / `--abs`) — and the process exits 1 on regression.
//! `--candidate FILE` skips benching and compares two artifacts directly;
//! `--report-out FILE` saves the verdict JSON for CI artifacts.
//!
//! Unbudgeted runs additionally time the serial solve with a live-metrics
//! mirror attached (`solve_live_s`, DESIGN.md §13). The telemetry overhead
//! (`solve_live_overhead`, budget: <= 3%) is thereby a watched regression
//! metric, and the live run must reproduce the metrics-off move sequence,
//! `p`, and heterogeneity exactly.

use emp_bench::presets::Combo;
use emp_bench::regress::{self, Thresholds};
use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::{solve_budgeted_observed, solve_observed, FactConfig, SolveBudget, StopReason};
use emp_graph::articulation::{articulation_points_into, ArticulationScratch};
use emp_graph::traversal::bfs_visit;
use emp_graph::{ContiguityGraph, VisitScratch};
use emp_obs::{LiveRegistry, Recorder, RingSink, DEFAULT_FLIGHT_CAPACITY};
use std::time::Instant;

const SIZES: [usize; 3] = [1000, 5000, 10_000];
const SMOKE_SIZES: [usize; 1] = [1000];
/// BFS sources per sweep: enough restarts that per-call visited-buffer
/// allocation (the thing the scratch-epoch idiom removes) dominates noise.
const BFS_SOURCES: usize = 64;

struct Args {
    smoke: bool,
    save_baseline: Option<String>,
    baseline: Option<String>,
    out: Option<String>,
    check_regression: bool,
    against: Option<String>,
    candidate: Option<String>,
    rel: Option<f64>,
    abs: Option<f64>,
    report_out: Option<String>,
    deadline_ms: Option<u64>,
    jobs: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        save_baseline: None,
        baseline: None,
        out: None,
        check_regression: false,
        against: None,
        candidate: None,
        rel: None,
        abs: None,
        report_out: None,
        deadline_ms: None,
        jobs: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--save-baseline" => args.save_baseline = it.next(),
            "--baseline" => args.baseline = it.next(),
            "--out" => args.out = it.next(),
            "--check-regression" => args.check_regression = true,
            "--against" => args.against = it.next(),
            "--candidate" => args.candidate = it.next(),
            "--rel" => args.rel = it.next().and_then(|v| v.parse().ok()),
            "--abs" => args.abs = it.next().and_then(|v| v.parse().ok()),
            "--report-out" => args.report_out = it.next(),
            "--deadline-ms" => args.deadline_ms = it.next().and_then(|v| v.parse().ok()),
            "--jobs" => args.jobs = it.next().and_then(|v| v.parse().ok()),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Best-of-`samples` wall time for `f`, returning the seconds and the value
/// of the final run (asserted identical across runs by the callers that
/// care about determinism).
fn best_of<T, F: FnMut() -> T>(samples: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        let value = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(value);
    }
    (best, last.expect("at least one sample"))
}

fn bench_size(
    areas: usize,
    samples: usize,
    deadline_ms: Option<u64>,
    jobs: usize,
    flight: &RingSink,
) -> serde_json::Value {
    let dataset = emp_data::build_sized("core-bench", areas);
    let instance = dataset.to_instance().expect("instance");
    let graph = instance.graph();
    let n = graph.len();

    // Graph build: reconstruct the CSR/adjacency structure from the raw
    // undirected edge list.
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let (graph_build_s, rebuilt) = best_of(samples, || {
        ContiguityGraph::from_edges(n, &edges).expect("valid edges")
    });
    assert_eq!(rebuilt.edge_count(), graph.edge_count());

    // BFS sweep: whole-graph traversals from evenly spaced sources through
    // the solver's reusable-scratch path (`bfs_visit`). Each restart pays
    // the visited-state setup cost, so this isolates per-call traversal
    // overhead — the thing the scratch-epoch idiom removes — rather than
    // one long frontier expansion.
    let stride = (n / BFS_SOURCES).max(1);
    let (bfs_sweep_s, bfs_visited) = best_of(samples, || {
        let mut scratch = VisitScratch::new();
        let mut queue = Vec::new();
        let mut visited = 0u64;
        let mut start = 0usize;
        while start < n {
            visited += bfs_visit(graph, start as u32, &mut scratch, &mut queue, |_| {}) as u64;
            start += stride;
        }
        visited
    });

    // End-to-end solve under the paper's MAS combo (MIN + AVG + SUM).
    let set = Combo::Mas.build(None, None, None);
    let config = FactConfig {
        seed: 7,
        ..FactConfig::default()
    };
    // The untimed reference solve streams into the flight recorder so a
    // later panic has a real event tail to dump; timed runs stay sinkless.
    let mut rec = Recorder::with_sink(Box::new(flight.clone()));
    let mut stop_reason = StopReason::Completed;
    let mut solve_live_s = None;
    let (solve_s, report) = match deadline_ms {
        // Budgeted mode: where the wall clock lands is nondeterministic by
        // nature, so the determinism assertions are skipped — the artifact
        // records the stop reason instead.
        Some(ms) => {
            let (solve_s, outcome) = best_of(samples, || {
                let mut noop = Recorder::noop();
                solve_budgeted_observed(
                    &instance,
                    &set,
                    &config,
                    &SolveBudget::deadline_ms(ms),
                    &mut noop,
                )
                .expect("solve")
            });
            stop_reason = outcome.stop_reason;
            (solve_s, outcome.report)
        }
        None => {
            let reference = solve_observed(&instance, &set, &config, &mut rec).expect("solve");
            let (solve_s, report) = best_of(samples, || {
                let mut noop = Recorder::noop();
                solve_observed(&instance, &set, &config, &mut noop).expect("solve")
            });
            assert_eq!(report.p(), reference.p(), "solve must be deterministic");
            assert_eq!(
                report.solution.heterogeneity, reference.solution.heterogeneity,
                "solve must be deterministic"
            );

            // Telemetry overhead: the same serial solve with a live-metrics
            // mirror attached — the delta is the full hot-path cost of the
            // telemetry plane (gauge updates + batched counter/histogram
            // flushes). The mirror must observe, never steer: moves, p, and
            // heterogeneity stay byte-identical to the metrics-off run.
            let registry = LiveRegistry::new();
            let (live_s, live_report) = best_of(samples, || {
                let mut live_rec = Recorder::noop();
                live_rec.attach_live(registry.register(&format!("core-n{areas}")));
                solve_observed(&instance, &set, &config, &mut live_rec).expect("solve")
            });
            assert_eq!(
                live_report.p(),
                report.p(),
                "live telemetry must not change p"
            );
            assert_eq!(
                live_report.solution.heterogeneity, report.solution.heterogeneity,
                "live telemetry must not change heterogeneity"
            );
            assert_eq!(
                live_report.counters, report.counters,
                "live telemetry must not change the move sequence"
            );
            eprintln!(
                "  solve {solve_s:.3}s, live-metrics {live_s:.3}s ({:+.2}% overhead)",
                (live_s / solve_s.max(1e-12) - 1.0) * 100.0
            );
            solve_live_s = Some(live_s);
            (solve_s, report)
        }
    };

    // Parallel solve: the sharded tabu evaluator with `jobs` workers must
    // reproduce the serial result exactly — the timing is a speedup
    // column, the assertion is the determinism contract (DESIGN.md §12).
    // Skipped under a deadline: where the budget trips is nondeterministic.
    let solve_par_s = (jobs > 1 && deadline_ms.is_none()).then(|| {
        let par_config = FactConfig { jobs, ..config };
        let (solve_par_s, par_report) = best_of(samples, || {
            let mut noop = Recorder::noop();
            solve_observed(&instance, &set, &par_config, &mut noop).expect("solve")
        });
        assert_eq!(
            par_report.p(),
            report.p(),
            "sharded evaluator must reproduce the serial p"
        );
        assert_eq!(
            par_report.solution.heterogeneity, report.solution.heterogeneity,
            "sharded evaluator must reproduce the serial heterogeneity"
        );
        solve_par_s
    });

    // Articulation recompute: one full pass over the solved regions — the
    // shape of work the tabu phase repeats after every applied move.
    let engine = ConstraintEngine::compile(&instance, &set).expect("engine");
    let mut partition = Partition::new(n);
    for members in &report.solution.regions {
        partition.create_region(&engine, members);
    }
    let mut scratch = ArticulationScratch::default();
    let mut arts = Vec::new();
    let (articulation_s, art_total) = best_of(samples, || {
        let mut total = 0u64;
        for members in &report.solution.regions {
            articulation_points_into(graph, members, &mut scratch, &mut arts);
            total += arts.len() as u64;
        }
        total
    });

    let counters: serde_json::Map<String, serde_json::Value> = report
        .counters
        .iter_nonzero()
        .map(|(k, v)| (k.name().to_string(), serde_json::json!(v)))
        .collect();

    let mut entry = serde_json::json!({
        "areas": areas,
        "vertices": n,
        "edges": graph.edge_count(),
        "graph_build_s": graph_build_s,
        "bfs_sweep_s": bfs_sweep_s,
        "bfs_sources": n.div_ceil(stride),
        "bfs_visited": bfs_visited,
        "articulation_s": articulation_s,
        "articulation_points": art_total,
        "solve_s": solve_s,
        "p": report.p(),
        "heterogeneity": report.solution.heterogeneity,
        "jobs": jobs,
        "host_parallelism": emp_geo::par::host_parallelism(),
        "counters": counters,
    });
    if let Some(s) = solve_live_s {
        let obj = entry.as_object_mut().expect("size entry");
        obj.insert("solve_live_s".into(), serde_json::json!(s));
        obj.insert(
            "solve_live_overhead".into(),
            serde_json::json!(s / solve_s.max(1e-12) - 1.0),
        );
    }
    if let Some(s) = solve_par_s {
        let obj = entry.as_object_mut().expect("size entry");
        obj.insert("solve_par_s".into(), serde_json::json!(s));
        obj.insert(
            "solve_par_speedup".into(),
            serde_json::json!(solve_s / s.max(1e-12)),
        );
    }
    if let Some(ms) = deadline_ms {
        let obj = entry.as_object_mut().expect("size entry");
        obj.insert("deadline_ms".into(), serde_json::json!(ms));
        obj.insert("stop_reason".into(), serde_json::json!(stop_reason.name()));
    }
    entry
}

const METRICS: [&str; 5] = [
    "graph_build_s",
    "bfs_sweep_s",
    "articulation_s",
    "solve_s",
    "solve_live_s",
];

/// Attaches `baseline` (a prior `sizes` array) per size and computes
/// per-metric speedups (`before / after`).
fn merge_baseline(sizes: &mut [serde_json::Value], baseline: &serde_json::Value) {
    let empty = Vec::new();
    let before_sizes = baseline["sizes"].as_array().unwrap_or(&empty);
    for entry in sizes.iter_mut() {
        let areas = entry["areas"].as_u64();
        let Some(before) = before_sizes.iter().find(|b| b["areas"].as_u64() == areas) else {
            continue;
        };
        let mut speedup = serde_json::Map::new();
        for metric in METRICS {
            let (Some(b), Some(a)) = (before[metric].as_f64(), entry[metric].as_f64()) else {
                continue;
            };
            let name = metric.trim_end_matches("_s").to_string();
            speedup.insert(name, serde_json::json!(b / a.max(1e-12)));
        }
        let obj = entry.as_object_mut().expect("size entry");
        obj.insert("baseline".into(), before.clone());
        obj.insert("speedup".into(), serde_json::Value::Object(speedup));
    }
}

const DEFAULT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");

fn read_json(path: &str) -> serde_json::Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: read {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: not JSON: {e}");
        std::process::exit(2);
    })
}

/// `--check-regression`: compare fresh (or `--candidate`) numbers against
/// the committed artifact; never overwrites `BENCH_core.json`. Exits 1 on a
/// regression, 0 when clean.
fn run_check(args: &Args, candidate: serde_json::Value) -> ! {
    let against = args.against.as_deref().unwrap_or(DEFAULT_PATH);
    let reference = read_json(against);
    let defaults = Thresholds::default();
    let th = Thresholds {
        rel: args.rel.unwrap_or(defaults.rel),
        abs: args.abs.unwrap_or(defaults.abs),
    };
    let report = regress::compare(&reference, &candidate, &th);
    print!("{}", report.render(&th));
    if let Some(path) = &args.report_out {
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report.to_json(&th)).unwrap(),
        )
        .expect("write regression report");
        eprintln!("wrote regression report {path}");
    }
    // A reference that lacks a candidate timing can't vouch for it — a
    // stale baseline must fail the watchdog, not silently pass. Metrics
    // only in the reference stay non-fatal: retiring a benchmark is fine.
    let uncovered = !report.only_after.is_empty();
    if uncovered {
        eprintln!(
            "error: reference {against} is missing {} candidate timing metric(s): {}",
            report.only_after.len(),
            report.only_after.join(", ")
        );
    }
    std::process::exit(if report.is_regressed() || uncovered {
        1
    } else {
        0
    });
}

fn main() {
    let args = parse_args();

    if args.check_regression {
        if let Some(path) = &args.candidate {
            // File-vs-file mode: no benching at all.
            let candidate = read_json(path);
            run_check(&args, candidate);
        }
    }

    let samples = if args.smoke { 1 } else { 3 };
    let sizes: &[usize] = if args.smoke { &SMOKE_SIZES } else { &SIZES };

    let jobs = args
        .jobs
        .unwrap_or_else(emp_geo::par::effective_jobs)
        .max(1);

    // Flight recorder + panic hook: a crash mid-bench dumps the last events
    // of the reference solve as replayable JSONL (DESIGN.md §13).
    let flight = RingSink::new(DEFAULT_FLIGHT_CAPACITY);
    {
        let flight = flight.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::fs::write("bench-core-flight-panic.jsonl", flight.dump_jsonl()).is_ok() {
                eprintln!("flight recorder dumped to bench-core-flight-panic.jsonl");
            }
            previous(info);
        }));
    }

    let mut results = Vec::new();
    for &areas in sizes {
        eprintln!("bench_core: {areas} areas ({samples} samples, {jobs} jobs)...");
        results.push(bench_size(areas, samples, args.deadline_ms, jobs, &flight));
    }

    if let Some(path) = &args.save_baseline {
        let artifact = serde_json::json!({
            "bench": "core-baseline",
            "combo": "MAS",
            "smoke": args.smoke,
            "sizes": results,
        });
        std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap())
            .expect("write baseline");
        eprintln!("wrote baseline {path}");
        return;
    }

    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let baseline: serde_json::Value = serde_json::from_str(&text).expect("parse baseline");
        merge_baseline(&mut results, &baseline);
    }

    let artifact = serde_json::json!({
        "bench": "core",
        "combo": "MAS",
        "smoke": args.smoke,
        "sizes": results,
    });

    if args.check_regression {
        // Fresh-run mode: write only to an explicit --out (the committed
        // reference must survive the check), then compare.
        if let Some(path) = &args.out {
            std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap())
                .expect("write candidate artifact");
            eprintln!("wrote {path}");
        }
        run_check(&args, artifact);
    }

    let path = args.out.as_deref().unwrap_or(DEFAULT_PATH);
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap())
        .expect("write BENCH_core.json");
    eprintln!("wrote {path}");
}
