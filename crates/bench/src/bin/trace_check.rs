//! `trace_check` — CI smoke check for the JSONL telemetry channel.
//!
//! ```text
//! trace_check [--jobs N] [--out PATH]
//!
//!   --jobs N   worker threads for the cell pool (default: EMP_JOBS or the
//!              host parallelism; N >= 1). The emitted trace is identical
//!              for every N.
//!   --out PATH keep the validated JSONL trace at PATH (default: a temp
//!              file, deleted after the check). CI pipes the kept trace
//!              through `trace_report`.
//! ```
//!
//! Runs a traced 200-area FaCT solve through the experiment cell pool
//! (buffered per-cell sink, replayed into the JSONL writer — the same path
//! `repro --trace` uses), then verifies that
//!
//! 1. every emitted line parses as JSON with a known `type` (or the
//!    `trace_end` completeness marker),
//! 2. exactly one depth-0 `solve` span exists and its counters match the
//!    [`Measurement`](emp_bench::Measurement) the harness reported,
//! 3. the trajectory starts at iteration 0 and has one point per applied
//!    move plus the initial one,
//! 4. a histogram record was emitted and the file's last line is the
//!    terminal `trace_end` marker (no truncation).
//!
//! Exits non-zero (panics) on any violation, so CI fails loudly.

use emp_bench::presets::Combo;
use emp_bench::runner::{run_fact, run_traced, Measurement, RunOptions, TracedJob};
use emp_bench::sched::JobPool;
use emp_obs::{CounterKind, EventSink as _, JsonlWriter, SharedSink};
use serde_json::Value;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut jobs: Option<usize> = None;
    let mut out: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                let v = args.next().unwrap_or_else(|| usage("--jobs needs a value"));
                match v.parse::<usize>() {
                    Ok(0) => usage("--jobs must be >= 1 (use --jobs 1 for a sequential run)"),
                    Ok(n) => jobs = Some(n),
                    Err(_) => usage(&format!("--jobs needs a positive integer, got '{v}'")),
                }
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                out = Some(std::path::PathBuf::from(v));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let jobs = jobs.unwrap_or_else(emp_geo::par::effective_jobs);
    std::env::set_var("EMP_JOBS", jobs.to_string());

    let dataset = emp_data::build_sized("trace-check", 200);
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);

    let keep = out.is_some();
    let path = out.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("emp_trace_check_{}.jsonl", std::process::id()))
    });
    let writer = JsonlWriter::create(&path).expect("create trace file");
    let trace = Some(SharedSink::new(Box::new(writer)));

    // One cell through the pool: exercises the buffered-sink replay exactly
    // as `repro --trace --jobs N` does.
    let pool = JobPool::new(jobs);
    let (instance_ref, set_ref) = (&instance, &set);
    let cells: Vec<TracedJob<'_, Measurement>> = vec![Box::new(move |sink| {
        let opts = RunOptions {
            max_no_improve: Some(100),
            trace: sink,
            ..RunOptions::default()
        };
        run_fact(instance_ref, set_ref, &opts)
    })];
    let m = run_traced(&pool, &trace, cells)
        .into_iter()
        .next()
        .expect("one traced cell");
    if let Some(mut sink) = trace {
        sink.flush();
    }
    assert!(m.p > 0, "seeded instance must be feasible");

    let content = std::fs::read_to_string(&path).expect("read trace file");
    if !keep {
        let _ = std::fs::remove_file(&path);
    }
    assert!(!content.is_empty(), "trace file must not be empty");

    let mut root_spans = 0usize;
    let mut root_applied = 0u64;
    let mut trajectory_points = 0usize;
    let mut hist_records = 0usize;
    let mut trace_ends = 0usize;
    let mut first_iteration: Option<u64> = None;
    for (lineno, line) in content.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {} is not JSON: {e}\n{line}", lineno + 1));
        match v["type"].as_str() {
            Some("span") => {
                assert!(v["name"].is_string(), "span without name: {line}");
                assert!(v["wall_s"].is_number(), "span without wall_s: {line}");
                if v["depth"].as_u64() == Some(0) {
                    root_spans += 1;
                    assert_eq!(v["name"].as_str(), Some("solve"));
                    root_applied = v["counters"]["tabu_moves_applied"].as_u64().unwrap_or(0);
                }
            }
            Some("trajectory") => {
                if first_iteration.is_none() {
                    first_iteration = v["iteration"].as_u64();
                }
                trajectory_points += 1;
            }
            Some("note") => {
                assert!(v["key"].is_string(), "note without key: {line}");
            }
            Some("hist") => {
                assert!(v["hists"].is_object(), "hist without hists map: {line}");
                hist_records += 1;
            }
            None if v["event"].as_str() == Some("trace_end") => {
                trace_ends += 1;
            }
            other => panic!("line {}: unknown event type {other:?}", lineno + 1),
        }
    }

    assert_eq!(root_spans, 1, "exactly one root solve span");
    assert!(hist_records >= 1, "at least one histogram record");
    assert_eq!(trace_ends, 1, "exactly one trace_end for one traced cell");
    assert_eq!(
        content.lines().last(),
        Some("{\"event\":\"trace_end\"}"),
        "trace must end with the completeness marker"
    );
    let applied = m.counters.get(CounterKind::TabuMovesApplied);
    assert_eq!(
        root_applied, applied,
        "root-span counters must match the Measurement"
    );
    assert_eq!(first_iteration, Some(0), "trajectory starts at iteration 0");
    assert_eq!(
        trajectory_points as u64,
        applied + 1,
        "one trajectory point per applied move plus the initial objective"
    );

    println!(
        "trace_check OK: {} lines, {applied} moves, p = {}, jobs = {jobs}",
        content.lines().count(),
        m.p
    );
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: trace_check [--jobs N] [--out PATH]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
