//! `fuzz_check` — CI smoke gate for the differential/metamorphic oracle.
//!
//! Two phases, both deterministic:
//!
//! 1. **Corpus replay** — every JSON repro under `results/corpus/` is
//!    re-run through the full oracle (sorted file order), so previously
//!    found bugs stay visible until fixed.
//! 2. **Fresh sweep** — a contiguous seed range through
//!    [`emp_oracle::fuzz_sweep`]: generate, FaCT-solve, validate, compare
//!    against the exact `p*`, cross-check MP-regions, run all four
//!    metamorphic relations. New failures are minimized and persisted into
//!    the corpus directory (CI uploads it as an artifact on failure).
//!
//! Stdout is byte-stable across identical runs — the CI job runs the gate
//! twice and diffs the output. Timing goes to stderr only.
//!
//! ```text
//! fuzz_check [--seeds N] [--start S] [--exact-nodes N] [--corpus DIR]
//!            [--min-compared N] [--budget-secs S] [--replay-only]
//!            [--no-metamorphic] [--no-minimize]
//! ```

use std::path::PathBuf;
use std::time::Instant;

use emp_oracle::prelude::*;

struct Args {
    seeds: u64,
    start: u64,
    exact_nodes: u64,
    corpus: PathBuf,
    min_compared: usize,
    budget_secs: u64,
    replay_only: bool,
    metamorphic: bool,
    minimize: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            seeds: 320,
            start: 0,
            exact_nodes: 200_000,
            corpus: PathBuf::from("results/corpus"),
            min_compared: 200,
            budget_secs: 0,
            replay_only: false,
            metamorphic: true,
            minimize: true,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds: u64"),
            "--start" => args.start = value("--start").parse().expect("--start: u64"),
            "--exact-nodes" => {
                args.exact_nodes = value("--exact-nodes").parse().expect("--exact-nodes: u64")
            }
            "--corpus" => args.corpus = PathBuf::from(value("--corpus")),
            "--min-compared" => {
                args.min_compared = value("--min-compared")
                    .parse()
                    .expect("--min-compared: usize")
            }
            "--budget-secs" => {
                args.budget_secs = value("--budget-secs").parse().expect("--budget-secs: u64")
            }
            "--replay-only" => args.replay_only = true,
            "--no-metamorphic" => args.metamorphic = false,
            "--no-minimize" => args.minimize = false,
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn print_violations(report: &FuzzReport) {
    for case in &report.cases {
        for v in &case.violations {
            println!("VIOLATION {} {}: {}", case.name, v.kind, v.details);
        }
    }
}

fn main() {
    let args = parse_args();
    let started = Instant::now();
    let mut failed = false;

    let options = FuzzOptions {
        exact_nodes: args.exact_nodes,
        metamorphic: args.metamorphic,
        minimize: args.minimize,
        corpus_dir: Some(args.corpus.clone()),
        budget: (args.budget_secs > 0).then(|| std::time::Duration::from_secs(args.budget_secs)),
        budget_probes: true,
    };

    // Phase 1: replay the committed corpus (sorted order, no persistence).
    let replay_options = FuzzOptions {
        corpus_dir: None,
        minimize: false,
        ..options
    };
    match replay_corpus(&args.corpus, &replay_options) {
        Ok(report) => {
            print_violations(&report);
            println!("{}", report.summary_line("replay"));
            if report.violation_count() > 0 {
                failed = true;
            }
        }
        Err(e) => {
            println!("replay: corpus unreadable: {e}");
            failed = true;
        }
    }
    eprintln!("replay took {:?}", started.elapsed());

    // Phase 2: fresh seeded sweep.
    if !args.replay_only {
        let sweep_started = Instant::now();
        let report = fuzz_sweep(args.start..args.start + args.seeds, &options);
        print_violations(&report);
        for path in &report.saved {
            println!("SAVED {}", path.display());
        }
        println!("{}", report.summary_line("sweep"));
        if report.violation_count() > 0 {
            failed = true;
        }
        if report.compared() < args.min_compared && !report.truncated {
            println!(
                "FAIL: only {} exact comparisons (minimum {})",
                report.compared(),
                args.min_compared
            );
            failed = true;
        }
        eprintln!("sweep took {:?}", sweep_started.elapsed());
    }

    if failed {
        println!("fuzz_check FAILED");
        std::process::exit(1);
    }
    println!("fuzz_check OK");
}
