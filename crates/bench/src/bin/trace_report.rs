//! `trace_report` — offline analytics over recorded JSONL traces.
//!
//! ```text
//! trace_report FILE... [--folded PATH] [--prom PATH] [--summary PATH] [--csv]
//!
//!   Ingests one or more JSONL traces (repro --trace / trace_check --out)
//!   and prints the aggregated span tree (count, total/self seconds,
//!   p50/p90/p99/max) plus counter and histogram rollups.
//!
//!   --folded PATH   write folded stacks (`a;b;c N`, self-time µs) for
//!                   inferno / flamegraph.pl
//!   --prom PATH     write a Prometheus text-format snapshot
//!   --summary PATH  write the machine-readable summary JSON (the input
//!                   format of `trace_report diff`)
//!   --csv           print tables as CSV instead of Markdown
//!
//! trace_report diff BEFORE.json AFTER.json [--rel R] [--abs S]
//!
//!   Compares two summary JSONs (or any benchmark JSON with `*_s` keys,
//!   e.g. BENCH_core.json) with the noise-aware thresholds of
//!   `emp_bench::regress`; exits 1 when a timing regressed.
//! ```
//!
//! Truncated traces (missing the terminal `trace_end` marker) are reported
//! and exit non-zero: partial traces silently under-count spans.

use emp_bench::regress::{self, Thresholds};
use emp_bench::report::TraceReport;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        run_diff(&args[1..]);
    } else {
        run_report(&args);
    }
}

fn run_report(args: &[String]) {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut folded: Option<std::path::PathBuf> = None;
    let mut prom: Option<std::path::PathBuf> = None;
    let mut summary: Option<std::path::PathBuf> = None;
    let mut csv = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--folded" => folded = Some(path_arg(&mut it, "--folded")),
            "--prom" => prom = Some(path_arg(&mut it, "--prom")),
            "--summary" => summary = Some(path_arg(&mut it, "--summary")),
            "--csv" => csv = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown argument '{other}'")),
            file => files.push(file.into()),
        }
    }
    if files.is_empty() {
        usage("no trace files given");
    }

    let mut report = TraceReport::new();
    for file in &files {
        let content = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("read {}: {e}", file.display())));
        report
            .ingest(&content)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", file.display())));
    }

    let spans = report.span_table();
    let counters = report.counter_table();
    if csv {
        print!("{}", spans.csv());
        print!("{}", counters.csv());
    } else {
        print!("{}", spans.markdown());
        print!("{}", counters.markdown());
    }
    for (name, h) in &report.hists {
        println!(
            "hist {name} ({}): count {} p50 {:?} p99 {:?} max {:?}",
            h.unit,
            h.hist.count(),
            h.hist.quantile(0.50),
            h.hist.quantile(0.99),
            h.hist.max(),
        );
    }
    println!(
        "{} line(s), {} span(s), {} root(s), {} trace_end marker(s)",
        report.lines, report.spans, report.roots, report.trace_ends
    );

    if let Some(path) = folded {
        write_out(&path, &report.folded_stacks(), "folded stacks");
    }
    if let Some(path) = prom {
        write_out(&path, &report.prometheus(), "Prometheus snapshot");
    }
    if let Some(path) = summary {
        let json = serde_json::to_string_pretty(&report.summary_json()).expect("serialize");
        write_out(&path, &json, "summary JSON");
    }

    if report.truncated || report.orphans > 0 {
        eprintln!(
            "error: trace is truncated ({} orphan span(s), trailing trace_end {})",
            report.orphans,
            if report.truncated {
                "missing"
            } else {
                "present"
            }
        );
        std::process::exit(1);
    }
}

fn run_diff(args: &[String]) {
    let mut th = Thresholds::default();
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rel" => th.rel = num_arg(&mut it, "--rel"),
            "--abs" => th.abs = num_arg(&mut it, "--abs"),
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown argument '{other}'")),
            file => files.push(file.into()),
        }
    }
    let [before_path, after_path] = files.as_slice() else {
        usage("diff needs exactly two files: BEFORE.json AFTER.json");
    };
    let before = read_json(before_path);
    let after = read_json(after_path);
    let report = regress::compare(&before, &after, &th);
    print!("{}", report.render(&th));
    if report.is_regressed() {
        std::process::exit(1);
    }
}

fn read_json(path: &std::path::Path) -> serde_json::Value {
    let content = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("read {}: {e}", path.display())));
    serde_json::from_str(&content)
        .unwrap_or_else(|e| fail(&format!("{}: not JSON: {e}", path.display())))
}

fn write_out(path: &std::path::Path, content: &str, what: &str) {
    std::fs::write(path, content).unwrap_or_else(|e| fail(&format!("write {what}: {e}")));
    println!("wrote {what} to {}", path.display());
}

fn path_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> std::path::PathBuf {
    it.next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a path")))
        .into()
}

fn num_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> f64 {
    let v = it
        .next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
    v.parse()
        .unwrap_or_else(|_| usage(&format!("{flag} needs a number, got '{v}'")))
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: trace_report FILE... [--folded PATH] [--prom PATH] [--summary PATH] [--csv]\n\
         \x20      trace_report diff BEFORE.json AFTER.json [--rel R] [--abs S]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
