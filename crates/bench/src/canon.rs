//! Canonical (timing-masked) forms of harness output.
//!
//! The parallel harness promises output *identical* to the sequential run —
//! but wall-clock cells can never satisfy that literally: even two
//! sequential runs time differently. The determinism contract is therefore
//! split:
//!
//! * **solver-dependent content** (p values, unassigned counts, objective
//!   values, counters, trace event sequences) must be byte-identical for
//!   every `--jobs` value — the scheduler guarantees this by construction;
//! * **wall-clock cells** (`*_s` columns, `*_per_sec` rates, the `wall_s`
//!   trace field) are masked before comparison.
//!
//! `repro --mask-timings` writes these canonical forms directly, so CI can
//! `diff -r` a `--jobs 1` tree against a `--jobs 2` tree; the determinism
//! integration test uses the same functions in-process.

use crate::table::Table;

/// Replacement string for a masked timing cell.
pub const MASK: &str = "*";

/// Is this column header / metric label a wall-clock quantity?
///
/// Matches the harness-wide naming convention: seconds columns end in `_s`
/// (`construction_s`, `fact_time_s`, …) and rate columns end in `_per_sec`.
pub fn is_timing_label(label: &str) -> bool {
    label.ends_with("_s") || label.ends_with("_per_sec")
}

/// A copy of `table` with every wall-clock cell replaced by [`MASK`].
///
/// Two shapes are handled: tables with timing *columns* (header ends in a
/// timing suffix) and key/value tables (`metric`/`value` headers) whose
/// timing *rows* are identified by their label in the first column.
pub fn mask_timings(table: &Table) -> Table {
    let timing_col: Vec<bool> = table.headers.iter().map(|h| is_timing_label(h)).collect();
    let key_value = table.headers.len() == 2 && !timing_col.iter().any(|&t| t);
    let mut out = table.clone();
    for row in &mut out.rows {
        let timing_row = key_value && is_timing_label(&row[0]);
        for (i, cell) in row.iter_mut().enumerate() {
            if timing_col[i] || (timing_row && i == 1) {
                *cell = MASK.to_string();
            }
        }
    }
    out
}

/// The canonical form of one JSONL trace line: the `wall_s` field value is
/// replaced by `null`, and `hist` lines are masked wholly (span-duration
/// bucket counts are nothing *but* timings). All other fields — event type,
/// span names, indices, depths, counters, trajectory points, the terminal
/// `trace_end` marker — are solver-deterministic and kept verbatim.
pub fn canonical_trace_line(line: &str) -> String {
    const HIST_PREFIX: &str = "{\"type\":\"hist\"";
    if line.starts_with(HIST_PREFIX) {
        return "{\"type\":\"hist\",\"hists\":null}".to_string();
    }
    const KEY: &str = "\"wall_s\":";
    match line.find(KEY) {
        None => line.to_string(),
        Some(start) => {
            let vstart = start + KEY.len();
            let rest = &line[vstart..];
            let vend = rest
                .find([',', '}'])
                .map(|i| vstart + i)
                .unwrap_or(line.len());
            format!("{}null{}", &line[..vstart], &line[vend..])
        }
    }
}

/// Canonicalizes a whole JSONL trace (line by line).
pub fn canonical_trace(content: &str) -> String {
    let mut out = String::with_capacity(content.len());
    for line in content.lines() {
        out.push_str(&canonical_trace_line(line));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_timing_columns_only() {
        let mut t = Table::new("x", &["combo", "p", "construction_s", "moves_per_sec"]);
        t.push_row(vec!["MAS".into(), "17".into(), "1.234".into(), "99".into()]);
        let m = mask_timings(&t);
        assert_eq!(m.rows[0], vec!["MAS", "17", MASK, MASK]);
        assert_eq!(m.headers, t.headers, "headers untouched");
    }

    #[test]
    fn masks_timing_rows_of_key_value_tables() {
        let mut t = Table::new("telemetry", &["metric", "value"]);
        t.push_row(vec!["tabu_s".into(), "0.5".into()]);
        t.push_row(vec!["moves_applied".into(), "120".into()]);
        t.push_row(vec!["moves_per_sec".into(), "240".into()]);
        let m = mask_timings(&t);
        assert_eq!(m.rows[0], vec!["tabu_s", MASK]);
        assert_eq!(m.rows[1], vec!["moves_applied", "120"]);
        assert_eq!(m.rows[2], vec!["moves_per_sec", MASK]);
    }

    #[test]
    fn canonicalizes_span_lines_and_keeps_others() {
        let span = "{\"type\":\"span\",\"name\":\"tabu\",\"index\":null,\"depth\":1,\"wall_s\":0.25,\"counters\":{\"x\":1}}";
        assert_eq!(
            canonical_trace_line(span),
            "{\"type\":\"span\",\"name\":\"tabu\",\"index\":null,\"depth\":1,\"wall_s\":null,\"counters\":{\"x\":1}}"
        );
        let traj = "{\"type\":\"trajectory\",\"iteration\":3,\"heterogeneity\":42.5}";
        assert_eq!(canonical_trace_line(traj), traj);
        let end = "{\"event\":\"trace_end\"}";
        assert_eq!(canonical_trace_line(end), end);
        let hist = "{\"type\":\"hist\",\"hists\":{\"span_tabu\":{\"unit\":\"ns\",\"count\":1,\"sum\":7,\"min\":7,\"max\":7,\"buckets\":[[3,1]]}}}";
        assert_eq!(
            canonical_trace_line(hist),
            "{\"type\":\"hist\",\"hists\":null}"
        );
        let both = format!("{span}\n{traj}\n");
        let canon = canonical_trace(&both);
        assert!(canon.contains("\"wall_s\":null"));
        assert!(canon.ends_with("42.5}\n"));
    }
}
