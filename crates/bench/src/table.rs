//! Result tables: the common output format of every experiment.

use std::fmt::Write as _;

/// A titled table of strings, renderable as Markdown or CSV.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Experiment/table title (e.g. `"Table III — p values for MIN"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match `headers` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders GitHub-flavored Markdown.
    pub fn markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders CSV (no quoting: cells must not contain commas).
    pub fn csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float compactly (3 significant decimals, no trailing zeros).
pub fn fmt_f(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Formats seconds with millisecond resolution.
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a local-search improvement ratio as a percentage with one
/// decimal; `None` (search skipped or undefined ratio) renders `n/a`.
pub fn fmt_improvement(v: Option<f64>) -> String {
    match v {
        Some(r) => fmt_f((r * 1000.0).round() / 10.0),
        None => "n/a".to_string(),
    }
}

/// Formats a bound that may be infinite, in the paper's style (`-inf`, `5k`).
pub fn fmt_bound(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "-inf".to_string()
    } else if v == f64::INFINITY {
        "inf".to_string()
    } else if v.abs() >= 1000.0 && (v / 100.0) == (v / 100.0).trunc() {
        // Paper style: 2k, 3.5k, 20k.
        format!("{}k", fmt_f(v / 1000.0))
    } else {
        fmt_f(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(3.0), "3");
        assert_eq!(fmt_f(1.23456), "1.235");
        assert_eq!(fmt_f(2.5), "2.5");
        assert_eq!(fmt_secs(1.23456), "1.235");
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(fmt_improvement(Some(0.1234)), "12.3");
        assert_eq!(fmt_improvement(Some(0.0)), "0");
        assert_eq!(fmt_improvement(None), "n/a");
    }

    #[test]
    fn bound_formatting() {
        assert_eq!(fmt_bound(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_bound(f64::INFINITY), "inf");
        assert_eq!(fmt_bound(3500.0), "3.5k"); // 3500/1000 = 3.5, not integer
        assert_eq!(fmt_bound(2000.0), "2k");
        assert_eq!(fmt_bound(150.0), "150");
    }
}
