//! Noise-aware perf-regression comparison of two benchmark / trace-summary
//! JSON artifacts (`bench_core --check-regression`, `trace_report diff`).
//!
//! Both sides are generic JSON: every numeric field whose key ends in `_s`
//! is treated as a wall-clock metric (the harness-wide naming convention,
//! see [`canon::is_timing_label`](crate::canon::is_timing_label)). Array
//! elements are labelled by their `areas` / `path` / `name` / `combo`
//! field when present, so `BENCH_core.json` size entries and `trace_report`
//! span summaries both produce stable metric labels.
//!
//! Noise handling is layered:
//!
//! * the *inputs* are already min-of-k (`bench_core` records best-of-N wall
//!   times), which removes most scheduler noise at the source;
//! * a metric only counts as regressed when it is slower **relatively**
//!   (`after > before * (1 + rel)`) **and** **absolutely**
//!   (`after - before > abs` seconds) — the absolute floor keeps
//!   microsecond-scale metrics from tripping the relative gate on jitter,
//!   the relative gate keeps slow metrics from hiding large shifts under a
//!   fixed floor.
//!
//! Embedded `baseline` / `speedup` sub-objects (bench_core's merged
//! history) are skipped: they describe a *previous* comparison, not the
//! run under test.

use serde_json::Value;

/// Regression thresholds; a metric must breach **both** to count.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Relative slow-down floor (0.3 = 30% slower).
    pub rel: f64,
    /// Absolute slow-down floor in seconds.
    pub abs: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            rel: 0.30,
            abs: 0.05,
        }
    }
}

/// One timing metric present on both sides.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Dotted label, e.g. `sizes[areas=1000].solve_s`.
    pub label: String,
    /// Seconds on the reference side.
    pub before: f64,
    /// Seconds on the candidate side.
    pub after: f64,
    /// `after / before` (∞ when before is 0 and after is not).
    pub ratio: f64,
    /// Breached both thresholds.
    pub regressed: bool,
}

/// Outcome of a [`compare`] run.
#[derive(Clone, Debug, Default)]
pub struct RegressionReport {
    /// Every timing metric present on both sides, in label order.
    pub deltas: Vec<MetricDelta>,
    /// Labels present on exactly one side (renamed or removed metrics are
    /// reported, never silently dropped).
    pub only_before: Vec<String>,
    /// Labels present only on the candidate side.
    pub only_after: Vec<String>,
}

impl RegressionReport {
    /// The metrics that breached both thresholds.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> + '_ {
        self.deltas.iter().filter(|d| d.regressed)
    }

    /// Whether any metric regressed.
    pub fn is_regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Human-readable verdict table (one line per metric, regressions
    /// flagged, unmatched labels listed at the end).
    pub fn render(&self, th: &Thresholds) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regression check (rel > {:.0}% AND abs > {:.3}s):",
            th.rel * 100.0,
            th.abs
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "  {} {:<44} before {:>12.6}s  after {:>12.6}s  x{:.3}",
                if d.regressed {
                    "REGRESSED"
                } else {
                    "ok       "
                },
                d.label,
                d.before,
                d.after,
                d.ratio,
            );
        }
        for l in &self.only_before {
            let _ = writeln!(out, "  missing   {l} (present only in reference)");
        }
        for l in &self.only_after {
            let _ = writeln!(out, "  new       {l} (present only in candidate)");
        }
        let n = self.regressions().count();
        let _ = writeln!(
            out,
            "{}: {} metric(s) compared, {} regressed",
            if n == 0 { "PASS" } else { "FAIL" },
            self.deltas.len(),
            n
        );
        out
    }

    /// JSON form of the report (for CI artifacts).
    pub fn to_json(&self, th: &Thresholds) -> Value {
        let deltas: Vec<Value> = self
            .deltas
            .iter()
            .map(|d| {
                serde_json::json!({
                    "label": d.label.clone(),
                    "before_s": d.before,
                    "after_s": d.after,
                    "ratio": d.ratio,
                    "regressed": d.regressed,
                })
            })
            .collect();
        serde_json::json!({
            "thresholds": serde_json::json!({ "rel": th.rel, "abs": th.abs }),
            "regressed": self.is_regressed(),
            "deltas": deltas,
            "only_before": self.only_before.clone(),
            "only_after": self.only_after.clone(),
        })
    }
}

/// Collects `(label, seconds)` pairs for every numeric `*_s` field
/// reachable from `value`, skipping embedded `baseline`/`speedup` history.
pub fn extract_timings(value: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(value, "", &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn walk(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Value::Object(map) => {
            for (key, v) in map {
                if key == "baseline" || key == "speedup" {
                    continue;
                }
                let label = if prefix.is_empty() {
                    key.clone()
                } else {
                    format!("{prefix}.{key}")
                };
                if key.ends_with("_s") {
                    if let Some(x) = v.as_f64() {
                        out.push((label, x));
                        continue;
                    }
                }
                walk(v, &label, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                walk(v, &element_label(prefix, i, v), out);
            }
        }
        _ => {}
    }
}

/// Array-element labelling: prefer a stable identity field over the index,
/// so reordered entries still line up across the two sides.
fn element_label(prefix: &str, index: usize, v: &Value) -> String {
    const ID_KEYS: [&str; 4] = ["areas", "path", "name", "combo"];
    let id = ID_KEYS.iter().find_map(|k| {
        v.get(k).map(|x| match x {
            Value::String(s) => format!("{k}={s}"),
            other => format!("{k}={other}"),
        })
    });
    match id {
        Some(id) => format!("{prefix}[{id}]"),
        None => format!("{prefix}[{index}]"),
    }
}

/// Compares every shared timing metric of two JSON artifacts.
pub fn compare(before: &Value, after: &Value, th: &Thresholds) -> RegressionReport {
    let b = extract_timings(before);
    let a = extract_timings(after);
    let mut report = RegressionReport::default();
    let mut ai = a.iter().peekable();
    let mut bi = b.iter().peekable();
    // Both sides are label-sorted: a linear merge pairs them up.
    loop {
        match (bi.peek(), ai.peek()) {
            (None, None) => break,
            (Some((bl, _)), None) => {
                report.only_before.push(bl.clone());
                bi.next();
            }
            (None, Some((al, _))) => {
                report.only_after.push(al.clone());
                ai.next();
            }
            (Some((bl, bv)), Some((al, av))) => match bl.cmp(al) {
                std::cmp::Ordering::Less => {
                    report.only_before.push(bl.clone());
                    bi.next();
                }
                std::cmp::Ordering::Greater => {
                    report.only_after.push(al.clone());
                    ai.next();
                }
                std::cmp::Ordering::Equal => {
                    let ratio = if *bv > 0.0 {
                        av / bv
                    } else if *av > 0.0 {
                        f64::INFINITY
                    } else {
                        1.0
                    };
                    let regressed = *av > bv * (1.0 + th.rel) && (av - bv) > th.abs;
                    report.deltas.push(MetricDelta {
                        label: bl.clone(),
                        before: *bv,
                        after: *av,
                        ratio,
                        regressed,
                    });
                    bi.next();
                    ai.next();
                }
            },
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn bench_shaped(solve_s: f64, graph_build_s: f64) -> Value {
        json!({
            "bench": "core",
            "sizes": json!([json!({
                "areas": 1000,
                "solve_s": solve_s,
                "graph_build_s": graph_build_s,
                "p": 118,
                "baseline": json!({ "solve_s": 99.0 }),
            })]),
        })
    }

    fn bench_like(solve_s: f64) -> Value {
        bench_shaped(solve_s, 0.001)
    }

    #[test]
    fn identical_inputs_pass() {
        let v = bench_like(0.5);
        let r = compare(&v, &v, &Thresholds::default());
        assert!(!r.is_regressed());
        assert_eq!(r.deltas.len(), 2);
        assert!(r.only_before.is_empty() && r.only_after.is_empty());
    }

    #[test]
    fn synthetic_slowdown_fails_both_gates() {
        let before = bench_like(0.5);
        let after = bench_like(1.0); // 2x slower, +0.5s: breaches both
        let r = compare(&before, &after, &Thresholds::default());
        assert!(r.is_regressed());
        let reg: Vec<_> = r.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].label, "sizes[areas=1000].solve_s");
        assert!((reg[0].ratio - 2.0).abs() < 1e-12);
        assert!(r.render(&Thresholds::default()).contains("FAIL"));
    }

    #[test]
    fn absolute_floor_tolerates_microsecond_jitter() {
        // 3x relative slow-down but only 2ms absolute: under the floor.
        let before = bench_like(0.5);
        let after = bench_shaped(0.5, 0.003);
        let r = compare(&before, &after, &Thresholds::default());
        assert!(!r.is_regressed(), "{:?}", r.deltas);
    }

    #[test]
    fn relative_gate_tolerates_small_shifts_on_slow_metrics() {
        // +0.06s on a 10s metric: over the absolute floor, under 30% rel.
        let before = bench_like(10.0);
        let after = bench_like(10.06);
        let r = compare(&before, &after, &Thresholds::default());
        assert!(!r.is_regressed());
    }

    #[test]
    fn embedded_baseline_history_is_skipped() {
        let v = bench_like(0.5);
        let labels: Vec<String> = extract_timings(&v).into_iter().map(|(l, _)| l).collect();
        assert!(labels.iter().all(|l| !l.contains("baseline")), "{labels:?}");
    }

    #[test]
    fn unmatched_labels_are_reported_not_dropped() {
        let before = json!({ "a_s": 1.0, "gone_s": 2.0 });
        let after = json!({ "a_s": 1.0, "new_s": 3.0 });
        let r = compare(&before, &after, &Thresholds::default());
        assert_eq!(r.only_before, vec!["gone_s"]);
        assert_eq!(r.only_after, vec!["new_s"]);
        assert_eq!(r.deltas.len(), 1);
    }
}
