//! # emp-bench — reproduction harness for the EMP paper's evaluation
//!
//! Regenerates **every table and figure** of "EMP: Max-P Regionalization with
//! Enriched Constraints" (ICDE 2022) on the synthetic datasets:
//!
//! * [`experiments`] — one module per paper artifact (Tables I–IV, Figures
//!   5–16, the §I MIP study) plus design-choice ablations;
//! * [`presets`] — the paper's default constraints (Table II) and the combo
//!   / range sweeps of §VII-B;
//! * [`runner`] — shared measurement plumbing for FaCT and the MP baseline,
//!   plus the [`JobSpec`](runner::JobSpec) cell decomposition;
//! * [`sched`] — the work-stealing pool behind `repro --jobs N`;
//! * [`canon`] — timing-masked canonical output for determinism diffs;
//! * [`report`] / [`regress`] — trace analytics (span trees, flamegraph
//!   folds, Prometheus snapshots) and the noise-aware perf-regression
//!   comparator behind `trace_report` and `bench_core --check-regression`;
//! * the `repro` binary — CLI entry point writing Markdown + CSV under
//!   `results/`;
//! * Criterion benches (`benches/`) — micro-benchmarks of the hot paths and
//!   the incremental-vs-naive ablations.
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! data); the *shapes* — who wins, monotone trends, where the AVG 3k±1k
//! bottleneck bites — are the reproduction target. See `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod canon;
pub mod experiments;
pub mod presets;
pub mod regress;
pub mod report;
pub mod runner;
pub mod sched;
pub mod table;

pub use experiments::{registry, ExpContext, Experiment};
pub use runner::{
    run_fact, run_mp, run_specs, run_traced, DatasetCache, JobKind, JobSpec, Measurement,
    RunOptions, TracedJob,
};
pub use sched::{derive_seed, JobPool};
pub use table::Table;
