//! Shared experiment runner: solve instances, collect measurement rows.

use crate::sched::JobPool;
use emp_baseline::{solve_mp_budgeted_observed, solve_mp_observed, MpConfig};
use emp_core::constraint::ConstraintSet;
use emp_core::control::{SolveBudget, StopReason};
use emp_core::instance::EmpInstance;
use emp_core::solver::{solve_budgeted_observed, solve_observed, FactConfig};
use emp_data::{Dataset, OnceMap};
use emp_obs::{
    BufferSink, CounterKind, Counters, EventSink, LiveRegistry, NoopSink, Recorder, RingSink,
    SharedSink, TeeSink,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of solver cells a budget stopped early (deadline or
/// cancellation); the `repro` harness drains it per experiment for its
/// degradation summary line.
static STOPPED_CELLS: AtomicU64 = AtomicU64::new(0);

/// Number of budget-stopped cells since the last [`take_stopped_cells`].
pub fn take_stopped_cells() -> u64 {
    STOPPED_CELLS.swap(0, Ordering::Relaxed)
}

fn note_stop(reason: StopReason) {
    if reason != StopReason::Completed {
        STOPPED_CELLS.fetch_add(1, Ordering::Relaxed);
    }
}

/// Measurement of one solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    /// Number of regions.
    pub p: usize,
    /// Unassigned-area count.
    pub unassigned: usize,
    /// Construction-phase seconds (incl. feasibility).
    pub construction_s: f64,
    /// Local-search seconds.
    pub tabu_s: f64,
    /// Heterogeneity improvement ratio from the local search; `None` when
    /// the search never ran or the initial objective was zero/non-finite
    /// (rendered `n/a`, see DESIGN.md §6).
    pub improvement: Option<f64>,
    /// Final heterogeneity.
    pub heterogeneity: f64,
    /// Why the solve stopped ([`StopReason::Completed`] unless a deadline
    /// or cancellation cut it short — the row then reports the best valid
    /// incumbent at the cut).
    pub stop_reason: StopReason,
    /// Telemetry counters of the run.
    pub counters: Counters,
}

impl Measurement {
    /// Total runtime.
    pub fn total_s(&self) -> f64 {
        self.construction_s + self.tabu_s
    }

    /// Tabu moves applied per local-search second, when both are nonzero.
    pub fn moves_per_sec(&self) -> Option<f64> {
        let moves = self.counters.get(CounterKind::TabuMovesApplied);
        (moves > 0 && self.tabu_s > 0.0).then(|| moves as f64 / self.tabu_s)
    }

    /// Articulation-cache hit rate, when the cache was queried.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.counters.articulation_hit_rate()
    }
}

/// Harness-wide run options.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Solver seed.
    pub seed: u64,
    /// Construction iterations.
    pub construction_iterations: usize,
    /// Run the tabu phase (p-only experiments can skip it).
    pub local_search: bool,
    /// Cap on non-improving tabu iterations; `None` = the paper's `n`.
    /// Large datasets use a cap so the harness finishes in minutes (noted in
    /// EXPERIMENTS.md).
    pub max_no_improve: Option<usize>,
    /// Hard cap on total tabu iterations (`None` = `20 n`).
    pub max_tabu_iterations: Option<usize>,
    /// Event sink the solvers stream span/trajectory events into (`None` =
    /// counters only, no event overhead).
    pub trace: Option<SharedSink>,
    /// Per-cell wall-clock deadline in milliseconds (`repro --deadline-ms`).
    /// `None` runs unbudgeted — the exact same code path as before the
    /// control plane existed, so unbudgeted timings are comparable.
    pub deadline_ms: Option<u64>,
    /// Where deadline-interrupted FaCT cells dump their [`emp_core::Checkpoint`]
    /// (`repro --checkpoint DIR`); `None` discards them.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Live-metrics registry: each cell registers a
    /// [`LiveSolve`](emp_obs::LiveSolve) mirror the `/metrics` and
    /// `/progress` endpoints read while the cell runs (`None` = no live
    /// telemetry, zero overhead).
    pub live: Option<Arc<LiveRegistry>>,
    /// Flight recorder: a shared fixed-capacity ring the cell's event
    /// stream is teed into; interrupted cells dump its tail as replayable
    /// JSONL next to their checkpoint.
    pub flight: Option<RingSink>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 20_22,
            construction_iterations: 3,
            local_search: true,
            max_no_improve: None,
            max_tabu_iterations: None,
            trace: None,
            deadline_ms: None,
            checkpoint_dir: None,
            live: None,
            flight: None,
        }
    }
}

impl RunOptions {
    /// Options for p-value tables (no local search needed: tabu keeps `p`).
    pub fn p_only() -> Self {
        RunOptions {
            local_search: false,
            ..Default::default()
        }
    }

    /// Effective tabu cap for an instance of `n` areas.
    pub fn effective_no_improve(&self, n: usize) -> usize {
        self.max_no_improve.unwrap_or(n)
    }

    /// A recorder for one run: the trace sink and/or the flight-recorder
    /// ring when configured (teed when both are), noop otherwise.
    pub fn recorder(&self) -> Recorder {
        let sink: Box<dyn EventSink + Send> = match (&self.trace, &self.flight) {
            (Some(trace), Some(flight)) => Box::new(TeeSink::new(
                Box::new(trace.clone()),
                Box::new(flight.clone()),
            )),
            (Some(trace), None) => Box::new(trace.clone()),
            (None, Some(flight)) => Box::new(flight.clone()),
            (None, None) => Box::new(NoopSink),
        };
        Recorder::with_sink(sink)
    }

    /// Registers a live mirror for one cell and attaches it to `rec` (no-op
    /// without a registry).
    fn attach_live(&self, rec: &mut Recorder, label: &str) {
        if let Some(registry) = &self.live {
            rec.attach_live(registry.register(label));
        }
    }
}

/// Writes a deadline-interrupted cell's checkpoint (`--checkpoint DIR`).
/// Keyed by instance size and seed — the pair that identifies a resumable
/// cell. Write failures degrade to a warning: a missing checkpoint must not
/// take the harness down with it.
fn write_checkpoint(
    dir: &std::path::Path,
    areas: usize,
    seed: u64,
    checkpoint: &emp_core::Checkpoint,
) {
    let path = dir.join(format!("fact-n{areas}-seed{seed}.ckpt"));
    let result =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, checkpoint.to_text()));
    if let Err(e) = result {
        eprintln!("warn: could not write checkpoint {}: {e}", path.display());
    }
}

/// Dumps the flight-recorder tail of an interrupted cell as replayable
/// JSONL next to its checkpoint (same key, `.flight.jsonl` suffix). Same
/// warn-on-failure policy as [`write_checkpoint`].
fn write_flight_dump(dir: &std::path::Path, areas: usize, seed: u64, flight: &RingSink) {
    let path = dir.join(format!("fact-n{areas}-seed{seed}.flight.jsonl"));
    let result =
        std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, flight.dump_jsonl()));
    if let Err(e) = result {
        eprintln!("warn: could not write flight dump {}: {e}", path.display());
    }
}

/// Runs FaCT and converts the report into a [`Measurement`]. With
/// `opts.deadline_ms` set the solve runs under a wall-clock budget and may
/// return early with its best valid incumbent (and a checkpoint, persisted
/// when `opts.checkpoint_dir` is set); without it, the pre-control-plane
/// unbudgeted path runs unchanged.
pub fn run_fact(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    opts: &RunOptions,
) -> Measurement {
    // Experiment cells deliberately keep the solver serial (`jobs = 1`,
    // the default): the cell pool already saturates the host, and the CI
    // trace-diff (`repro --jobs 1` vs `--jobs 2`) pins byte-equal per-cell
    // traces. Solver-level sharding is measured by `bench_core --jobs` and
    // the `BENCH_tabu.json` sharded section instead (EXPERIMENTS.md).
    let config = FactConfig {
        construction_iterations: opts.construction_iterations,
        max_no_improve: Some(opts.effective_no_improve(instance.len())),
        max_tabu_iterations: opts.max_tabu_iterations,
        local_search: opts.local_search,
        seed: opts.seed,
        ..FactConfig::default()
    };
    let measure = |report: &emp_core::solver::SolveReport, stop_reason: StopReason| Measurement {
        p: report.p(),
        unassigned: report.solution.unassigned.len(),
        construction_s: report.timings.feasibility + report.timings.construction,
        tabu_s: report.timings.local_search,
        improvement: report.improvement(),
        heterogeneity: report.solution.heterogeneity,
        stop_reason,
        counters: report.counters,
    };
    let mut rec = opts.recorder();
    opts.attach_live(
        &mut rec,
        &format!("fact-n{}-seed{}", instance.len(), opts.seed),
    );
    let m = match opts.deadline_ms {
        Some(ms) => {
            let budget = SolveBudget::deadline_ms(ms);
            match solve_budgeted_observed(instance, constraints, &config, &budget, &mut rec) {
                Ok(outcome) => {
                    note_stop(outcome.stop_reason);
                    if outcome.stop_reason != StopReason::Completed {
                        if let (Some(dir), Some(flight)) = (&opts.checkpoint_dir, &opts.flight) {
                            write_flight_dump(dir, instance.len(), opts.seed, flight);
                        }
                    }
                    if let (Some(dir), Some(ckpt)) = (&opts.checkpoint_dir, &outcome.checkpoint) {
                        write_checkpoint(dir, instance.len(), opts.seed, ckpt);
                    }
                    measure(&outcome.report, outcome.stop_reason)
                }
                Err(_) => Measurement::default(),
            }
        }
        None => match solve_observed(instance, constraints, &config, &mut rec) {
            Ok(report) => measure(&report, StopReason::Completed),
            // Infeasible query: report zeros (the paper reports such cells
            // as empty / p = 0).
            Err(_) => Measurement::default(),
        },
    };
    rec.finish();
    m
}

/// Runs the MP-regions baseline with a single `SUM(TOTALPOP) >= threshold`.
/// Honors `opts.deadline_ms` like [`run_fact`]; baselines carry no
/// checkpoint (they are cheap to re-run from scratch).
pub fn run_mp(instance: &EmpInstance, threshold: f64, opts: &RunOptions) -> Measurement {
    let config = MpConfig {
        construction_iterations: opts.construction_iterations,
        max_no_improve: Some(opts.effective_no_improve(instance.len())),
        max_tabu_iterations: opts.max_tabu_iterations,
        local_search: opts.local_search,
        seed: opts.seed,
        ..MpConfig::default()
    };
    let measure = |report: &emp_baseline::MpReport, stop_reason: StopReason| Measurement {
        p: report.p(),
        unassigned: report.solution.unassigned.len(),
        construction_s: report.timings.construction,
        tabu_s: report.timings.local_search,
        improvement: report.improvement(),
        heterogeneity: report.solution.heterogeneity,
        stop_reason,
        counters: report.counters,
    };
    let mut rec = opts.recorder();
    opts.attach_live(
        &mut rec,
        &format!("mp-n{}-seed{}", instance.len(), opts.seed),
    );
    let m = match opts.deadline_ms {
        Some(ms) => {
            let budget = SolveBudget::deadline_ms(ms);
            match solve_mp_budgeted_observed(
                instance, "TOTALPOP", threshold, &config, &budget, &mut rec,
            ) {
                Ok((report, stop_reason)) => {
                    note_stop(stop_reason);
                    measure(&report, stop_reason)
                }
                Err(_) => Measurement::default(),
            }
        }
        None => match solve_mp_observed(instance, "TOTALPOP", threshold, &config, &mut rec) {
            Ok(report) => measure(&report, StopReason::Completed),
            Err(_) => Measurement::default(),
        },
    };
    rec.finish();
    m
}

/// A process-wide dataset cache: experiments share the (deterministic)
/// presets instead of regenerating tessellations per table.
///
/// Built on [`OnceMap`], so the cache `Mutex` is never held across a build:
/// concurrent workers asking for *distinct* datasets synthesize them in
/// parallel, workers asking for the *same* dataset block on that entry
/// alone, and every lookup after initialization is contention-free. (The
/// old implementation held one global lock for the entire multi-second
/// build, serializing unrelated cells.)
pub struct DatasetCache {
    cache: OnceMap<String, &'static Dataset>,
}

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DatasetCache {
            cache: OnceMap::new(),
        }
    }

    /// Returns the preset dataset, building (and leaking) it on first use.
    /// Leaking is deliberate: the harness is a short-lived process and the
    /// datasets live for its duration anyway.
    pub fn get(&self, name: &str) -> &'static Dataset {
        self.get_with(name, || {
            emp_data::build_preset(name)
                .unwrap_or_else(|| panic!("unknown dataset preset '{name}'"))
        })
    }

    /// Returns a dataset of an arbitrary size keyed by `name`, building it
    /// with [`emp_data::build_sized`] on first use.
    pub fn get_or_build(&self, name: &str, areas: usize) -> &'static Dataset {
        self.get_with(name, || emp_data::build_sized(name, areas))
    }

    /// Returns the dataset keyed by `name`, building it with `build` on
    /// first use. `build` runs outside every cache lock; only requests for
    /// this same `name` wait on it.
    pub fn get_with<F: FnOnce() -> Dataset>(&self, name: &str, build: F) -> &'static Dataset {
        *self
            .cache
            .get_or_init(&name.to_string(), || -> &'static Dataset {
                Box::leak(Box::new(build()))
            })
    }
}

impl Default for DatasetCache {
    fn default() -> Self {
        Self::new()
    }
}

/// What a harness cell solves.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// A FaCT solve under the given constraint set.
    Fact(ConstraintSet),
    /// An MP-regions baseline solve with `SUM(TOTALPOP) >= threshold`.
    Mp(f64),
}

/// One independent experiment cell: an instance, what to solve on it, and
/// the run options (seed, caps, tracing). Cells carry everything they need,
/// so the pool can run them in any order on any worker.
pub struct JobSpec<'a> {
    /// The instance to solve (borrowed; datasets outlive the harness).
    pub instance: &'a EmpInstance,
    /// FaCT or the MP baseline.
    pub kind: JobKind,
    /// Options for this cell.
    pub opts: RunOptions,
}

impl JobSpec<'_> {
    /// Solves the cell.
    fn run(self) -> Measurement {
        match &self.kind {
            JobKind::Fact(set) => run_fact(self.instance, set, &self.opts),
            JobKind::Mp(threshold) => run_mp(self.instance, *threshold, &self.opts),
        }
    }
}

/// A boxed cell task that records its telemetry into the provided private
/// sink (`None` when the harness runs untraced).
pub type TracedJob<'a, T> = Box<dyn FnOnce(Option<SharedSink>) -> T + Send + 'a>;

/// Runs heterogeneous cells on `pool`, returning results in submission
/// order.
///
/// Telemetry is what makes this more than `pool.run`: each cell records
/// into a **private** [`BufferSink`], and once the pool joins, the buffers
/// are replayed into `trace` in submission order. A `--jobs N` trace is
/// therefore event-for-event identical to the `--jobs 1` trace — the same
/// buffered path runs for every worker count, only the wall-clock values
/// inside events differ.
pub fn run_traced<'a, T: Send + 'a>(
    pool: &JobPool,
    trace: &Option<SharedSink>,
    tasks: Vec<TracedJob<'a, T>>,
) -> Vec<T> {
    let tracing = trace.is_some();
    let mut handles = Vec::with_capacity(if tracing { tasks.len() } else { 0 });
    let jobs: Vec<_> = tasks
        .into_iter()
        .map(|task| {
            let private = tracing.then(|| {
                let buffer = BufferSink::new();
                handles.push(buffer.handle());
                SharedSink::new(Box::new(buffer))
            });
            Box::new(move || task(private)) as crate::sched::Job<'a, T>
        })
        .collect();
    let results = pool.run(jobs);
    if let Some(sink) = trace {
        let mut sink = sink.clone();
        for handle in handles {
            let events = handle.lock().expect("buffer sink handle");
            emp_obs::replay(&events, &mut sink);
        }
    }
    results
}

/// Runs solver cells on `pool` with per-job buffered telemetry (see
/// [`run_traced`]), returning measurements in submission order. Each spec's
/// own `opts.trace` is overridden by the harness-managed private sink.
pub fn run_specs<'a>(
    pool: &JobPool,
    trace: &Option<SharedSink>,
    specs: Vec<JobSpec<'a>>,
) -> Vec<Measurement> {
    let tasks: Vec<TracedJob<'a, Measurement>> = specs
        .into_iter()
        .map(|mut spec| {
            Box::new(move |private: Option<SharedSink>| {
                spec.opts.trace = private;
                spec.run()
            }) as TracedJob<'a, Measurement>
        })
        .collect();
    run_traced(pool, trace, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Combo;

    #[test]
    fn fact_and_mp_run_on_small_dataset() {
        let d = emp_data::build_sized("t", 150);
        let inst = d.to_instance().unwrap();
        let opts = RunOptions {
            max_no_improve: Some(50),
            ..RunOptions::default()
        };
        let set = Combo::Mas.build(None, None, None);
        let m = run_fact(&inst, &set, &opts);
        assert!(m.p > 0);
        assert!(m.total_s() > 0.0);
        assert!(m.counters.get(CounterKind::RegionsCreated) > 0);
        let b = run_mp(&inst, 20_000.0, &opts);
        assert!(b.p > 0);
        assert!(b.counters.get(CounterKind::RegionsCreated) > 0);
    }

    #[test]
    fn deadline_zero_degrades_gracefully() {
        let d = emp_data::build_sized("t", 150);
        let inst = d.to_instance().unwrap();
        let dir = std::env::temp_dir().join("emp-runner-ckpt-test");
        let _ = std::fs::remove_dir_all(&dir);
        let opts = RunOptions {
            deadline_ms: Some(0),
            checkpoint_dir: Some(dir.clone()),
            max_no_improve: Some(50),
            ..RunOptions::default()
        };
        let set = Combo::Mas.build(None, None, None);
        let _ = take_stopped_cells();
        let m = run_fact(&inst, &set, &opts);
        assert_ne!(m.stop_reason, StopReason::Completed);
        let b = run_mp(&inst, 20_000.0, &opts);
        assert_ne!(b.stop_reason, StopReason::Completed);
        assert!(take_stopped_cells() >= 2);
        // The interrupted FaCT cell dumped a resumable checkpoint.
        let dumped: Vec<_> = std::fs::read_dir(&dir)
            .expect("checkpoint dir exists")
            .filter_map(|e| e.ok())
            .collect();
        assert_eq!(dumped.len(), 1, "one FaCT cell, one checkpoint");
        let text = std::fs::read_to_string(dumped[0].path()).unwrap();
        emp_core::Checkpoint::from_text(&text).expect("dumped checkpoint parses");
        let _ = std::fs::remove_dir_all(&dir);
        // A generous deadline completes and reports so.
        let relaxed = RunOptions {
            deadline_ms: Some(600_000),
            max_no_improve: Some(50),
            ..RunOptions::default()
        };
        let m = run_fact(&inst, &set, &relaxed);
        assert_eq!(m.stop_reason, StopReason::Completed);
        assert!(m.p > 0);
        let _ = take_stopped_cells();
    }

    #[test]
    fn p_only_skips_tabu() {
        let d = emp_data::build_sized("t", 120);
        let inst = d.to_instance().unwrap();
        let m = run_fact(
            &inst,
            &Combo::M.build(None, None, None),
            &RunOptions::p_only(),
        );
        assert!(m.tabu_s < 1e-3, "skipped tabu should be ~instant");
        assert_eq!(m.improvement, None, "no local search -> improvement n/a");
    }

    #[test]
    fn infeasible_yields_default() {
        let d = emp_data::build_sized("t", 50);
        let inst = d.to_instance().unwrap();
        let set = Combo::S.build(
            None,
            None,
            Some(crate::presets::sum_range(1e15, f64::INFINITY)),
        );
        let m = run_fact(&inst, &set, &RunOptions::p_only());
        assert_eq!(m.p, 0);
    }

    #[test]
    fn cache_returns_same_dataset() {
        let cache = DatasetCache::new();
        let a = cache.get("1k") as *const Dataset;
        let b = cache.get("1k") as *const Dataset;
        assert_eq!(a, b);
    }

    /// Regression test for the build-under-global-lock bug: two *distinct*
    /// presets must synthesize at the same time. Each build rendezvouses
    /// with the other inside its build closure; if builds were serialized
    /// under one cache-wide lock, the wait below would time out.
    #[test]
    fn distinct_presets_build_concurrently() {
        use std::sync::{Condvar, Mutex};
        use std::time::Duration;

        let cache = DatasetCache::new();
        let gate = (Mutex::new(0usize), Condvar::new());
        std::thread::scope(|s| {
            for name in ["conc-a", "conc-b"] {
                let cache = &cache;
                let gate = &gate;
                s.spawn(move || {
                    cache.get_with(name, || {
                        let (lock, cv) = gate;
                        let mut inside = lock.lock().unwrap();
                        *inside += 1;
                        cv.notify_all();
                        while *inside < 2 {
                            let (guard, timeout) =
                                cv.wait_timeout(inside, Duration::from_secs(10)).unwrap();
                            inside = guard;
                            assert!(
                                !timeout.timed_out(),
                                "distinct dataset builds were serialized: the \
                                 second build never entered while the first \
                                 held the cache"
                            );
                        }
                        emp_data::build_sized(name, 60)
                    });
                });
            }
        });
        assert_eq!(cache.get_with("conc-a", || unreachable!()).name, "conc-a");
    }

    /// The pool path must produce the same solver results as the sequential
    /// path (wall-clock fields aside), and replayed traces must carry the
    /// same spans in the same order.
    #[test]
    fn run_specs_is_jobs_invariant() {
        use crate::sched::JobPool;
        use emp_obs::InMemorySink;

        let d = emp_data::build_sized("t", 120);
        let inst = d.to_instance().unwrap();
        let opts = RunOptions {
            max_no_improve: Some(40),
            ..RunOptions::default()
        };
        let specs = || -> Vec<JobSpec<'_>> {
            vec![
                JobSpec {
                    instance: &inst,
                    kind: JobKind::Fact(Combo::Mas.build(None, None, None)),
                    opts: opts.clone(),
                },
                JobSpec {
                    instance: &inst,
                    kind: JobKind::Fact(Combo::M.build(None, None, None)),
                    opts: RunOptions {
                        seed: 7,
                        ..opts.clone()
                    },
                },
                JobSpec {
                    instance: &inst,
                    kind: JobKind::Mp(20_000.0),
                    opts: opts.clone(),
                },
            ]
        };

        let traced = |jobs: usize| {
            let sink = InMemorySink::new();
            let handle = sink.handle();
            let trace = Some(SharedSink::new(Box::new(sink)));
            let results = run_specs(&JobPool::new(jobs), &trace, specs());
            (results, handle)
        };
        let (seq, seq_trace) = traced(1);
        let (par, par_trace) = traced(4);

        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.p, b.p);
            assert_eq!(a.unassigned, b.unassigned);
            assert_eq!(a.heterogeneity, b.heterogeneity);
            assert_eq!(a.improvement, b.improvement);
            assert_eq!(a.counters, b.counters);
        }

        let shape = |handle: &std::sync::Arc<std::sync::Mutex<emp_obs::TraceData>>| {
            let data = handle.lock().unwrap();
            let spans: Vec<_> = data
                .spans
                .iter()
                .map(|s| (s.name.clone(), s.index, s.depth, s.counters))
                .collect();
            (spans, data.trajectory.clone(), data.notes.clone())
        };
        assert_eq!(shape(&seq_trace), shape(&par_trace));
    }

    #[test]
    fn effective_cap() {
        let o = RunOptions::default();
        assert_eq!(o.effective_no_improve(500), 500);
        let o = RunOptions {
            max_no_improve: Some(100),
            ..RunOptions::default()
        };
        assert_eq!(o.effective_no_improve(500), 100);
    }
}
