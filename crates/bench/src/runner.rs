//! Shared experiment runner: solve instances, collect measurement rows.

use emp_baseline::{solve_mp_observed, MpConfig};
use emp_core::constraint::ConstraintSet;
use emp_core::instance::EmpInstance;
use emp_core::solver::{solve_observed, FactConfig};
use emp_data::Dataset;
use emp_obs::{CounterKind, Counters, Recorder, SharedSink};
use std::collections::HashMap;
use std::sync::Mutex;

/// Measurement of one solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct Measurement {
    /// Number of regions.
    pub p: usize,
    /// Unassigned-area count.
    pub unassigned: usize,
    /// Construction-phase seconds (incl. feasibility).
    pub construction_s: f64,
    /// Local-search seconds.
    pub tabu_s: f64,
    /// Heterogeneity improvement ratio from the local search; `None` when
    /// the search never ran or the initial objective was zero/non-finite
    /// (rendered `n/a`, see DESIGN.md §6).
    pub improvement: Option<f64>,
    /// Final heterogeneity.
    pub heterogeneity: f64,
    /// Telemetry counters of the run.
    pub counters: Counters,
}

impl Measurement {
    /// Total runtime.
    pub fn total_s(&self) -> f64 {
        self.construction_s + self.tabu_s
    }

    /// Tabu moves applied per local-search second, when both are nonzero.
    pub fn moves_per_sec(&self) -> Option<f64> {
        let moves = self.counters.get(CounterKind::TabuMovesApplied);
        (moves > 0 && self.tabu_s > 0.0).then(|| moves as f64 / self.tabu_s)
    }

    /// Articulation-cache hit rate, when the cache was queried.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.counters.articulation_hit_rate()
    }
}

/// Harness-wide run options.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Solver seed.
    pub seed: u64,
    /// Construction iterations.
    pub construction_iterations: usize,
    /// Run the tabu phase (p-only experiments can skip it).
    pub local_search: bool,
    /// Cap on non-improving tabu iterations; `None` = the paper's `n`.
    /// Large datasets use a cap so the harness finishes in minutes (noted in
    /// EXPERIMENTS.md).
    pub max_no_improve: Option<usize>,
    /// Hard cap on total tabu iterations (`None` = `20 n`).
    pub max_tabu_iterations: Option<usize>,
    /// Event sink the solvers stream span/trajectory events into (`None` =
    /// counters only, no event overhead).
    pub trace: Option<SharedSink>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 20_22,
            construction_iterations: 3,
            local_search: true,
            max_no_improve: None,
            max_tabu_iterations: None,
            trace: None,
        }
    }
}

impl RunOptions {
    /// Options for p-value tables (no local search needed: tabu keeps `p`).
    pub fn p_only() -> Self {
        RunOptions {
            local_search: false,
            ..Default::default()
        }
    }

    /// Effective tabu cap for an instance of `n` areas.
    pub fn effective_no_improve(&self, n: usize) -> usize {
        self.max_no_improve.unwrap_or(n)
    }

    /// A recorder for one run: traced when a sink is configured, noop
    /// otherwise.
    pub fn recorder(&self) -> Recorder {
        match &self.trace {
            Some(sink) => Recorder::with_sink(Box::new(sink.clone())),
            None => Recorder::noop(),
        }
    }
}

/// Runs FaCT and converts the report into a [`Measurement`].
pub fn run_fact(
    instance: &EmpInstance,
    constraints: &ConstraintSet,
    opts: &RunOptions,
) -> Measurement {
    let config = FactConfig {
        construction_iterations: opts.construction_iterations,
        max_no_improve: Some(opts.effective_no_improve(instance.len())),
        max_tabu_iterations: opts.max_tabu_iterations,
        local_search: opts.local_search,
        seed: opts.seed,
        ..FactConfig::default()
    };
    let mut rec = opts.recorder();
    let m = match solve_observed(instance, constraints, &config, &mut rec) {
        Ok(report) => Measurement {
            p: report.p(),
            unassigned: report.solution.unassigned.len(),
            construction_s: report.timings.feasibility + report.timings.construction,
            tabu_s: report.timings.local_search,
            improvement: report.improvement(),
            heterogeneity: report.solution.heterogeneity,
            counters: report.counters,
        },
        // Infeasible query: report zeros (the paper reports such cells as
        // empty / p = 0).
        Err(_) => Measurement::default(),
    };
    rec.finish();
    m
}

/// Runs the MP-regions baseline with a single `SUM(TOTALPOP) >= threshold`.
pub fn run_mp(instance: &EmpInstance, threshold: f64, opts: &RunOptions) -> Measurement {
    let config = MpConfig {
        construction_iterations: opts.construction_iterations,
        max_no_improve: Some(opts.effective_no_improve(instance.len())),
        max_tabu_iterations: opts.max_tabu_iterations,
        local_search: opts.local_search,
        seed: opts.seed,
        ..MpConfig::default()
    };
    let mut rec = opts.recorder();
    let m = match solve_mp_observed(instance, "TOTALPOP", threshold, &config, &mut rec) {
        Ok(report) => Measurement {
            p: report.p(),
            unassigned: report.solution.unassigned.len(),
            construction_s: report.timings.construction,
            tabu_s: report.timings.local_search,
            improvement: report.improvement(),
            heterogeneity: report.solution.heterogeneity,
            counters: report.counters,
        },
        Err(_) => Measurement::default(),
    };
    rec.finish();
    m
}

/// A process-wide dataset cache: experiments share the (deterministic)
/// presets instead of regenerating tessellations per table.
pub struct DatasetCache {
    cache: Mutex<HashMap<String, &'static Dataset>>,
}

impl DatasetCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        DatasetCache {
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the preset dataset, building (and leaking) it on first use.
    /// Leaking is deliberate: the harness is a short-lived process and the
    /// datasets live for its duration anyway.
    pub fn get(&self, name: &str) -> &'static Dataset {
        let mut cache = self.cache.lock().expect("cache lock");
        if let Some(d) = cache.get(name) {
            return d;
        }
        let built = emp_data::build_preset(name)
            .unwrap_or_else(|| panic!("unknown dataset preset '{name}'"));
        let leaked: &'static Dataset = Box::leak(Box::new(built));
        cache.insert(name.to_string(), leaked);
        leaked
    }

    /// Returns a dataset of an arbitrary size keyed by `name`, building it
    /// with [`emp_data::build_sized`] on first use.
    pub fn get_or_build(&self, name: &str, areas: usize) -> &'static Dataset {
        let mut cache = self.cache.lock().expect("cache lock");
        if let Some(d) = cache.get(name) {
            return d;
        }
        let leaked: &'static Dataset = Box::leak(Box::new(emp_data::build_sized(name, areas)));
        cache.insert(name.to_string(), leaked);
        leaked
    }
}

impl Default for DatasetCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Combo;

    #[test]
    fn fact_and_mp_run_on_small_dataset() {
        let d = emp_data::build_sized("t", 150);
        let inst = d.to_instance().unwrap();
        let opts = RunOptions {
            max_no_improve: Some(50),
            ..RunOptions::default()
        };
        let set = Combo::Mas.build(None, None, None);
        let m = run_fact(&inst, &set, &opts);
        assert!(m.p > 0);
        assert!(m.total_s() > 0.0);
        assert!(m.counters.get(CounterKind::RegionsCreated) > 0);
        let b = run_mp(&inst, 20_000.0, &opts);
        assert!(b.p > 0);
        assert!(b.counters.get(CounterKind::RegionsCreated) > 0);
    }

    #[test]
    fn p_only_skips_tabu() {
        let d = emp_data::build_sized("t", 120);
        let inst = d.to_instance().unwrap();
        let m = run_fact(
            &inst,
            &Combo::M.build(None, None, None),
            &RunOptions::p_only(),
        );
        assert!(m.tabu_s < 1e-3, "skipped tabu should be ~instant");
        assert_eq!(m.improvement, None, "no local search -> improvement n/a");
    }

    #[test]
    fn infeasible_yields_default() {
        let d = emp_data::build_sized("t", 50);
        let inst = d.to_instance().unwrap();
        let set = Combo::S.build(
            None,
            None,
            Some(crate::presets::sum_range(1e15, f64::INFINITY)),
        );
        let m = run_fact(&inst, &set, &RunOptions::p_only());
        assert_eq!(m.p, 0);
    }

    #[test]
    fn cache_returns_same_dataset() {
        let cache = DatasetCache::new();
        let a = cache.get("1k") as *const Dataset;
        let b = cache.get("1k") as *const Dataset;
        assert_eq!(a, b);
    }

    #[test]
    fn effective_cap() {
        let o = RunOptions::default();
        assert_eq!(o.effective_no_improve(500), 500);
        let o = RunOptions {
            max_no_improve: Some(100),
            ..RunOptions::default()
        };
        assert_eq!(o.effective_no_improve(500), 100);
    }
}
