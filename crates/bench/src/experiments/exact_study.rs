//! The §I MIP study, reproduced with the exact branch-and-bound solver.
//!
//! The paper solves EMP's MIP with Gurobi: 33.86 s for 9 areas, ~10 h for
//! 16 areas, and no solution for 25 areas after 110 h — demonstrating that
//! exact solving is hopeless beyond toy sizes. We reproduce the *shape*:
//! node counts and runtimes explode with `n` while FaCT stays instant, and
//! on instances the exact solver finishes, FaCT's `p` is close to optimal.

use super::ExpContext;
use crate::presets::Combo;
use crate::runner::{run_fact, TracedJob};
use crate::table::{fmt_secs, Table};
use emp_core::instance::EmpInstance;
use emp_exact::{exact_solve, ExactConfig};
use std::time::Instant;

/// Grid sizes mirroring the paper's 9 / 16 / 25-area MIP instances.
const SIZES: [usize; 3] = [9, 16, 25];

/// Runs the study.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let mut table = Table::new(
        "Exact study — branch-and-bound vs FaCT (paper §I Gurobi experiment)",
        &[
            "areas",
            "exact_nodes",
            "exact_time_s",
            "exact_complete",
            "optimal_p",
            "fact_p",
            "fact_time_s",
        ],
    );
    let budget = if ctx.fast { 2_000_000 } else { 40_000_000 };
    // One cell per grid size: dataset synthesis, the exact branch-and-bound
    // run, and the FaCT reference all live inside the cell, so the three
    // sizes proceed concurrently under `--jobs`.
    let cells: Vec<TracedJob<'_, Vec<String>>> = SIZES
        .iter()
        .map(|&n| {
            Box::new(move |sink| {
                let side = (n as f64).sqrt().round() as usize;
                let instance = grid_instance(side, ctx.seed);
                // A SUM threshold that forces ~2-3 areas per region.
                let total: f64 = (0..n as u32)
                    .map(|a| instance.attributes().value(0, a as usize))
                    .sum();
                let threshold = total / (n as f64 / 2.5);
                let constraints = Combo::S.build(
                    None,
                    None,
                    Some(emp_core::Constraint::sum("TOTALPOP", threshold, f64::INFINITY).unwrap()),
                );

                let t0 = Instant::now();
                let exact = exact_solve(
                    &instance,
                    &constraints,
                    &ExactConfig {
                        max_nodes: budget,
                        ..ExactConfig::default()
                    },
                )
                .expect("small instance");
                let exact_time = t0.elapsed().as_secs_f64();

                let t1 = Instant::now();
                let mut opts = ctx.opts(true, n);
                opts.trace = sink;
                let fact = run_fact(&instance, &constraints, &opts);
                let fact_time = t1.elapsed().as_secs_f64();

                vec![
                    n.to_string(),
                    exact.nodes.to_string(),
                    fmt_secs(exact_time),
                    exact.complete.to_string(),
                    exact.solution.p().to_string(),
                    fact.p.to_string(),
                    fmt_secs(fact_time),
                ]
            }) as TracedJob<'_, Vec<String>>
        })
        .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    vec![table]
}

/// A small grid instance with the default attribute generator
/// (`build_sized` keys its RNG off the area count, so this is
/// deterministic).
fn grid_instance(side: usize, _seed: u64) -> EmpInstance {
    let d = emp_data::build_sized(&format!("exact-{side}"), side * side);
    d.to_instance().expect("instance")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blow_up_and_near_optimality() {
        let ctx = ExpContext::fast();
        let t = run(&ctx).remove(0);
        assert_eq!(t.rows.len(), 3);
        let nodes = |i: usize| t.rows[i][1].parse::<u64>().unwrap();
        // Node counts explode with n (9 -> 16 -> 25 areas).
        assert!(
            nodes(0) < nodes(1) && nodes(1) < nodes(2),
            "{:?}",
            (nodes(0), nodes(1), nodes(2))
        );
        // Where the exact search completed, FaCT is close to optimal.
        for row in &t.rows {
            if row[3] == "true" {
                let opt: i64 = row[4].parse().unwrap();
                let fact: i64 = row[5].parse().unwrap();
                assert!(fact <= opt, "heuristic cannot beat the optimum");
                assert!(fact * 3 >= opt * 2, "fact {fact} far from optimal {opt}");
            }
        }
    }
}
