//! Table I (dataset inventory) and Table II (default constraints), echoed
//! for the synthetic substitutes with their measured graph statistics.

use super::ExpContext;
use crate::runner::TracedJob;
use crate::table::{fmt_f, Table};
use emp_data::Dataset;
use emp_graph::connected_components;

/// Builds the dataset-inventory and default-constraint tables.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let mut inventory = Table::new(
        "Table I — evaluation datasets (synthetic substitutes, exact paper sizes)",
        &[
            "name",
            "areas",
            "edges",
            "mean degree",
            "components",
            "denotes",
        ],
    );
    let names: Vec<&str> = if ctx.fast {
        vec!["1k", "2k"]
    } else {
        vec!["1k", "2k", "4k", "8k"]
    };
    // Build every preset concurrently through the once-init cache; the
    // table rows are then filled in the fixed inventory order.
    let cells: Vec<TracedJob<'_, &'static Dataset>> = names
        .iter()
        .map(|&name| Box::new(move |_| ctx.cache.get(name)) as TracedJob<'_, &'static Dataset>)
        .collect();
    let built = ctx.run_cells(cells);
    for (&name, d) in names.iter().zip(built) {
        let preset = emp_data::preset(name).expect("known preset");
        inventory.push_row(vec![
            name.to_string(),
            d.len().to_string(),
            d.graph.edge_count().to_string(),
            fmt_f((d.graph.mean_degree() * 100.0).round() / 100.0),
            connected_components(&d.graph).count().to_string(),
            preset.description.to_string(),
        ]);
    }

    let mut defaults = Table::new(
        "Table II — default constraints",
        &["constraint type", "aggregate", "attribute", "range"],
    );
    defaults.push_row(vec![
        "Extrema".into(),
        "MIN".into(),
        "POP16UP".into(),
        "(-inf, 3000]".into(),
    ]);
    defaults.push_row(vec![
        "Centrality".into(),
        "AVG".into(),
        "EMPLOYED".into(),
        "[1500, 3500]".into(),
    ]);
    defaults.push_row(vec![
        "Counting".into(),
        "SUM".into(),
        "TOTALPOP".into(),
        "[20000, inf)".into(),
    ]);
    vec![inventory, defaults]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_tables() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2); // fast mode: 1k + 2k
        assert_eq!(tables[1].rows.len(), 3);
        assert!(tables[0].markdown().contains("Los Angeles"));
    }
}
