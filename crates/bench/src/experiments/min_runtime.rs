//! Figures 5, 6, 7a, 7b: construction and Tabu runtimes for MIN-constraint
//! combinations under the three range regimes.

use super::ExpContext;
use crate::presets::{min_range, Combo};
use crate::runner::{JobKind, JobSpec};
use crate::table::{fmt_bound, fmt_improvement, fmt_secs, Table};
use emp_core::instance::EmpInstance;

const COMBOS: [Combo; 4] = [Combo::M, Combo::Ms, Combo::Ma, Combo::Mas];

/// Runs all four figures.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("preset instance");

    let fig5 = sweep(
        ctx,
        &instance,
        "Figure 5 — runtime for MIN with l = -inf (seconds)",
        &[
            (f64::NEG_INFINITY, 2000.0),
            (f64::NEG_INFINITY, 3500.0),
            (f64::NEG_INFINITY, 5000.0),
        ],
    );
    let fig6 = sweep(
        ctx,
        &instance,
        "Figure 6 — runtime for MIN with u = inf (seconds)",
        &[
            (2000.0, f64::INFINITY),
            (3500.0, f64::INFINITY),
            (5000.0, f64::INFINITY),
        ],
    );
    let fig7a = sweep(
        ctx,
        &instance,
        "Figure 7a — runtime for MIN, bounded ranges, varying length (midpoint 3k)",
        &[
            (2500.0, 3500.0),
            (2000.0, 4000.0),
            (1500.0, 4500.0),
            (1000.0, 5000.0),
        ],
    );
    let fig7b = sweep(
        ctx,
        &instance,
        "Figure 7b — runtime for MIN, bounded ranges, varying midpoint (length 1k)",
        &[
            (1000.0, 2000.0),
            (2000.0, 3000.0),
            (3000.0, 4000.0),
            (4000.0, 5000.0),
        ],
    );
    vec![fig5, fig6, fig7a, fig7b]
}

fn sweep(ctx: &ExpContext, instance: &EmpInstance, title: &str, ranges: &[(f64, f64)]) -> Table {
    let opts = ctx.opts(true, instance.len());
    let mut table = Table::new(
        title,
        &[
            "combo",
            "range",
            "construction_s",
            "tabu_s",
            "total_s",
            "p",
            "improvement_%",
        ],
    );
    let specs: Vec<JobSpec<'_>> = COMBOS
        .iter()
        .flat_map(|combo| {
            ranges.iter().map(|&(l, u)| JobSpec {
                instance,
                kind: JobKind::Fact(combo.build(Some(min_range(l, u)), None, None)),
                opts: opts.clone(),
            })
        })
        .collect();
    let mut results = ctx.run_specs(specs).into_iter();
    for combo in COMBOS {
        for &(l, u) in ranges {
            let m = results.next().expect("one result per cell");
            table.push_row(vec![
                combo.label().to_string(),
                format!("[{}, {}]", fmt_bound(l), fmt_bound(u)),
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                m.p.to_string(),
                fmt_improvement(m.improvement),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_figures_with_all_combos() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].rows.len(), 4 * 3); // 4 combos x 3 ranges
        assert_eq!(tables[2].rows.len(), 4 * 4);
        // All runtimes parse and are non-negative.
        for t in &tables {
            for row in &t.rows {
                let total: f64 = row[4].parse().unwrap();
                assert!(total >= 0.0);
            }
        }
    }
}
