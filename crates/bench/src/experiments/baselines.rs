//! Cross-family comparison (paper §II): FaCT vs the two existing
//! regionalization families — contiguity-constrained heuristics (MP-regions)
//! and two-phase clustering methods.
//!
//! The paper argues that "none of the existing methods can obtain a feasible
//! solution that satisfies our enriched constraints"; this experiment makes
//! that concrete by measuring, for each method, how many of its regions
//! happen to satisfy the default enriched query (Table II).

use super::ExpContext;
use crate::presets::Combo;
use crate::runner::{run_fact, TracedJob};
use crate::table::{fmt_f, Table};
use emp_baseline::{solve_clustering_spatial, solve_mp, ClusteringConfig, MpConfig};
use emp_core::engine::ConstraintEngine;
use emp_core::solution::Solution;
use emp_core::solver::FactConfig;

/// Runs the comparison.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let query = Combo::Mas.build(None, None, None);
    let engine = ConstraintEngine::compile(&instance, &query).expect("compiles");

    let mut table = Table::new(
        format!(
            "Baseline comparison — enriched-constraint satisfaction ({} dataset, Table II query)",
            dataset.name
        ),
        &[
            "method",
            "p",
            "unassigned",
            "feasible_regions_%",
            "heterogeneity",
        ],
    );

    // FaCT: feasible by construction.
    let fact = run_fact(&instance, &query, &ctx.opts(true, instance.len()));
    // Re-solve to obtain the actual solution for the feasibility audit.
    let fact_solution = emp_core::solve(
        &instance,
        &query,
        &FactConfig {
            construction_iterations: if ctx.fast { 1 } else { 3 },
            max_no_improve: ctx.opts(true, instance.len()).max_no_improve,
            seed: ctx.seed,
            ..FactConfig::default()
        },
    )
    .expect("feasible")
    .solution;
    push_row(&mut table, "FaCT (EMP)", &engine, &fact_solution);
    let _ = fact;

    // The three baselines are independent once FaCT has fixed `k`, so they
    // run as one pool batch. Clustering inputs are shared by reference.
    let (xs, ys): (Vec<f64>, Vec<f64>) = dataset
        .areas
        .iter()
        .map(|a| {
            let c = a.centroid();
            (c.x, c.y)
        })
        .unzip();
    let k = fact_solution.p().max(1);
    let (instance_ref, xs_ref, ys_ref) = (&instance, &xs, &ys);
    let cells: Vec<TracedJob<'_, Solution>> = vec![
        // MP-regions: only the SUM threshold is expressible.
        Box::new(move |_| {
            solve_mp(
                instance_ref,
                "TOTALPOP",
                20_000.0,
                &MpConfig {
                    construction_iterations: if ctx.fast { 1 } else { 3 },
                    max_no_improve: ctx.opts(true, instance_ref.len()).max_no_improve,
                    seed: ctx.seed,
                    ..MpConfig::default()
                },
            )
            .expect("feasible")
            .solution
        }),
        // Clustering: k set to FaCT's p (the fairest possible scale guess,
        // and exactly the input burden the paper criticizes).
        Box::new(move |_| {
            solve_clustering_spatial(
                instance_ref,
                xs_ref,
                ys_ref,
                &ClusteringConfig {
                    k,
                    seed: ctx.seed,
                    ..ClusteringConfig::default()
                },
            )
            .solution
        }),
        // SKATER-style tree partition, same k.
        Box::new(move |_| {
            emp_baseline::solve_skater(
                instance_ref,
                &emp_baseline::SkaterConfig {
                    k,
                    min_region_size: 1,
                },
            )
            .solution
        }),
    ];
    let solutions = ctx.run_cells(cells);
    for (method, solution) in [
        "MP-regions (SUM only)",
        "k-means + contiguity split",
        "SKATER tree partition",
    ]
    .iter()
    .zip(&solutions)
    {
        push_row(&mut table, method, &engine, solution);
    }

    vec![table]
}

fn push_row(table: &mut Table, method: &str, engine: &ConstraintEngine<'_>, solution: &Solution) {
    let feasible = solution
        .regions
        .iter()
        .filter(|members| engine.satisfies_all(&engine.compute_fresh(members)))
        .count();
    let pct = if solution.p() > 0 {
        feasible as f64 / solution.p() as f64 * 100.0
    } else {
        0.0
    };
    table.push_row(vec![
        method.to_string(),
        solution.p().to_string(),
        solution.unassigned.len().to_string(),
        fmt_f((pct * 10.0).round() / 10.0),
        fmt_f(solution.heterogeneity.round()),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_dominates_constraint_satisfaction() {
        let ctx = ExpContext::fast();
        let t = run(&ctx).remove(0);
        assert_eq!(t.rows.len(), 4);
        let pct = |i: usize| t.rows[i][3].parse::<f64>().unwrap();
        // FaCT satisfies the enriched query in 100% of regions.
        assert_eq!(pct(0), 100.0);
        // The clustering baseline satisfies it rarely.
        assert!(pct(2) < pct(0), "clustering {} vs FaCT {}", pct(2), pct(0));
        // MP satisfies the SUM part but generally not MIN+AVG simultaneously.
        assert!(pct(1) <= 100.0);
    }
}
