//! Ablations for the design choices called out in DESIGN.md §4:
//! the AVG merge limit, construction iterations, extrema-guided seeding,
//! tabu tenure, and the incremental tabu neighborhood — plus a telemetry
//! summary table built from the emp-obs span/counter stream (DESIGN.md §6).

use super::ExpContext;
use crate::presets::{avg_range, Combo};
use crate::runner::{run_fact, RunOptions, TracedJob};
use crate::table::{fmt_f, fmt_improvement, fmt_secs, Table};
use emp_core::engine::ConstraintEngine;
use emp_core::feasibility::feasibility_phase;
use emp_core::grow::region_growing;
use emp_core::partition::Partition;
use emp_obs::{CounterKind, InMemorySink, SharedSink};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Runs all ablations.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    vec![
        merge_limit(ctx),
        construction_iterations(ctx),
        seeding(ctx),
        tabu_tenure(ctx),
        tabu_neighborhood(ctx),
        telemetry(ctx),
    ]
}

/// Ablation 1: the Substep 2.2 merge limit on the hard AVG range (3k±1k).
fn merge_limit(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let mut table = Table::new(
        "Ablation — AVG merge limit (range 3k±1k, paper default 3)",
        &["merge_limit", "p", "unassigned", "construction_s"],
    );
    let set = Combo::A.build(None, Some(avg_range(2000.0, 4000.0)), None);
    let (instance_ref, set_ref) = (&instance, &set);
    let cells: Vec<TracedJob<'_, Vec<String>>> = [0usize, 1, 3, 5, 10]
        .iter()
        .map(|&limit| {
            Box::new(move |_| {
                let config = emp_core::FactConfig {
                    merge_limit: limit,
                    local_search: false,
                    construction_iterations: if ctx.fast { 1 } else { 3 },
                    seed: ctx.seed,
                    ..Default::default()
                };
                let report = emp_core::solve(instance_ref, set_ref, &config).expect("feasible");
                vec![
                    limit.to_string(),
                    report.p().to_string(),
                    report.solution.unassigned.len().to_string(),
                    fmt_secs(report.timings.construction),
                ]
            }) as TracedJob<'_, Vec<String>>
        })
        .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    table
}

/// Ablation 2: construction iterations (best-of-k random orders).
fn construction_iterations(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let mut table = Table::new(
        "Ablation — construction iterations (keep best p)",
        &["iterations", "p", "unassigned", "construction_s"],
    );
    let set = Combo::Mas.build(None, None, None);
    let (instance_ref, set_ref) = (&instance, &set);
    let cells: Vec<TracedJob<'_, Vec<String>>> = [1usize, 2, 4, 8]
        .iter()
        .map(|&iters| {
            Box::new(move |sink| {
                let opts = RunOptions {
                    construction_iterations: iters,
                    local_search: false,
                    max_no_improve: Some(0),
                    max_tabu_iterations: None,
                    trace: sink,
                    ..ctx.opts(false, instance_ref.len())
                };
                let m = run_fact(instance_ref, set_ref, &opts);
                vec![
                    iters.to_string(),
                    m.p.to_string(),
                    m.unassigned.to_string(),
                    fmt_secs(m.construction_s),
                ]
            }) as TracedJob<'_, Vec<String>>
        })
        .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    table
}

/// Ablation 3: extrema-guided seeding (paper Step 1) vs random seeds of the
/// same cardinality — shows why MIN/MAX witnesses must seed the regions.
fn seeding(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Ma.build(None, None, None);
    let engine = ConstraintEngine::compile(&instance, &set).expect("compiles");
    let report = feasibility_phase(&engine);
    let mut eligible = vec![true; instance.len()];
    for &a in &report.invalid_areas {
        eligible[a as usize] = false;
    }

    let mut table = Table::new(
        "Ablation — extrema-guided seeding vs random seeds (MA combo)",
        &["seeding", "p", "satisfied_regions", "unassigned"],
    );
    // Both modes seed an independent RNG from the same base seed, so they
    // are order-independent and run as two concurrent cells.
    let (engine_ref, report_ref, eligible_ref) = (&engine, &report, &eligible);
    let n = instance.len();
    let cells: Vec<TracedJob<'_, Vec<String>>> = ["extrema (paper)", "random"]
        .iter()
        .map(|&mode| {
            Box::new(move |_| {
                let mut rng = StdRng::seed_from_u64(ctx.seed);
                let seeds: Vec<u32> = if mode == "random" {
                    let mut valid: Vec<u32> = (0..n as u32)
                        .filter(|&a| eligible_ref[a as usize])
                        .collect();
                    valid.shuffle(&mut rng);
                    valid.truncate(report_ref.seeds.len());
                    valid
                } else {
                    report_ref.seeds.clone()
                };
                let mut partition = Partition::new(n);
                region_growing(
                    engine_ref,
                    &mut partition,
                    &seeds,
                    eligible_ref,
                    3,
                    &mut rng,
                );
                let satisfied = partition
                    .region_ids()
                    .filter(|&id| engine_ref.satisfies_all(&partition.region(id).agg))
                    .count();
                vec![
                    mode.to_string(),
                    partition.p().to_string(),
                    satisfied.to_string(),
                    partition.unassigned().len().to_string(),
                ]
            }) as TracedJob<'_, Vec<String>>
        })
        .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    table
}

/// Ablation 4: tabu tenure (paper default 10).
fn tabu_tenure(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);
    let mut table = Table::new(
        "Ablation — tabu tenure (paper default 10)",
        &["tenure", "improvement_%", "tabu_s"],
    );
    let (instance_ref, set_ref) = (&instance, &set);
    let cells: Vec<TracedJob<'_, Vec<String>>> = [1usize, 5, 10, 20, 50]
        .iter()
        .map(|&tenure| {
            Box::new(move |_| {
                let config = emp_core::FactConfig {
                    tabu_tenure: tenure,
                    construction_iterations: if ctx.fast { 1 } else { 3 },
                    max_no_improve: Some(if ctx.fast { 200 } else { 1000 }),
                    seed: ctx.seed,
                    ..Default::default()
                };
                let report = emp_core::solve(instance_ref, set_ref, &config).expect("feasible");
                vec![
                    tenure.to_string(),
                    fmt_improvement(report.improvement()),
                    fmt_secs(report.timings.local_search),
                ]
            }) as TracedJob<'_, Vec<String>>
        })
        .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    table
}

/// Ablation 5: incremental tabu neighborhood (boundary-area set + cached
/// articulation points, DESIGN.md §4.2) vs the full-scan + BFS-per-candidate
/// reference path. Both trace identical move sequences — only the wall time
/// may differ.
fn tabu_neighborhood(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);
    let mut table = Table::new(
        "Ablation — tabu neighborhood (incremental vs full-scan/BFS)",
        &["neighborhood", "moves", "improvement_%", "tabu_s"],
    );
    // Each variant solves from the same seed with its own config, so the
    // traced move sequences stay identical whichever cell finishes first.
    let (instance_ref, set_ref) = (&instance, &set);
    let cells: Vec<TracedJob<'_, Vec<String>>> =
        [("incremental", true), ("full-scan + BFS", false)]
            .iter()
            .map(|&(name, incremental)| {
                Box::new(move |_| {
                    let config = emp_core::FactConfig {
                        incremental_tabu: incremental,
                        construction_iterations: 1,
                        max_no_improve: Some(if ctx.fast { 200 } else { 1000 }),
                        seed: ctx.seed,
                        ..Default::default()
                    };
                    let report = emp_core::solve(instance_ref, set_ref, &config).expect("feasible");
                    vec![
                        name.to_string(),
                        report.tabu.moves.to_string(),
                        fmt_improvement(report.improvement()),
                        fmt_secs(report.timings.local_search),
                    ]
                }) as TracedJob<'_, Vec<String>>
            })
            .collect();
    for row in ctx.run_cells(cells) {
        table.push_row(row);
    }
    table
}

/// Telemetry summary: one traced MAS solve, reported as per-phase wall time
/// (from depth-1 spans of the event stream) plus counter totals and the
/// derived rates ([`Measurement::moves_per_sec`](crate::runner::Measurement)
/// and the articulation-cache hit rate).
fn telemetry(ctx: &ExpContext) -> Table {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);
    let sink = InMemorySink::new();
    let handle = sink.handle();
    let opts = RunOptions {
        trace: Some(SharedSink::new(Box::new(sink))),
        ..ctx.opts(true, instance.len())
    };
    let m = run_fact(&instance, &set, &opts);
    let trace = handle.lock().expect("trace handle");

    let mut table = Table::new(
        "Telemetry — per-phase wall time and counter totals (MAS combo)",
        &["metric", "value"],
    );
    for (name, label) in [
        ("feasibility", "feasibility_s"),
        ("construct_iter", "construction_s"),
        ("grow", "grow_s"),
        ("adjust", "adjust_s"),
        ("tabu", "tabu_s"),
    ] {
        table.push_row(vec![label.to_string(), fmt_secs(trace.wall_of(name))]);
    }
    let count = |k: CounterKind| m.counters.get(k).to_string();
    table.push_row(vec![
        "moves_evaluated".into(),
        count(CounterKind::TabuMovesEvaluated),
    ]);
    table.push_row(vec![
        "moves_applied".into(),
        count(CounterKind::TabuMovesApplied),
    ]);
    table.push_row(vec![
        "rejected_tabu".into(),
        count(CounterKind::TabuRejectedTabu),
    ]);
    table.push_row(vec![
        "rejected_infeasible".into(),
        count(CounterKind::TabuRejectedInfeasible),
    ]);
    table.push_row(vec![
        "regions_created".into(),
        count(CounterKind::RegionsCreated),
    ]);
    table.push_row(vec![
        "regions_merged".into(),
        count(CounterKind::RegionsMerged),
    ]);
    table.push_row(vec![
        "bfs_fallbacks".into(),
        count(CounterKind::BfsFallbacks),
    ]);
    table.push_row(vec![
        "constraint_checks".into(),
        [
            CounterKind::ChecksMin,
            CounterKind::ChecksMax,
            CounterKind::ChecksAvg,
            CounterKind::ChecksSum,
            CounterKind::ChecksCount,
        ]
        .iter()
        .map(|&k| m.counters.get(k))
        .sum::<u64>()
        .to_string(),
    ]);
    table.push_row(vec![
        "moves_per_sec".into(),
        match m.moves_per_sec() {
            Some(r) => fmt_f(r.round()),
            None => "n/a".into(),
        },
    ]);
    table.push_row(vec![
        "cache_hit_rate_%".into(),
        match m.cache_hit_rate() {
            Some(r) => fmt_f((r * 1000.0).round() / 10.0),
            None => "n/a".into(),
        },
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_produce_tables() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 6);
        // Merge limit: higher limits never reduce assignment coverage by
        // much — the 0-limit row should have the most unassigned areas.
        let ua = |t: &Table, i: usize| t.rows[i][2].parse::<i64>().unwrap();
        let t0 = &tables[0];
        assert!(
            ua(t0, 0) >= ua(t0, 4),
            "limit 0 {} vs 10 {}",
            ua(t0, 0),
            ua(t0, 4)
        );
        // Iterations: p never decreases with more iterations.
        let t1 = &tables[1];
        let p = |i: usize| t1.rows[i][1].parse::<i64>().unwrap();
        assert!(p(3) >= p(0));
        // Seeding: the paper's seeding satisfies at least as many regions.
        let t2 = &tables[2];
        let sat_paper: i64 = t2.rows[0][2].parse().unwrap();
        let sat_random: i64 = t2.rows[1][2].parse().unwrap();
        assert!(sat_paper >= sat_random);
        // Tenure table parses.
        assert_eq!(tables[3].rows.len(), 5);
        // Neighborhood ablation: the incremental and full-scan paths must
        // apply the same number of moves and reach the same improvement.
        let t4 = &tables[4];
        assert_eq!(t4.rows.len(), 2);
        assert_eq!(t4.rows[0][1], t4.rows[1][1], "move counts diverged");
        assert_eq!(t4.rows[0][2], t4.rows[1][2], "improvements diverged");
        // Telemetry: phase walls parse and the move counters are consistent
        // (applied <= evaluated; construction happened at all).
        let t5 = &tables[5];
        let cell = |label: &str| -> f64 {
            t5.rows
                .iter()
                .find(|r| r[0] == label)
                .unwrap_or_else(|| panic!("missing telemetry row '{label}'"))[1]
                .parse()
                .unwrap_or_else(|_| panic!("unparseable telemetry row '{label}'"))
        };
        assert!(cell("construction_s") >= cell("grow_s"));
        assert!(cell("moves_applied") <= cell("moves_evaluated"));
        assert!(cell("regions_created") > 0.0);
        assert!(cell("constraint_checks") > 0.0);
    }
}
