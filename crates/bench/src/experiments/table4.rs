//! Table IV: `p` values for SUM-constraint combinations (MP baseline, S, MS,
//! AS, MAS) across threshold ranges.
//!
//! The MP baseline only supports `[l, inf)` ranges (its formulation has no
//! upper bounds); bounded-range cells are `N/A`, as in the paper.

use super::ExpContext;
use crate::presets::{sum_range, table4_ranges, Combo};
use crate::runner::{JobKind, JobSpec};
use crate::table::{fmt_bound, Table};

/// FaCT combos of Table IV, in paper row order (after the MP row).
pub const COMBOS: [Combo; 4] = [Combo::S, Combo::Ms, Combo::As, Combo::Mas];

/// Runs the sweep.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("preset instance");
    let mut opts = ctx.opts(false, instance.len());
    opts.local_search = false;

    let ranges = table4_ranges();
    let mut headers: Vec<&str> = vec!["combo"];
    let labels: Vec<String> = ranges
        .iter()
        .map(|&(l, u)| format!("[{}, {}]", fmt_bound(l), fmt_bound(u)))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(
        format!(
            "Table IV — p values for SUM constraint combinations ({} dataset)",
            dataset.name
        ),
        &headers,
    );

    // Cells in row-major paper order: the MP row (bounded-range cells are
    // N/A and get no job), then one FaCT cell per (combo, range).
    let mut specs: Vec<JobSpec<'_>> = Vec::new();
    for &(l, u) in &ranges {
        if !u.is_finite() {
            specs.push(JobSpec {
                instance: &instance,
                kind: JobKind::Mp(l),
                opts: opts.clone(),
            });
        }
    }
    for combo in COMBOS {
        for &(l, u) in &ranges {
            specs.push(JobSpec {
                instance: &instance,
                kind: JobKind::Fact(combo.build(None, None, Some(sum_range(l, u)))),
                opts: opts.clone(),
            });
        }
    }
    let mut results = ctx.run_specs(specs).into_iter();

    // MP baseline row.
    let mut row = vec!["MP".to_string()];
    for &(_, u) in &ranges {
        if u.is_finite() {
            row.push("N/A".to_string());
        } else {
            let m = results.next().expect("one result per MP cell");
            row.push(m.p.to_string());
        }
    }
    table.push_row(row);

    for combo in COMBOS {
        let mut row = vec![combo.label().to_string()];
        for _ in &ranges {
            let m = results.next().expect("one result per FaCT cell");
            row.push(m.p.to_string());
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trends_match_paper() {
        let ctx = ExpContext::fast();
        let t = run(&ctx).remove(0);
        assert_eq!(t.rows.len(), 5);
        let cell = |row: usize, col: usize| -> Option<i64> { t.rows[row][col + 1].parse().ok() };
        // MP has N/A on bounded ranges.
        assert_eq!(t.rows[0][6], "N/A");
        // p decreases with l on the open-ended columns for every method.
        for row in 0..5 {
            let mut prev = i64::MAX;
            for col in 0..5 {
                if let Some(v) = cell(row, col) {
                    assert!(v <= prev, "row {row} col {col}: {v} > {prev}");
                    prev = v;
                }
            }
        }
        // FaCT's S is comparable to MP (within 25% or a small absolute gap)
        // on the shared threshold columns — the paper reports near-identical
        // values.
        for col in 1..5 {
            let mp = cell(0, col).unwrap() as f64;
            let s = cell(1, col).unwrap() as f64;
            let close = (mp - s).abs() <= (0.25 * mp.max(s)).max(8.0);
            assert!(close, "col {col}: MP {mp} vs S {s}");
        }
        // Adding constraints never increases p: S >= MAS per column.
        for col in 0..8 {
            if let (Some(s), Some(mas)) = (cell(1, col), cell(4, col)) {
                assert!(s >= mas, "col {col}");
            }
        }
    }
}
