//! Figures 8–11: the AVG constraint study.
//!
//! * Figure 8 — distribution of the AVG attribute (`EMPLOYED`).
//! * Figure 9 — fixed range length 2k, midpoint swept 1k → 4.5k: `p`,
//!   unassigned areas, and runtime.
//! * Figure 10 — fixed midpoint 3k, length swept: `p` and unassigned %.
//! * Figure 11 — runtimes for the length sweep across combos (A/MA/AS/MAS).

use super::ExpContext;
use crate::presets::{avg_range, Combo};
use crate::runner::{JobKind, JobSpec};
use crate::table::{fmt_f, fmt_improvement, fmt_secs, Table};
use emp_data::attributes::ecdf;

/// Runs the AVG study.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("preset instance");
    let n = instance.len();
    let mut tables = Vec::new();

    // Figure 8: histogram of EMPLOYED.
    let employed = dataset
        .attributes
        .column_by_name("EMPLOYED")
        .expect("EMPLOYED column");
    let mut fig8 = Table::new(
        "Figure 8 — distribution of the AVG attribute (EMPLOYED)",
        &["bin", "count", "cumulative_%"],
    );
    let max = employed.iter().copied().fold(0.0f64, f64::max);
    let bin_width = 500.0;
    let bins = ((max / bin_width).ceil() as usize).max(1);
    for b in 0..bins {
        let lo = b as f64 * bin_width;
        let hi = lo + bin_width;
        let count = employed.iter().filter(|&&v| v >= lo && v < hi).count();
        fig8.push_row(vec![
            format!("[{}, {})", fmt_f(lo), fmt_f(hi)),
            count.to_string(),
            fmt_f((ecdf(employed, hi) * 1000.0).round() / 10.0),
        ]);
    }
    tables.push(fig8);

    // Figure 9: fixed length 2k, midpoint 1k..4.5k step 0.5k; AVG only.
    let mut fig9 = Table::new(
        "Figure 9 — AVG with fixed range length 2k, varying midpoint",
        &[
            "midpoint",
            "p",
            "unassigned",
            "construction_s",
            "tabu_s",
            "improvement_%",
        ],
    );
    let opts = ctx.opts(true, n);
    let mids: Vec<f64> = (0..8).map(|i| 1000.0 + 500.0 * i as f64).collect();

    // Figures 10 & 11: fixed midpoint 3k, length +-0.5k..+-2k, all combos.
    let lengths = [500.0, 1000.0, 1500.0, 2000.0];
    let combos = [Combo::A, Combo::Ma, Combo::As, Combo::Mas];

    // All solver cells of Figures 9–11 go through the pool in one batch:
    // the midpoint sweep first, then the (combo, length) grid row-major.
    let mut specs: Vec<JobSpec<'_>> = mids
        .iter()
        .map(|&mid| JobSpec {
            instance: &instance,
            kind: JobKind::Fact(Combo::A.build(
                None,
                Some(avg_range(mid - 1000.0, mid + 1000.0)),
                None,
            )),
            opts: opts.clone(),
        })
        .collect();
    for combo in combos {
        for &len in &lengths {
            specs.push(JobSpec {
                instance: &instance,
                kind: JobKind::Fact(combo.build(
                    None,
                    Some(avg_range(3000.0 - len, 3000.0 + len)),
                    None,
                )),
                opts: opts.clone(),
            });
        }
    }
    let mut results = ctx.run_specs(specs).into_iter();

    for &mid in &mids {
        let m = results.next().expect("one result per midpoint");
        fig9.push_row(vec![
            fmt_f(mid),
            m.p.to_string(),
            m.unassigned.to_string(),
            fmt_secs(m.construction_s),
            fmt_secs(m.tabu_s),
            fmt_improvement(m.improvement),
        ]);
    }
    tables.push(fig9);
    let mut fig10 = Table::new(
        "Figure 10 — AVG with fixed midpoint 3k, varying range length: p and unassigned",
        &["combo", "range", "p", "unassigned", "unassigned_%"],
    );
    let mut fig11 = Table::new(
        "Figure 11 — runtime for AVG with fixed midpoint 3k, varying range length",
        &[
            "combo",
            "range",
            "construction_s",
            "tabu_s",
            "total_s",
            "improvement_%",
        ],
    );
    for combo in combos {
        for &len in &lengths {
            let m = results.next().expect("one result per grid cell");
            let range = format!("3k+-{}", fmt_f(len));
            fig10.push_row(vec![
                combo.label().to_string(),
                range.clone(),
                m.p.to_string(),
                m.unassigned.to_string(),
                fmt_f((m.unassigned as f64 / n as f64 * 1000.0).round() / 10.0),
            ]);
            fig11.push_row(vec![
                combo.label().to_string(),
                range,
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                fmt_improvement(m.improvement),
            ]);
        }
    }
    tables.push(fig10);
    tables.push(fig11);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_study_shapes() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 4);
        // Figure 8: histogram counts sum to the dataset size.
        let total: usize = tables[0]
            .rows
            .iter()
            .map(|r| r[1].parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 400); // fast dataset size
                                // Figure 9: 8 midpoints.
        assert_eq!(tables[1].rows.len(), 8);
        // Paper shape: easy midpoints (2k, 2.5k) assign (nearly) everything;
        // extreme midpoints (>= 4k) leave most areas unassigned.
        let ua = |i: usize| tables[1].rows[i][2].parse::<usize>().unwrap();
        let easy = ua(2).min(ua(3)); // midpoints 2k, 2.5k
        let hard = ua(6).max(ua(7)); // midpoints 4k, 4.5k
        assert!(easy < hard, "easy {easy} vs hard {hard}");
        assert!(hard > 200, "most areas unassigned at extreme midpoints");
        // Figures 10/11: 4 combos x 4 lengths.
        assert_eq!(tables[2].rows.len(), 16);
        assert_eq!(tables[3].rows.len(), 16);
        // Figure 10 shape: longer ranges reduce unassigned areas for A.
        let ua10 = |i: usize| tables[2].rows[i][3].parse::<usize>().unwrap();
        assert!(ua10(0) >= ua10(3), "+-0.5k {} vs +-2k {}", ua10(0), ua10(3));
    }
}
