//! Figures 14, 15, 16: FaCT scalability across dataset sizes.
//!
//! * Figure 14 — 1k…8k with default constraints, combos M/MS/MA/MAS.
//! * Figure 15 — multi-state 10k…50k, same setup.
//! * Figure 16 — the AVG bottleneck: range 3k±1k across dataset sizes.

use super::ExpContext;
use crate::presets::{avg_range, Combo};
use crate::runner::run_fact;
use crate::table::{fmt_f, fmt_secs, Table};
use emp_data::Dataset;

const COMBOS: [Combo; 4] = [Combo::M, Combo::Ms, Combo::Ma, Combo::Mas];
const AVG_COMBOS: [Combo; 3] = [Combo::Ma, Combo::As, Combo::Mas];

/// Runs the scalability study.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let mut tables = Vec::new();

    let small: Vec<&'static Dataset> = ctx
        .small_scale_names()
        .into_iter()
        .map(|(name, areas)| ctx.sized(name, areas))
        .collect();
    tables.push(sweep(
        ctx,
        "Figure 14 — runtime varying datasets (small scale), default constraints",
        &small,
        &COMBOS,
        None,
    ));

    let large: Vec<&'static Dataset> = ctx
        .large_scale_names()
        .into_iter()
        .map(|(name, areas)| ctx.sized(name, areas))
        .collect();
    tables.push(sweep(
        ctx,
        "Figure 15 — runtime varying datasets (multi-state scale), default constraints",
        &large,
        &COMBOS,
        None,
    ));

    // Figure 16: the AVG 3k±1k bottleneck on the small ladder.
    tables.push(sweep(
        ctx,
        "Figure 16 — runtime varying datasets for AVG constraint with range 3k±1k",
        &small,
        &AVG_COMBOS,
        Some(avg_range(2000.0, 4000.0)),
    ));
    tables
}

fn sweep(
    ctx: &ExpContext,
    title: &str,
    datasets: &[&'static Dataset],
    combos: &[Combo],
    avg_override: Option<emp_core::Constraint>,
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "dataset",
            "areas",
            "combo",
            "construction_s",
            "tabu_s",
            "total_s",
            "p",
            "unassigned_%",
        ],
    );
    for d in datasets {
        let instance = d.to_instance().expect("dataset instance");
        let opts = ctx.opts(true, instance.len());
        for &combo in combos {
            let set = combo.build(None, avg_override.clone(), None);
            let m = run_fact(&instance, &set, &opts);
            table.push_row(vec![
                d.name.clone(),
                d.len().to_string(),
                combo.label().to_string(),
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                m.p.to_string(),
                fmt_f((m.unassigned as f64 / d.len() as f64 * 1000.0).round() / 10.0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_shapes() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 3);
        // Fast ladder: 3 sizes x 4 combos.
        assert_eq!(tables[0].rows.len(), 12);
        // Construction time grows with dataset size for the M combo
        // (allowing timer noise at tiny sizes via a generous factor).
        let m_rows: Vec<&Vec<String>> = tables[0].rows.iter().filter(|r| r[2] == "M").collect();
        let first: f64 = m_rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = m_rows.last().unwrap()[3].parse().unwrap();
        assert!(last >= first * 0.5, "construction should not shrink wildly");
        // Figure 16 uses the AVG combos only.
        assert_eq!(tables[2].rows.len(), 3 * 3);
    }
}
