//! Figures 14, 15, 16: FaCT scalability across dataset sizes.
//!
//! * Figure 14 — 1k…8k with default constraints, combos M/MS/MA/MAS.
//! * Figure 15 — multi-state 10k…50k, same setup.
//! * Figure 16 — the AVG bottleneck: range 3k±1k across dataset sizes.

use super::ExpContext;
use crate::presets::{avg_range, Combo};
use crate::runner::{JobKind, JobSpec, TracedJob};
use crate::table::{fmt_f, fmt_secs, Table};
use emp_core::instance::EmpInstance;
use emp_data::Dataset;

const COMBOS: [Combo; 4] = [Combo::M, Combo::Ms, Combo::Ma, Combo::Mas];
const AVG_COMBOS: [Combo; 3] = [Combo::Ma, Combo::As, Combo::Mas];

/// Runs the scalability study.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let mut tables = Vec::new();

    // Synthesize the full ladder up front: distinct datasets build
    // concurrently through the once-init cache (tessellation + contiguity
    // dominate here, not the solver).
    let small_names = ctx.small_scale_names();
    let large_names = ctx.large_scale_names();
    let cells: Vec<TracedJob<'_, &'static Dataset>> = small_names
        .iter()
        .chain(&large_names)
        .map(|&(name, areas)| {
            Box::new(move |_| ctx.sized(name, areas)) as TracedJob<'_, &'static Dataset>
        })
        .collect();
    let built = ctx.run_cells(cells);
    let (small, large) = built.split_at(small_names.len());

    tables.push(sweep(
        ctx,
        "Figure 14 — runtime varying datasets (small scale), default constraints",
        small,
        &COMBOS,
        None,
    ));

    tables.push(sweep(
        ctx,
        "Figure 15 — runtime varying datasets (multi-state scale), default constraints",
        large,
        &COMBOS,
        None,
    ));

    // Figure 16: the AVG 3k±1k bottleneck on the small ladder.
    tables.push(sweep(
        ctx,
        "Figure 16 — runtime varying datasets for AVG constraint with range 3k±1k",
        small,
        &AVG_COMBOS,
        Some(avg_range(2000.0, 4000.0)),
    ));
    tables
}

fn sweep(
    ctx: &ExpContext,
    title: &str,
    datasets: &[&'static Dataset],
    combos: &[Combo],
    avg_override: Option<emp_core::Constraint>,
) -> Table {
    let mut table = Table::new(
        title,
        &[
            "dataset",
            "areas",
            "combo",
            "construction_s",
            "tabu_s",
            "total_s",
            "p",
            "unassigned_%",
        ],
    );
    let instances: Vec<EmpInstance> = datasets
        .iter()
        .map(|d| d.to_instance().expect("dataset instance"))
        .collect();
    let mut specs: Vec<JobSpec<'_>> = Vec::new();
    for instance in &instances {
        let opts = ctx.opts(true, instance.len());
        for &combo in combos {
            specs.push(JobSpec {
                instance,
                kind: JobKind::Fact(combo.build(None, avg_override.clone(), None)),
                opts: opts.clone(),
            });
        }
    }
    let mut results = ctx.run_specs(specs).into_iter();
    for d in datasets {
        for &combo in combos {
            let m = results.next().expect("one result per ladder cell");
            table.push_row(vec![
                d.name.clone(),
                d.len().to_string(),
                combo.label().to_string(),
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                m.p.to_string(),
                fmt_f((m.unassigned as f64 / d.len() as f64 * 1000.0).round() / 10.0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalability_shapes() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 3);
        // Fast ladder: 3 sizes x 4 combos.
        assert_eq!(tables[0].rows.len(), 12);
        // Construction time grows with dataset size for the M combo
        // (allowing timer noise at tiny sizes via a generous factor).
        let m_rows: Vec<&Vec<String>> = tables[0].rows.iter().filter(|r| r[2] == "M").collect();
        let first: f64 = m_rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = m_rows.last().unwrap()[3].parse().unwrap();
        assert!(last >= first * 0.5, "construction should not shrink wildly");
        // Figure 16 uses the AVG combos only.
        assert_eq!(tables[2].rows.len(), 3 * 3);
    }
}
