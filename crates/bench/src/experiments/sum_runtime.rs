//! Figures 12 and 13: runtimes for SUM-constraint combinations, including
//! the MP-regions baseline on the shared open-ended thresholds.

use super::ExpContext;
use crate::presets::{sum_range, Combo};
use crate::runner::{JobKind, JobSpec};
use crate::table::{fmt_bound, fmt_f, fmt_improvement, fmt_secs, Table};

const COMBOS: [Combo; 4] = [Combo::S, Combo::Ms, Combo::As, Combo::Mas];

/// Runs both figures.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("preset instance");
    let opts = ctx.opts(true, instance.len());

    // Figure 12: u = inf, l in {1k, 10k, 20k, 30k, 40k}; MP vs FaCT combos.
    let open_ranges = [1000.0, 10_000.0, 20_000.0, 30_000.0, 40_000.0];
    let mut fig12 = Table::new(
        "Figure 12 — runtime for SUM with u = inf (seconds)",
        &[
            "method",
            "l",
            "construction_s",
            "tabu_s",
            "total_s",
            "p",
            "improvement_%",
        ],
    );
    // Figure 13: bounded ranges around midpoint 20k with changing length.
    let bounded = [
        (15_000.0, 25_000.0),
        (10_000.0, 30_000.0),
        (5_000.0, 35_000.0),
    ];

    // Every solver cell of both figures in one pool batch, in table order:
    // the MP thresholds, the FaCT (combo, l) grid, then the bounded grid.
    let mut specs: Vec<JobSpec<'_>> = open_ranges
        .iter()
        .map(|&l| JobSpec {
            instance: &instance,
            kind: JobKind::Mp(l),
            opts: opts.clone(),
        })
        .collect();
    for combo in COMBOS {
        for &l in &open_ranges {
            specs.push(JobSpec {
                instance: &instance,
                kind: JobKind::Fact(combo.build(None, None, Some(sum_range(l, f64::INFINITY)))),
                opts: opts.clone(),
            });
        }
    }
    for combo in COMBOS {
        for &(l, u) in &bounded {
            specs.push(JobSpec {
                instance: &instance,
                kind: JobKind::Fact(combo.build(None, None, Some(sum_range(l, u)))),
                opts: opts.clone(),
            });
        }
    }
    let mut results = ctx.run_specs(specs).into_iter();

    for &l in &open_ranges {
        let m = results.next().expect("one result per MP threshold");
        fig12.push_row(vec![
            "MP".into(),
            fmt_bound(l),
            fmt_secs(m.construction_s),
            fmt_secs(m.tabu_s),
            fmt_secs(m.total_s()),
            m.p.to_string(),
            fmt_improvement(m.improvement),
        ]);
    }
    for combo in COMBOS {
        for &l in &open_ranges {
            let m = results.next().expect("one result per open-range cell");
            fig12.push_row(vec![
                combo.label().to_string(),
                fmt_bound(l),
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                m.p.to_string(),
                fmt_improvement(m.improvement),
            ]);
        }
    }
    let mut fig13 = Table::new(
        "Figure 13 — runtime for SUM with a changing range length (seconds)",
        &[
            "combo",
            "range",
            "construction_s",
            "tabu_s",
            "total_s",
            "p",
            "unassigned_%",
        ],
    );
    let n = instance.len() as f64;
    for combo in COMBOS {
        for &(l, u) in &bounded {
            let m = results.next().expect("one result per bounded cell");
            fig13.push_row(vec![
                combo.label().to_string(),
                format!("[{}, {}]", fmt_bound(l), fmt_bound(u)),
                fmt_secs(m.construction_s),
                fmt_secs(m.tabu_s),
                fmt_secs(m.total_s()),
                m.p.to_string(),
                fmt_f((m.unassigned as f64 / n * 1000.0).round() / 10.0),
            ]);
        }
    }
    vec![fig12, fig13]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_runtime_shapes() {
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        assert_eq!(tables.len(), 2);
        // Figure 12: 5 MP rows + 4 combos x 5 thresholds.
        assert_eq!(tables[0].rows.len(), 5 + 20);
        // p decreases with l within the MP rows.
        let p = |i: usize| tables[0].rows[i][5].parse::<i64>().unwrap();
        assert!(p(0) >= p(4), "MP p falls with l: {} vs {}", p(0), p(4));
        // Figure 13: 4 combos x 3 ranges.
        assert_eq!(tables[1].rows.len(), 12);
        // Bounded upper bounds can leave areas unassigned for combos (the
        // paper reports up to 25.1%); the cell must parse.
        for row in &tables[1].rows {
            let ua: f64 = row[6].parse().unwrap();
            assert!((0.0..=100.0).contains(&ua));
        }
    }
}
