//! One module per paper table/figure. Every experiment returns [`Table`]s
//! that the `repro` binary prints and writes under `results/`.
//!
//! The per-experiment index (paper artifact → module) lives in `DESIGN.md`
//! §3; `EXPERIMENTS.md` records paper-vs-measured values.

pub mod ablations;
pub mod avg;
pub mod baselines;
pub mod datasets;
pub mod exact_study;
pub mod min_runtime;
pub mod scalability;
pub mod sum_runtime;
pub mod table3;
pub mod table4;

use crate::runner::{self, DatasetCache, JobSpec, Measurement, RunOptions, TracedJob};
use crate::sched::JobPool;
use crate::table::Table;
use emp_data::Dataset;
use emp_obs::{LiveRegistry, RingSink, SharedSink};
use std::sync::Arc;

/// Shared context: dataset cache plus run-mode switches.
pub struct ExpContext {
    /// Dataset cache shared across experiments.
    pub cache: DatasetCache,
    /// Name of the default dataset (paper: `"2k"`).
    pub dataset: String,
    /// Fast mode: smaller datasets and capped tabu for quick runs (e.g. CI).
    pub fast: bool,
    /// Base solver seed.
    pub seed: u64,
    /// Event sink every run streams telemetry into (`repro --trace`).
    pub trace: Option<SharedSink>,
    /// Worker count for the cell pool (`repro --jobs`, `EMP_JOBS`; 1 =
    /// sequential reference). Output is identical for every value.
    pub jobs: usize,
    /// Per-cell wall-clock deadline (`repro --deadline-ms`). Stopped cells
    /// report their best valid incumbent; `None` runs unbudgeted.
    pub deadline_ms: Option<u64>,
    /// Checkpoint dump directory for deadline-interrupted FaCT cells
    /// (`repro --checkpoint DIR`).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Live-metrics registry the embedded `/metrics` + `/progress` endpoints
    /// read (`repro --metrics-addr`); `None` = no live telemetry.
    pub live: Option<Arc<LiveRegistry>>,
    /// Flight-recorder ring each cell's event stream is teed into.
    pub flight: Option<RingSink>,
}

impl ExpContext {
    /// A full-fidelity context with the paper's default dataset.
    pub fn new() -> Self {
        ExpContext {
            cache: DatasetCache::new(),
            dataset: "2k".to_string(),
            fast: false,
            seed: 20_22,
            trace: None,
            jobs: emp_geo::par::effective_jobs(),
            deadline_ms: None,
            checkpoint_dir: None,
            live: None,
            flight: None,
        }
    }

    /// A fast context for smoke runs and tests.
    pub fn fast() -> Self {
        ExpContext {
            fast: true,
            ..Self::new()
        }
    }

    /// The cell pool for this context.
    pub fn pool(&self) -> JobPool {
        JobPool::new(self.jobs)
    }

    /// Runs solver cells on the pool; results come back in submission
    /// order, per-cell telemetry is replayed into [`ExpContext::trace`] in
    /// the same order (see [`runner::run_specs`]).
    pub fn run_specs(&self, specs: Vec<JobSpec<'_>>) -> Vec<Measurement> {
        runner::run_specs(&self.pool(), &self.trace, specs)
    }

    /// Runs heterogeneous traced cells on the pool (for experiment steps
    /// that are not plain FaCT/MP solves — baseline algorithms, dataset
    /// builds). Each task receives its private sink in place of
    /// [`ExpContext::trace`].
    pub fn run_cells<'a, T: Send + 'a>(&self, tasks: Vec<TracedJob<'a, T>>) -> Vec<T> {
        runner::run_traced(&self.pool(), &self.trace, tasks)
    }

    /// The default dataset for single-dataset experiments. Fast mode uses a
    /// 400-area synthetic stand-in.
    pub fn default_dataset(&self) -> &'static Dataset {
        if self.fast {
            self.sized("fast-400", 400)
        } else {
            self.cache.get(&self.dataset)
        }
    }

    /// A sized dataset through the cache (leaked, see [`DatasetCache`]).
    pub fn sized(&self, name: &str, areas: usize) -> &'static Dataset {
        // Reuse the cache map keyed by name; build_sized is deterministic.
        self.cache.get_or_build(name, areas)
    }

    /// Run options. `local_search = false` for p-only tables. The tabu cap
    /// keeps the harness tractable: the paper's `max_no_improve = n` is used
    /// up to 4k areas, larger datasets cap at 2000 (fast mode: 200).
    pub fn opts(&self, local_search: bool, n: usize) -> RunOptions {
        let (max_no_improve, max_tabu_iterations) = if self.fast {
            (Some(200.min(n)), Some(1000))
        } else if n > 4096 {
            // Fixed tabu budget on multi-state datasets: the reported tabu
            // time then measures per-iteration cost growth (EXPERIMENTS.md).
            (Some(1000), Some(2500))
        } else {
            // Paper defaults, plus the paper's own empirical observation
            // that total iterations stay well below 2n.
            (None, Some(2 * n))
        };
        RunOptions {
            seed: self.seed,
            construction_iterations: if self.fast { 1 } else { 3 },
            local_search,
            max_no_improve,
            max_tabu_iterations,
            trace: self.trace.clone(),
            deadline_ms: self.deadline_ms,
            checkpoint_dir: self.checkpoint_dir.clone(),
            live: self.live.clone(),
            flight: self.flight.clone(),
        }
    }

    /// The dataset-size ladder for scalability experiments.
    pub fn small_scale_names(&self) -> Vec<(&'static str, usize)> {
        if self.fast {
            vec![("0.2k", 200), ("0.4k", 400), ("0.8k", 800)]
        } else {
            vec![("1k", 1012), ("2k", 2344), ("4k", 3947), ("8k", 8049)]
        }
    }

    /// The multi-state ladder (paper Figure 15).
    pub fn large_scale_names(&self) -> Vec<(&'static str, usize)> {
        if self.fast {
            vec![("1k", 1012), ("2k", 2344)]
        } else {
            vec![
                ("10k", 10255),
                ("20k", 20570),
                ("30k", 29887),
                ("40k", 40214),
                ("50k", 49943),
            ]
        }
    }
}

impl Default for ExpContext {
    fn default() -> Self {
        Self::new()
    }
}

/// An experiment: a name (CLI subcommand), the paper artifacts it covers,
/// and its runner.
pub struct Experiment {
    /// CLI name, e.g. `"table3"`.
    pub name: &'static str,
    /// Paper artifacts covered, e.g. `"Table III"`.
    pub covers: &'static str,
    /// Runner producing result tables.
    pub run: fn(&ExpContext) -> Vec<Table>,
}

/// The experiment registry, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            name: "datasets",
            covers: "Table I + Table II",
            run: datasets::run,
        },
        Experiment {
            name: "table3",
            covers: "Table III",
            run: table3::run,
        },
        Experiment {
            name: "table4",
            covers: "Table IV",
            run: table4::run,
        },
        Experiment {
            name: "min-runtime",
            covers: "Figures 5, 6, 7a, 7b",
            run: min_runtime::run,
        },
        Experiment {
            name: "avg",
            covers: "Figures 8, 9a, 9b, 10a, 10b, 11",
            run: avg::run,
        },
        Experiment {
            name: "sum-runtime",
            covers: "Figures 12, 13",
            run: sum_runtime::run,
        },
        Experiment {
            name: "scalability",
            covers: "Figures 14, 15, 16",
            run: scalability::run,
        },
        Experiment {
            name: "exact",
            covers: "the §I Gurobi MIP study",
            run: exact_study::run,
        },
        Experiment {
            name: "baselines",
            covers: "cross-family comparison (paper §II claim)",
            run: baselines::run,
        },
        Experiment {
            name: "ablations",
            covers: "design-choice ablations (DESIGN.md §4)",
            run: ablations::run,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique() {
        let reg = registry();
        let mut names: Vec<_> = reg.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
        assert_eq!(reg.len(), 10);
    }

    #[test]
    fn context_scales() {
        let full = ExpContext::new();
        assert_eq!(full.small_scale_names().len(), 4);
        assert_eq!(full.large_scale_names().len(), 5);
        let fast = ExpContext::fast();
        assert!(fast.fast);
        assert!(fast.small_scale_names().len() <= 3);
        assert_eq!(fast.opts(true, 1000).max_no_improve, Some(200));
        assert_eq!(full.opts(true, 1000).max_no_improve, None);
        assert_eq!(full.opts(true, 1000).max_tabu_iterations, Some(2000));
        assert_eq!(full.opts(true, 10_000).max_no_improve, Some(1000));
        assert_eq!(full.opts(true, 10_000).max_tabu_iterations, Some(2500));
    }
}
