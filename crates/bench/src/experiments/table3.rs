//! Table III: `p` values for MIN-constraint combinations (M / MS / MA / MAS)
//! across the 14 threshold ranges.
//!
//! The local-search phase never changes `p`, so these runs skip it.

use super::ExpContext;
use crate::presets::{min_range, table3_ranges, Combo};
use crate::runner::{JobKind, JobSpec};
use crate::table::{fmt_bound, Table};

/// The combos of Table III, in paper row order.
pub const COMBOS: [Combo; 4] = [Combo::M, Combo::Ms, Combo::Ma, Combo::Mas];

/// Runs the sweep.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let dataset = ctx.default_dataset();
    let instance = dataset.to_instance().expect("preset instance");
    let opts = {
        let mut o = ctx.opts(false, instance.len());
        o.local_search = false;
        o
    };

    let ranges = table3_ranges();
    let mut headers: Vec<&str> = vec!["combo"];
    let range_labels: Vec<String> = ranges
        .iter()
        .map(|&(l, u)| format!("[{}, {}]", fmt_bound(l), fmt_bound(u)))
        .collect();
    headers.extend(range_labels.iter().map(String::as_str));
    let mut table = Table::new(
        format!(
            "Table III — p values for MIN constraint combinations ({} dataset)",
            dataset.name
        ),
        &headers,
    );

    // One independent cell per (combo, range), in row-major paper order; the
    // pool reassembles results in that same order.
    let specs: Vec<JobSpec<'_>> = COMBOS
        .iter()
        .flat_map(|combo| {
            ranges.iter().map(|&(l, u)| JobSpec {
                instance: &instance,
                kind: JobKind::Fact(combo.build(Some(min_range(l, u)), None, None)),
                opts: opts.clone(),
            })
        })
        .collect();
    let mut results = ctx.run_specs(specs).into_iter();

    for combo in COMBOS {
        let mut row = vec![combo.label().to_string()];
        for _ in &ranges {
            let m = results.next().expect("one result per cell");
            row.push(m.p.to_string());
        }
        table.push_row(row);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_trends_match_paper() {
        // Paper trends on the l = -inf columns: p(M) grows with u, and
        // adding constraints can only reduce p (M >= MA >= MAS and
        // M >= MS >= MAS column-wise).
        let ctx = ExpContext::fast();
        let tables = run(&ctx);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 4);
        let p = |row: usize, col: usize| -> i64 { t.rows[row][col + 1].parse().unwrap() };
        // Columns 0..3 are u = 2k, 3.5k, 5k with l = -inf.
        assert!(
            p(0, 0) <= p(0, 1) && p(0, 1) <= p(0, 2),
            "p(M) grows with u"
        );
        for col in 0..14 {
            // p(M) equals the seed count, an upper bound for every combo.
            assert!(p(0, col) >= p(2, col), "M >= MA at col {col}");
            assert!(p(0, col) >= p(1, col), "M >= MS at col {col}");
            assert!(p(0, col) >= p(3, col), "M >= MAS at col {col}");
        }
        // u = inf columns (3..6): p decreases as l grows.
        assert!(
            p(0, 3) >= p(0, 4) && p(0, 4) >= p(0, 5),
            "p(M) falls with l"
        );
        // Bounded ranges with growing length (6..10): p grows.
        assert!(p(0, 6) <= p(0, 9), "longer range, more seeds");
    }
}
