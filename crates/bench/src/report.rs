//! Trace analytics: turns recorded JSONL traces into aggregated span
//! trees, counter rollups, folded-stack flamegraph exports, and
//! Prometheus-text snapshots — without re-running anything.
//!
//! The JSONL span stream is **close-ordered** (children before parents,
//! each line carrying its nesting depth); [`TraceReport::ingest`] rebuilds
//! the tree with a pending stack: when a span at depth `d` closes, the
//! trailing pending entries at depth `d+1` are exactly its children (in
//! reverse chronological order). A depth-0 close finalizes one root tree,
//! which is folded into per-**path** statistics (`solve;tabu;resync`),
//! each carrying a log-bucketed duration [`Histogram`] for p50/p90/p99.
//!
//! Counter rollups sum the depth-0 spans only — a root span's counter
//! delta already includes all of its children, so summing every span
//! would double-count.

use emp_obs::hist::Histogram;
use serde_json::Value;
use std::collections::BTreeMap;

use crate::table::Table;

/// Nanoseconds per second (span wall times arrive as seconds).
const NS_PER_S: f64 = 1e9;

/// One span close, parsed from a JSONL line.
struct ClosedSpan {
    name: String,
    depth: usize,
    wall_s: f64,
    children: Vec<ClosedSpan>,
}

/// Aggregated statistics for one span *path* (root→leaf name chain).
#[derive(Clone, Debug)]
pub struct SpanStat {
    /// Semicolon-joined name chain, e.g. `solve;tabu;resync`.
    pub path: String,
    /// Number of spans that closed on this path.
    pub count: u64,
    /// Total wall seconds (sum over all spans on the path).
    pub total_s: f64,
    /// Self wall seconds: total minus the time spent in child spans.
    pub self_s: f64,
    /// Log-bucketed distribution of per-span durations (nanoseconds).
    pub hist: Histogram,
}

/// A merged histogram record (from `{"type":"hist"}` lines), keyed by the
/// [`HistKind`](emp_obs::HistKind) name.
#[derive(Clone, Debug)]
pub struct HistSummary {
    /// Value unit (`ns`, `micro`, `areas`).
    pub unit: String,
    /// Merged distribution across every ingested record.
    pub hist: Histogram,
}

/// Everything extracted from one or more JSONL trace files.
#[derive(Default)]
pub struct TraceReport {
    /// Lines ingested (across all files).
    pub lines: usize,
    /// Total span closes seen.
    pub spans: u64,
    /// Root (depth-0) spans seen.
    pub roots: u64,
    /// Trajectory points seen.
    pub trajectory_points: u64,
    /// Note lines seen.
    pub notes: u64,
    /// `trace_end` markers seen.
    pub trace_ends: u64,
    /// Whether the last ingested line was NOT a `trace_end` marker — the
    /// producer flushes one terminal marker per recorder, so its absence
    /// at the tail means the trace was cut short.
    pub truncated: bool,
    /// Per-path span statistics, label-ordered.
    pub stats: BTreeMap<String, SpanStat>,
    /// Counter totals from depth-0 spans.
    pub counters: BTreeMap<String, u64>,
    /// Merged `hist` records by histogram name.
    pub hists: BTreeMap<String, HistSummary>,
    /// Spans left unparented at end of input (deep spans whose enclosing
    /// root never closed — another truncation symptom).
    pub orphans: u64,
    pending: Vec<ClosedSpan>,
}

impl TraceReport {
    /// An empty report; feed it with [`TraceReport::ingest`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one JSONL trace. Malformed lines abort with `Err` (a trace
    /// half-written by a crashed producer is diagnosable; silent skips are
    /// not). Call once per file; statistics accumulate.
    pub fn ingest(&mut self, content: &str) -> Result<(), String> {
        let mut last_was_end = self.trace_ends > 0 && !self.truncated && self.lines > 0;
        for (lineno, line) in content.lines().enumerate() {
            let v: Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: not JSON: {e}", lineno + 1))?;
            self.lines += 1;
            last_was_end = false;
            match v["type"].as_str() {
                Some("span") => self.ingest_span(&v, lineno)?,
                Some("trajectory") => self.trajectory_points += 1,
                Some("note") => self.notes += 1,
                Some("hist") => self.ingest_hists(&v, lineno)?,
                None if v["event"].as_str() == Some("trace_end") => {
                    self.trace_ends += 1;
                    last_was_end = true;
                }
                other => return Err(format!("line {}: unknown event type {other:?}", lineno + 1)),
            }
        }
        self.orphans = self.pending.len() as u64;
        self.truncated = !last_was_end;
        Ok(())
    }

    fn ingest_span(&mut self, v: &Value, lineno: usize) -> Result<(), String> {
        let name = v["name"]
            .as_str()
            .ok_or_else(|| format!("line {}: span without name", lineno + 1))?
            .to_string();
        let depth = v["depth"]
            .as_u64()
            .ok_or_else(|| format!("line {}: span without depth", lineno + 1))?
            as usize;
        let wall_s = v["wall_s"].as_f64().unwrap_or(0.0);
        self.spans += 1;

        // The trailing pending entries one level deeper closed before this
        // span and inside its window: they are its children.
        let mut children = Vec::new();
        while self.pending.last().is_some_and(|s| s.depth == depth + 1) {
            children.push(self.pending.pop().expect("peeked"));
        }
        children.reverse(); // back to chronological order
        let span = ClosedSpan {
            name,
            depth,
            wall_s,
            children,
        };
        if depth == 0 {
            self.roots += 1;
            // Root deltas already include every child's contribution, so
            // only depth-0 counters roll up (no double counting).
            if let Some(counters) = v["counters"].as_object() {
                for (key, c) in counters {
                    if let Some(x) = c.as_u64() {
                        *self.counters.entry(key.clone()).or_insert(0) += x;
                    }
                }
            }
            self.fold_tree(&span, "");
        } else {
            self.pending.push(span);
        }
        Ok(())
    }

    /// Accumulates one finalized root tree into the per-path statistics.
    fn fold_tree(&mut self, span: &ClosedSpan, prefix: &str) {
        let path = if prefix.is_empty() {
            span.name.clone()
        } else {
            format!("{prefix};{}", span.name)
        };
        let child_s: f64 = span.children.iter().map(|c| c.wall_s).sum();
        let stat = self.stats.entry(path.clone()).or_insert_with(|| SpanStat {
            path: path.clone(),
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
            hist: Histogram::new(),
        });
        stat.count += 1;
        stat.total_s += span.wall_s;
        stat.self_s += (span.wall_s - child_s).max(0.0);
        stat.hist.record((span.wall_s * NS_PER_S) as u64);
        for child in &span.children {
            self.fold_tree(child, &path);
        }
    }

    fn ingest_hists(&mut self, v: &Value, lineno: usize) -> Result<(), String> {
        let map = v["hists"]
            .as_object()
            .ok_or_else(|| format!("line {}: hist without hists map", lineno + 1))?;
        for (name, h) in map {
            let unit = h["unit"].as_str().unwrap_or("").to_string();
            let sparse: Vec<(usize, u64)> = h["buckets"]
                .as_array()
                .map(|pairs| {
                    pairs
                        .iter()
                        .filter_map(|p| {
                            let pair = p.as_array()?;
                            Some((pair.first()?.as_u64()? as usize, pair.get(1)?.as_u64()?))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let parsed = Histogram::from_parts(
                h["count"].as_u64().unwrap_or(0),
                h["sum"].as_u64().unwrap_or(0),
                h["min"].as_u64().unwrap_or(u64::MAX),
                h["max"].as_u64().unwrap_or(0),
                sparse,
            );
            let entry = self
                .hists
                .entry(name.clone())
                .or_insert_with(|| HistSummary {
                    unit: unit.clone(),
                    hist: Histogram::new(),
                });
            entry.hist.merge(&parsed);
        }
        Ok(())
    }

    /// The aggregated span-tree table: one row per path, with count,
    /// total/self seconds, and p50/p90/p99/max durations.
    pub fn span_table(&self) -> Table {
        let mut t = Table::new(
            "Span tree",
            &[
                "path", "count", "total_s", "self_s", "p50_ms", "p90_ms", "p99_ms", "max_ms",
            ],
        );
        for stat in self.stats.values() {
            let q = |p: f64| -> String {
                stat.hist
                    .quantile(p)
                    .map(|ns| format!("{:.3}", ns as f64 / 1e6))
                    .unwrap_or_else(|| "n/a".into())
            };
            let max = stat
                .hist
                .max()
                .map(|ns| format!("{:.3}", ns as f64 / 1e6))
                .unwrap_or_else(|| "n/a".into());
            t.push_row(vec![
                stat.path.clone(),
                stat.count.to_string(),
                format!("{:.6}", stat.total_s),
                format!("{:.6}", stat.self_s),
                q(0.50),
                q(0.90),
                q(0.99),
                max,
            ]);
        }
        t
    }

    /// The counter rollup table (depth-0 span deltas summed).
    pub fn counter_table(&self) -> Table {
        let mut t = Table::new("Counter rollup", &["counter", "total"]);
        for (name, v) in &self.counters {
            t.push_row(vec![name.clone(), v.to_string()]);
        }
        t
    }

    /// Folded-stack flamegraph lines (`a;b;c N`, inferno / flamegraph.pl
    /// compatible). One line per span path with positive **self** time;
    /// the sample unit is microseconds of self wall time.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for stat in self.stats.values() {
            let us = (stat.self_s * 1e6).round() as u64;
            if us > 0 {
                out.push_str(&stat.path);
                out.push(' ');
                out.push_str(&us.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Prometheus text-format snapshot: counter totals, per-path span
    /// totals, and every merged histogram as a native Prometheus histogram
    /// (cumulative `le` buckets over the log-2 layout). All names, labels,
    /// and value rendering come from `emp_obs::naming`, the module the
    /// live `/metrics` endpoint also renders through — the two outputs are
    /// diffable line-for-line for a common recording.
    pub fn prometheus(&self) -> String {
        use emp_obs::naming;
        let mut out = String::new();
        naming::push_counter_header(&mut out);
        for (name, v) in &self.counters {
            naming::push_counter(&mut out, name, *v);
        }
        naming::push_span_headers(&mut out);
        for stat in self.stats.values() {
            naming::push_span(&mut out, &stat.path, stat.total_s, stat.count);
        }
        naming::push_hist_header(&mut out);
        for (name, summary) in &self.hists {
            naming::push_hist(&mut out, name, &summary.unit, &summary.hist);
        }
        out
    }

    /// Machine-readable summary for `trace_report diff`: span paths with
    /// timing keys (picked up by [`regress`](crate::regress)) plus counter
    /// totals and histogram quantiles.
    pub fn summary_json(&self) -> Value {
        let spans: Vec<Value> = self
            .stats
            .values()
            .map(|s| {
                serde_json::json!({
                    "path": s.path.clone(),
                    "count": s.count,
                    "total_s": s.total_s,
                    "self_s": s.self_s,
                    "p50_ns": s.hist.quantile(0.50),
                    "p90_ns": s.hist.quantile(0.90),
                    "p99_ns": s.hist.quantile(0.99),
                    "max_ns": s.hist.max(),
                })
            })
            .collect();
        let hists: serde_json::Map<String, Value> = self
            .hists
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    serde_json::json!({
                        "unit": s.unit.clone(),
                        "count": s.hist.count(),
                        "p50": s.hist.quantile(0.50),
                        "p99": s.hist.quantile(0.99),
                        "max": s.hist.max(),
                    }),
                )
            })
            .collect();
        let counters: serde_json::Map<String, Value> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::from(*v)))
            .collect();
        serde_json::json!({
            "trace_summary": serde_json::json!({
                "lines": self.lines as u64,
                "spans": self.spans,
                "roots": self.roots,
                "trace_ends": self.trace_ends,
                "truncated": self.truncated,
                "orphans": self.orphans,
            }),
            "spans": spans,
            "counters": counters,
            "hists": hists,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-root close-ordered trace: solve{construct, tabu{resync}} twice,
    /// with a counter on each root, one hist record, and the end marker.
    fn sample_trace() -> String {
        [
            r#"{"type":"span","name":"construct","index":null,"depth":1,"wall_s":0.010,"counters":{}}"#,
            r#"{"type":"span","name":"resync","index":null,"depth":2,"wall_s":0.005,"counters":{}}"#,
            r#"{"type":"span","name":"tabu","index":null,"depth":1,"wall_s":0.030,"counters":{}}"#,
            r#"{"type":"trajectory","iteration":0,"heterogeneity":10.0}"#,
            r#"{"type":"span","name":"solve","index":null,"depth":0,"wall_s":0.050,"counters":{"tabu_moves_applied":7}}"#,
            r#"{"type":"span","name":"construct","index":null,"depth":1,"wall_s":0.020,"counters":{}}"#,
            r#"{"type":"span","name":"solve","index":null,"depth":0,"wall_s":0.025,"counters":{"tabu_moves_applied":3}}"#,
            r#"{"type":"hist","hists":{"tabu_boundary_size":{"unit":"areas","count":2,"sum":12,"min":4,"max":8,"buckets":[[3,1],[4,1]]}}}"#,
            r#"{"event":"trace_end"}"#,
            "",
        ]
        .join("\n")
    }

    #[test]
    fn rebuilds_span_tree_and_rolls_up() {
        let mut r = TraceReport::new();
        r.ingest(&sample_trace()).unwrap();
        assert_eq!(r.roots, 2);
        assert_eq!(r.spans, 6);
        assert_eq!(r.trace_ends, 1);
        assert!(!r.truncated);
        assert_eq!(r.orphans, 0);

        let solve = &r.stats["solve"];
        assert_eq!(solve.count, 2);
        assert!((solve.total_s - 0.075).abs() < 1e-12);
        // First root: 0.050 - (0.010 + 0.030); second: 0.025 - 0.020.
        assert!((solve.self_s - 0.015).abs() < 1e-12);
        let tabu = &r.stats["solve;tabu"];
        assert_eq!(tabu.count, 1);
        assert!((tabu.self_s - 0.025).abs() < 1e-12, "0.030 - resync 0.005");
        assert!(r.stats.contains_key("solve;tabu;resync"));
        assert_eq!(r.stats["solve;construct"].count, 2);

        assert_eq!(r.counters["tabu_moves_applied"], 10);
        assert_eq!(r.hists["tabu_boundary_size"].hist.count(), 2);
        assert_eq!(r.trajectory_points, 1);
    }

    #[test]
    fn folded_stacks_are_flamegraph_format() {
        let mut r = TraceReport::new();
        r.ingest(&sample_trace()).unwrap();
        let folded = r.folded_stacks();
        for line in folded.lines() {
            let (path, samples) = line.rsplit_once(' ').expect("`stack N` shape");
            assert!(
                !path.is_empty() && !path.ends_with(';'),
                "bad stack: {line}"
            );
            assert!(samples.parse::<u64>().expect("integer samples") > 0);
        }
        assert!(folded.contains("solve;tabu;resync 5000\n"));
        assert!(folded.contains("solve 15000\n"));
    }

    #[test]
    fn prometheus_snapshot_has_cumulative_buckets() {
        let mut r = TraceReport::new();
        r.ingest(&sample_trace()).unwrap();
        let prom = r.prometheus();
        assert!(prom.contains("# TYPE emp_hist histogram"));
        assert!(prom.contains("emp_counter_total{counter=\"tabu_moves_applied\"} 10"));
        // Buckets [3,1] and [4,1] (inclusive uppers 7 and 15): cumulative 1
        // then 2, and the final cumulative bucket (+Inf line) equals _count.
        assert!(prom.contains("le=\"7\"} 1"));
        assert!(prom.contains("le=\"15\"} 2"));
        assert!(prom.contains("le=\"+Inf\"} 2"));
        assert!(prom.contains("emp_hist_count{hist=\"tabu_boundary_size\",unit=\"areas\"} 2"));
        assert!(prom.contains("emp_span_closes_total{path=\"solve\"} 2"));
    }

    #[test]
    fn truncated_trace_is_detected() {
        let full = sample_trace();
        let cut = full.trim_end().trim_end_matches(r#"{"event":"trace_end"}"#);
        let mut r = TraceReport::new();
        r.ingest(cut).unwrap();
        assert!(r.truncated, "missing trailing trace_end must be flagged");
    }

    #[test]
    fn summary_json_feeds_the_regression_comparator() {
        let mut r = TraceReport::new();
        r.ingest(&sample_trace()).unwrap();
        let summary = r.summary_json();
        let labels: Vec<String> = crate::regress::extract_timings(&summary)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        assert!(
            labels.contains(&"spans[path=solve].total_s".to_string()),
            "{labels:?}"
        );
        assert!(labels.contains(&"spans[path=solve;tabu].self_s".to_string()));
    }

    #[test]
    fn malformed_lines_abort_with_location() {
        let mut r = TraceReport::new();
        let err = r.ingest("{\"type\":\"span\",\"depth\":0}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let mut r2 = TraceReport::new();
        let err2 = r2.ingest("not json\n").unwrap_err();
        assert!(err2.contains("not JSON"), "{err2}");
    }
}
