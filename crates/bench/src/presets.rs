//! Constraint presets and combination builders mirroring the paper's
//! experimental setup (Table II and §VII-B).

use emp_core::constraint::{Constraint, ConstraintSet};

/// Default MIN constraint: `MIN(POP16UP) <= 3000` (Table II).
pub fn default_min() -> Constraint {
    Constraint::min("POP16UP", f64::NEG_INFINITY, 3000.0).expect("valid")
}

/// Default AVG constraint: `AVG(EMPLOYED) in [1500, 3500]` (Table II).
pub fn default_avg() -> Constraint {
    Constraint::avg("EMPLOYED", 1500.0, 3500.0).expect("valid")
}

/// Default SUM constraint: `SUM(TOTALPOP) >= 20000` (Table II).
pub fn default_sum() -> Constraint {
    Constraint::sum("TOTALPOP", 20000.0, f64::INFINITY).expect("valid")
}

/// A MIN constraint over `POP16UP` with custom bounds.
pub fn min_range(low: f64, high: f64) -> Constraint {
    Constraint::min("POP16UP", low, high).expect("valid")
}

/// An AVG constraint over `EMPLOYED` with custom bounds.
pub fn avg_range(low: f64, high: f64) -> Constraint {
    Constraint::avg("EMPLOYED", low, high).expect("valid")
}

/// A SUM constraint over `TOTALPOP` with custom bounds.
pub fn sum_range(low: f64, high: f64) -> Constraint {
    Constraint::sum("TOTALPOP", low, high).expect("valid")
}

/// The constraint-combination labels used throughout §VII-B.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combo {
    /// MIN only.
    M,
    /// MIN + SUM.
    Ms,
    /// MIN + AVG.
    Ma,
    /// MIN + AVG + SUM.
    Mas,
    /// SUM only.
    S,
    /// AVG + SUM.
    As,
    /// AVG only.
    A,
}

impl Combo {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Combo::M => "M",
            Combo::Ms => "MS",
            Combo::Ma => "MA",
            Combo::Mas => "MAS",
            Combo::S => "S",
            Combo::As => "AS",
            Combo::A => "A",
        }
    }

    /// Builds the constraint set for this combo, overriding the varied
    /// constraint and keeping the others at Table II defaults.
    ///
    /// `min`, `avg`, `sum`: `None` keeps the default for combos that include
    /// that constraint type.
    pub fn build(
        self,
        min: Option<Constraint>,
        avg: Option<Constraint>,
        sum: Option<Constraint>,
    ) -> ConstraintSet {
        let mut set = ConstraintSet::new();
        let (has_m, has_a, has_s) = match self {
            Combo::M => (true, false, false),
            Combo::Ms => (true, false, true),
            Combo::Ma => (true, true, false),
            Combo::Mas => (true, true, true),
            Combo::S => (false, false, true),
            Combo::As => (false, true, true),
            Combo::A => (false, true, false),
        };
        if has_m {
            set.push(min.unwrap_or_else(default_min));
        }
        if has_a {
            set.push(avg.unwrap_or_else(default_avg));
        }
        if has_s {
            set.push(sum.unwrap_or_else(default_sum));
        }
        set
    }
}

/// Table III's MIN range sweep: `l = -inf` columns, `u = inf` columns, and
/// the bounded ranges, in paper order.
pub fn table3_ranges() -> Vec<(f64, f64)> {
    vec![
        (f64::NEG_INFINITY, 2000.0),
        (f64::NEG_INFINITY, 3500.0),
        (f64::NEG_INFINITY, 5000.0),
        (2000.0, f64::INFINITY),
        (3500.0, f64::INFINITY),
        (5000.0, f64::INFINITY),
        (2500.0, 3500.0),
        (2000.0, 4000.0),
        (1500.0, 4500.0),
        (1000.0, 5000.0),
        (1000.0, 2000.0),
        (2000.0, 3000.0),
        (3000.0, 4000.0),
        (4000.0, 5000.0),
    ]
}

/// Table IV's SUM range sweep.
pub fn table4_ranges() -> Vec<(f64, f64)> {
    vec![
        (1000.0, f64::INFINITY),
        (10000.0, f64::INFINITY),
        (20000.0, f64::INFINITY),
        (30000.0, f64::INFINITY),
        (40000.0, f64::INFINITY),
        (15000.0, 25000.0),
        (10000.0, 30000.0),
        (5000.0, 35000.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_core::constraint::Aggregate;

    #[test]
    fn defaults_match_table2() {
        let m = default_min();
        assert_eq!(m.aggregate, Aggregate::Min);
        assert_eq!(m.attribute, "POP16UP");
        assert_eq!(m.high, 3000.0);
        let a = default_avg();
        assert_eq!((a.low, a.high), (1500.0, 3500.0));
        let s = default_sum();
        assert_eq!(s.low, 20000.0);
    }

    #[test]
    fn combo_builds() {
        let mas = Combo::Mas.build(None, None, None);
        assert_eq!(mas.len(), 3);
        assert!(mas.has(Aggregate::Min) && mas.has(Aggregate::Avg) && mas.has(Aggregate::Sum));
        let m = Combo::M.build(Some(min_range(1000.0, 2000.0)), None, None);
        assert_eq!(m.len(), 1);
        assert_eq!(m.constraints()[0].low, 1000.0);
        let s = Combo::S.build(None, None, Some(sum_range(0.0, 5.0)));
        assert_eq!(s.constraints()[0].high, 5.0);
        assert_eq!(Combo::As.build(None, None, None).len(), 2);
        assert_eq!(Combo::A.build(None, None, None).len(), 1);
    }

    #[test]
    fn sweeps_match_paper_counts() {
        assert_eq!(table3_ranges().len(), 14);
        assert_eq!(table4_ranges().len(), 8);
    }

    #[test]
    fn labels() {
        assert_eq!(Combo::Mas.label(), "MAS");
        assert_eq!(Combo::Ms.label(), "MS");
    }
}
