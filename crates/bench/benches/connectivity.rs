//! Ablation bench (DESIGN.md §4.2): answering "is this area safe to remove
//! from its region?" via one articulation-point precomputation (answers all
//! members at once) vs a BFS per candidate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emp_graph::articulation::articulation_points;
use emp_graph::subgraph::is_connected_after_removal;
use emp_graph::ContiguityGraph;

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    for &side in &[8usize, 16, 32] {
        let graph = ContiguityGraph::lattice(side, side);
        let members: Vec<u32> = (0..(side * side) as u32).collect();
        group.bench_with_input(
            BenchmarkId::new("articulation_once", side * side),
            &side,
            |b, _| {
                b.iter(|| black_box(articulation_points(&graph, black_box(&members))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bfs_per_member", side * side),
            &side,
            |b, _| {
                b.iter(|| {
                    let mut safe = 0usize;
                    for &m in &members {
                        if is_connected_after_removal(&graph, &members, m) {
                            safe += 1;
                        }
                    }
                    black_box(safe)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_connectivity
}
criterion_main!(benches);
