//! Local-search bench: tabu iterations per second on a constructed 1000-area
//! partition (the phase dominating FaCT's total runtime in Figures 5-16).
//!
//! Benches the incremental neighborhood (boundary-area set + cached
//! articulation points, `FactConfig::incremental_tabu = true`) against the
//! full-scan + BFS-per-candidate reference path, and emits a
//! `BENCH_tabu.json` artifact at the workspace root with before/after
//! numbers, counter-derived rates (moves/s, articulation-cache hit rate),
//! and the heterogeneity trajectory — both captured through the emp-obs
//! telemetry channel instead of bespoke plumbing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emp_bench::presets::Combo;
use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::tabu::{tabu_search, tabu_search_observed, TabuConfig, TabuStats};
use emp_core::{ConstraintSet, EmpInstance, FactConfig};
use emp_obs::{CounterKind, Counters, InMemorySink, Recorder};
use std::time::Instant;

const AREAS: usize = 1000;
const BUDGETS: [usize; 2] = [50, 200];

/// Runs feasibility + construction only, then rebuilds the constructed
/// partition so the tabu phase can be benched in isolation.
fn constructed_partition(
    engine: &ConstraintEngine<'_>,
    instance: &EmpInstance,
    set: &ConstraintSet,
) -> Partition {
    let config = FactConfig {
        construction_iterations: 1,
        local_search: false,
        seed: 3,
        ..FactConfig::default()
    };
    let report = emp_core::solve(instance, set, &config).expect("feasible");
    let mut partition = Partition::new(instance.len());
    for members in &report.solution.regions {
        partition.create_region(engine, members);
    }
    partition
}

fn tabu_config(budget: usize, incremental: bool) -> TabuConfig {
    TabuConfig {
        max_no_improve: budget,
        incremental,
        ..TabuConfig::for_instance(AREAS)
    }
}

/// One observed run (counters + trajectory through an in-memory sink) plus a
/// best-of-3 wall time measured with the no-op recorder, for the JSON
/// artifact. The search is deterministic, so every repeat returns identical
/// stats; the minimum wall time is the least noise-contaminated measurement.
fn timed_run(
    engine: &ConstraintEngine<'_>,
    base: &Partition,
    config: &TabuConfig,
) -> (TabuStats, f64, Counters, Vec<f64>) {
    let sink = InMemorySink::new();
    let handle = sink.handle();
    let mut rec = Recorder::with_sink(Box::new(sink));
    let mut partition = base.clone();
    let stats = tabu_search_observed(engine, &mut partition, config, &mut rec);
    let counters = rec.counters_snapshot();
    rec.finish();
    let trajectory: Vec<f64> = handle
        .lock()
        .expect("trace handle")
        .trajectory
        .iter()
        .map(|&(_, h)| h)
        .collect();

    let mut wall_s = f64::INFINITY;
    for _ in 0..3 {
        let mut repeat = base.clone();
        let mut noop = Recorder::noop();
        let start = Instant::now();
        let again = tabu_search_observed(engine, &mut repeat, config, &mut noop);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
        assert_eq!(again.best, stats.best, "tabu search must be deterministic");
    }
    (stats, wall_s, counters, trajectory)
}

fn mode_json(stats: &TabuStats, wall_s: f64, counters: &Counters) -> serde_json::Value {
    let iters_per_sec = stats.iterations as f64 / wall_s.max(1e-12);
    let moves_evaluated = counters.get(CounterKind::TabuMovesEvaluated);
    let moves_applied = counters.get(CounterKind::TabuMovesApplied);
    let moves_per_sec = moves_applied as f64 / wall_s.max(1e-12);
    let cache_hit_rate = counters.articulation_hit_rate();
    let bfs_fallbacks = counters.get(CounterKind::BfsFallbacks);
    serde_json::json!({
        "wall_s": wall_s,
        "iterations": stats.iterations,
        "moves": stats.moves,
        "iters_per_sec": iters_per_sec,
        "moves_per_sec": moves_per_sec,
        "moves_evaluated": moves_evaluated,
        "articulation_cache_hit_rate": cache_hit_rate,
        "bfs_fallbacks": bfs_fallbacks,
        "slack_prune_skips": counters.get(CounterKind::TabuSlackPruneSkips),
        "initial_heterogeneity": stats.initial,
        "best_heterogeneity": stats.best,
    })
}

/// Sharded-evaluation section: the largest budget re-run with the parallel
/// tabu evaluator at jobs ∈ {1, 2, 4}. `identical_best` is *asserted*, not
/// just recorded — byte-identical results for any worker count is the
/// sharded evaluator's determinism contract (`DESIGN.md` §12) and a bench
/// run that violates it must fail loudly, not publish a bogus speedup.
fn sharded_json(engine: &ConstraintEngine<'_>, base: &Partition) -> serde_json::Value {
    let budget = BUDGETS[BUDGETS.len() - 1];
    let mut serial: Option<(TabuStats, f64)> = None;
    let mut entries = Vec::new();
    for jobs in [1usize, 2, 4] {
        let config = TabuConfig {
            jobs,
            ..tabu_config(budget, true)
        };
        let (stats, wall_s, counters, _) = timed_run(engine, base, &config);
        let (serial_stats, serial_s) = serial.get_or_insert((stats.clone(), wall_s));
        assert_eq!(
            (stats.moves, stats.iterations, stats.best.to_bits()),
            (
                serial_stats.moves,
                serial_stats.iterations,
                serial_stats.best.to_bits()
            ),
            "jobs = {jobs} must replay the serial search exactly"
        );
        entries.push(serde_json::json!({
            "jobs": jobs,
            "wall_s": wall_s,
            "iters_per_sec": stats.iterations as f64 / wall_s.max(1e-12),
            "shards_evaluated": counters.get(CounterKind::TabuShardsEvaluated),
            "parallel_iterations": counters.get(CounterKind::TabuParallelIterations),
            "slack_prune_skips": counters.get(CounterKind::TabuSlackPruneSkips),
            "speedup_vs_serial": *serial_s / wall_s.max(1e-12),
            "identical_best": true,
        }));
    }
    serde_json::json!({
        "max_no_improve": budget,
        "jobs": entries,
    })
}

/// Emits `BENCH_tabu.json` at the workspace root: per-budget wall times and
/// telemetry counters for both neighborhood implementations, the speedup,
/// and the (incremental) heterogeneity trajectory for the largest budget.
fn emit_artifact(engine: &ConstraintEngine<'_>, base: &Partition) {
    let mut budgets = Vec::new();
    let mut trajectory = Vec::new();
    for &budget in &BUDGETS {
        let (fast, fast_s, fast_c, trace) = timed_run(engine, base, &tabu_config(budget, true));
        let (slow, slow_s, slow_c, _) = timed_run(engine, base, &tabu_config(budget, false));
        assert_eq!(
            fast.best, slow.best,
            "ablation flag must not change the search outcome"
        );
        let incremental = mode_json(&fast, fast_s, &fast_c);
        let full_scan = mode_json(&slow, slow_s, &slow_c);
        let speedup = slow_s / fast_s.max(1e-12);
        let identical_best = fast.best == slow.best;
        budgets.push(serde_json::json!({
            "max_no_improve": budget,
            "incremental": incremental,
            "full_scan": full_scan,
            "speedup": speedup,
            "identical_best": identical_best,
        }));
        trajectory = trace;
    }
    let dataset = format!("tabu-bench ({AREAS} areas)");
    let artifact = serde_json::json!({
        "bench": "tabu",
        "dataset": dataset,
        "combo": "MAS",
        "budgets": budgets,
        "sharded": sharded_json(engine, base),
        "trajectory": trajectory,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tabu.json");
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap())
        .expect("write BENCH_tabu.json");
    eprintln!("wrote {path}");
}

fn bench_tabu(c: &mut Criterion) {
    let dataset = emp_data::build_sized("tabu-bench", AREAS);
    let instance = dataset.to_instance().unwrap();
    let set = Combo::Mas.build(None, None, None);
    let engine = ConstraintEngine::compile(&instance, &set).unwrap();
    let base = constructed_partition(&engine, &instance, &set);

    let mut group = c.benchmark_group("tabu");
    group.sample_size(10);
    for &budget in &BUDGETS {
        for (name, incremental) in [("incremental", true), ("full_scan", false)] {
            group.bench_function(format!("{name}_no_improve_{budget}"), |b| {
                let config = tabu_config(budget, incremental);
                b.iter(|| {
                    let mut partition = base.clone();
                    black_box(tabu_search(&engine, &mut partition, &config).best)
                });
            });
        }
    }
    group.finish();

    emit_artifact(&engine, &base);
}

criterion_group!(benches, bench_tabu);
criterion_main!(benches);
