//! Local-search bench: tabu iterations per second on a constructed 2k-ish
//! partition (the phase dominating FaCT's total runtime in Figures 5-16).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emp_bench::presets::Combo;
use emp_core::{solve, FactConfig};

fn bench_tabu(c: &mut Criterion) {
    let dataset = emp_data::build_sized("tabu-bench", 1000);
    let instance = dataset.to_instance().unwrap();
    let set = Combo::Mas.build(None, None, None);

    let mut group = c.benchmark_group("tabu");
    group.sample_size(10);
    for &budget in &[50usize, 200] {
        group.bench_function(format!("no_improve_{budget}"), |b| {
            b.iter(|| {
                let config = FactConfig {
                    construction_iterations: 1,
                    max_no_improve: Some(budget),
                    seed: 3,
                    ..FactConfig::default()
                };
                black_box(solve(&instance, &set, &config).unwrap().improvement())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tabu);
criterion_main!(benches);
