//! Local-search bench: tabu iterations per second on a constructed 1000-area
//! partition (the phase dominating FaCT's total runtime in Figures 5-16).
//!
//! Benches the incremental neighborhood (boundary-area set + cached
//! articulation points, `FactConfig::incremental_tabu = true`) against the
//! full-scan + BFS-per-candidate reference path, and emits a
//! `BENCH_tabu.json` artifact at the workspace root with before/after
//! numbers plus the heterogeneity trajectory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use emp_bench::presets::Combo;
use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::tabu::{tabu_search, tabu_search_traced, TabuConfig, TabuStats};
use emp_core::{ConstraintSet, EmpInstance, FactConfig};
use std::time::Instant;

const AREAS: usize = 1000;
const BUDGETS: [usize; 2] = [50, 200];

/// Runs feasibility + construction only, then rebuilds the constructed
/// partition so the tabu phase can be benched in isolation.
fn constructed_partition(
    engine: &ConstraintEngine<'_>,
    instance: &EmpInstance,
    set: &ConstraintSet,
) -> Partition {
    let config = FactConfig {
        construction_iterations: 1,
        local_search: false,
        seed: 3,
        ..FactConfig::default()
    };
    let report = emp_core::solve(instance, set, &config).expect("feasible");
    let mut partition = Partition::new(instance.len());
    for members in &report.solution.regions {
        partition.create_region(engine, members);
    }
    partition
}

fn tabu_config(budget: usize, incremental: bool) -> TabuConfig {
    TabuConfig {
        max_no_improve: budget,
        incremental,
        ..TabuConfig::for_instance(AREAS)
    }
}

/// Best-of-3 timed run outside criterion, for the JSON artifact. The search
/// is deterministic, so every repeat returns identical stats; the minimum
/// wall time is the least noise-contaminated measurement.
fn timed_run(
    engine: &ConstraintEngine<'_>,
    base: &Partition,
    config: &TabuConfig,
    trace: Option<&mut Vec<f64>>,
) -> (TabuStats, f64) {
    let mut partition = base.clone();
    let start = Instant::now();
    let stats = tabu_search_traced(engine, &mut partition, config, trace);
    let mut wall_s = start.elapsed().as_secs_f64();
    for _ in 0..2 {
        let mut repeat = base.clone();
        let start = Instant::now();
        let again = tabu_search_traced(engine, &mut repeat, config, None);
        wall_s = wall_s.min(start.elapsed().as_secs_f64());
        assert_eq!(again.best, stats.best, "tabu search must be deterministic");
    }
    (stats, wall_s)
}

fn mode_json(stats: &TabuStats, wall_s: f64) -> serde_json::Value {
    serde_json::json!({
        "wall_s": wall_s,
        "iterations": stats.iterations,
        "moves": stats.moves,
        "iters_per_sec": stats.iterations as f64 / wall_s.max(1e-12),
        "initial_heterogeneity": stats.initial,
        "best_heterogeneity": stats.best,
    })
}

/// Emits `BENCH_tabu.json` at the workspace root: per-budget wall times for
/// both neighborhood implementations, the speedup, and the (incremental)
/// heterogeneity trajectory for the largest budget.
fn emit_artifact(engine: &ConstraintEngine<'_>, base: &Partition) {
    let mut budgets = Vec::new();
    let mut trajectory = Vec::new();
    for &budget in &BUDGETS {
        let mut trace = Vec::new();
        let (fast, fast_s) = timed_run(engine, base, &tabu_config(budget, true), Some(&mut trace));
        let (slow, slow_s) = timed_run(engine, base, &tabu_config(budget, false), None);
        assert_eq!(
            fast.best, slow.best,
            "ablation flag must not change the search outcome"
        );
        budgets.push(serde_json::json!({
            "max_no_improve": budget,
            "incremental": mode_json(&fast, fast_s),
            "full_scan": mode_json(&slow, slow_s),
            "speedup": slow_s / fast_s.max(1e-12),
            "identical_best": fast.best == slow.best,
        }));
        trajectory = trace;
    }
    let artifact = serde_json::json!({
        "bench": "tabu",
        "dataset": format!("tabu-bench ({AREAS} areas)"),
        "combo": "MAS",
        "budgets": budgets,
        "trajectory": trajectory,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tabu.json");
    std::fs::write(path, serde_json::to_string_pretty(&artifact).unwrap())
        .expect("write BENCH_tabu.json");
    eprintln!("wrote {path}");
}

fn bench_tabu(c: &mut Criterion) {
    let dataset = emp_data::build_sized("tabu-bench", AREAS);
    let instance = dataset.to_instance().unwrap();
    let set = Combo::Mas.build(None, None, None);
    let engine = ConstraintEngine::compile(&instance, &set).unwrap();
    let base = constructed_partition(&engine, &instance, &set);

    let mut group = c.benchmark_group("tabu");
    group.sample_size(10);
    for &budget in &BUDGETS {
        for (name, incremental) in [("incremental", true), ("full_scan", false)] {
            group.bench_function(format!("{name}_no_improve_{budget}"), |b| {
                let config = tabu_config(budget, incremental);
                b.iter(|| {
                    let mut partition = base.clone();
                    black_box(tabu_search(&engine, &mut partition, &config).best)
                });
            });
        }
    }
    group.finish();

    emit_artifact(&engine, &base);
}

criterion_group!(benches, bench_tabu);
criterion_main!(benches);
