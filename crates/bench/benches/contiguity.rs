//! Substrate bench: rook-contiguity detection over tessellations — the
//! hashed exact-vertex path vs the geometric (grid-index + overlap) path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emp_data::tessellation::{generate, TessellationSpec};
use emp_geo::contiguity::{contiguity_hashed, contiguity_robust, ContiguityKind};

fn bench_contiguity(c: &mut Criterion) {
    let mut group = c.benchmark_group("contiguity");
    for &n in &[250usize, 1000] {
        let areas = generate(&TessellationSpec::squareish(n, 42));
        group.bench_with_input(BenchmarkId::new("hashed_rook", n), &n, |b, _| {
            b.iter(|| black_box(contiguity_hashed(black_box(&areas), ContiguityKind::Rook)));
        });
        group.bench_with_input(BenchmarkId::new("hashed_queen", n), &n, |b, _| {
            b.iter(|| black_box(contiguity_hashed(black_box(&areas), ContiguityKind::Queen)));
        });
        if n <= 250 {
            group.bench_with_input(BenchmarkId::new("robust_rook", n), &n, |b, _| {
                b.iter(|| black_box(contiguity_robust(black_box(&areas), ContiguityKind::Rook)));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_contiguity
}
criterion_main!(benches);
