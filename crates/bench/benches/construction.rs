//! Solver bench: one FaCT construction iteration (feasibility + growing +
//! adjustments, no tabu) across dataset sizes and constraint combos — the
//! Criterion counterpart of Figures 14/16.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emp_bench::presets::{avg_range, Combo};
use emp_core::{solve, FactConfig};

fn config() -> FactConfig {
    FactConfig {
        construction_iterations: 1,
        local_search: false,
        seed: 7,
        ..FactConfig::default()
    }
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for &n in &[500usize, 1000, 2344] {
        let dataset = emp_data::build_sized(&format!("bench-{n}"), n);
        let instance = dataset.to_instance().unwrap();
        for combo in [Combo::M, Combo::Mas] {
            let set = combo.build(None, None, None);
            group.bench_with_input(BenchmarkId::new(combo.label(), n), &n, |b, _| {
                b.iter(|| black_box(solve(&instance, &set, &config()).unwrap().p()));
            });
        }
        // The AVG 3k±1k bottleneck (Figure 16).
        let hard = Combo::Mas.build(None, Some(avg_range(2000.0, 4000.0)), None);
        group.bench_with_input(BenchmarkId::new("MAS_avg3k±1k", n), &n, |b, _| {
            b.iter(|| black_box(solve(&instance, &hard, &config()).unwrap().p()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
