//! Substrate bench: incremental pairwise-dissimilarity maintenance
//! (`DissimStat`) vs O(k²) brute-force recomputation — the cost model behind
//! every tabu move evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emp_core::heterogeneity::DissimStat;

fn brute(values: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..values.len() {
        for j in (i + 1)..values.len() {
            acc += (values[i] - values[j]).abs();
        }
    }
    acc
}

fn bench_heterogeneity(c: &mut Criterion) {
    let mut group = c.benchmark_group("heterogeneity");
    for &k in &[16usize, 128, 1024] {
        let values: Vec<f64> = (0..k).map(|i| ((i * 2654435761) % 10007) as f64).collect();
        group.bench_with_input(BenchmarkId::new("incremental_delta", k), &k, |b, _| {
            let stat = DissimStat::from_values(&values);
            b.iter(|| black_box(stat.insert_delta(black_box(5000.0))));
        });
        group.bench_with_input(BenchmarkId::new("bruteforce_recompute", k), &k, |b, _| {
            let mut with_extra = values.clone();
            with_extra.push(5000.0);
            b.iter(|| black_box(brute(black_box(&with_extra))));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_heterogeneity
}
criterion_main!(benches);
