//! Ablation bench (DESIGN.md §4.1): incremental region aggregates vs naive
//! recomputation. FaCT checks constraints after every tentative add/remove;
//! the incremental `RegionAgg` makes that O(m log k) instead of O(k·m).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::engine::ConstraintEngine;

fn bench_aggregates(c: &mut Criterion) {
    let dataset = emp_data::build_sized("agg-bench", 2000);
    let instance = dataset.to_instance().unwrap();
    let set = ConstraintSet::new()
        .with(Constraint::min("POP16UP", f64::NEG_INFINITY, 3000.0).unwrap())
        .with(Constraint::avg("EMPLOYED", 1500.0, 3500.0).unwrap())
        .with(Constraint::sum("TOTALPOP", 20000.0, f64::INFINITY).unwrap())
        .with(Constraint::count(1.0, f64::INFINITY).unwrap());
    let engine = ConstraintEngine::compile(&instance, &set).unwrap();

    let mut group = c.benchmark_group("aggregates");
    for &k in &[8usize, 64, 512] {
        let members: Vec<u32> = (0..k as u32).collect();
        // Incremental: maintain the aggregate, add/remove one area per probe.
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, _| {
            let mut agg = engine.compute_fresh(&members);
            b.iter(|| {
                engine.add_area(&mut agg, k as u32);
                let ok = engine.satisfies_all(black_box(&agg));
                engine.remove_area(&mut agg, k as u32);
                black_box(ok)
            });
        });
        // Naive: rebuild from scratch per probe (the ablation baseline).
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            let mut with_extra = members.clone();
            with_extra.push(k as u32);
            b.iter(|| {
                let agg = engine.compute_fresh(black_box(&with_extra));
                black_box(engine.satisfies_all(&agg))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_aggregates
}
criterion_main!(benches);
