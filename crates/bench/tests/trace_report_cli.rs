//! `trace_report` ingest edge cases, end to end through the binary: exit
//! codes and diagnostics for truncated traces, orphaned span closes, and
//! events recorded after the terminal `trace_end` marker. A trace that
//! under-counts must fail loudly — a report over a partial trace looks
//! plausible and silently wrong otherwise.

use std::path::PathBuf;
use std::process::{Command, Output};

/// A well-formed one-root close-ordered trace line set (without the final
/// newline join).
fn happy_lines() -> Vec<&'static str> {
    vec![
        r#"{"type":"span","name":"construct","index":null,"depth":1,"wall_s":0.010,"counters":{}}"#,
        r#"{"type":"span","name":"tabu","index":null,"depth":1,"wall_s":0.030,"counters":{}}"#,
        r#"{"type":"span","name":"solve","index":null,"depth":0,"wall_s":0.050,"counters":{"tabu_moves_applied":7}}"#,
        r#"{"event":"trace_end"}"#,
    ]
}

fn write_trace(name: &str, lines: &[&str]) -> PathBuf {
    let path = std::env::temp_dir().join(format!("emp-trace-report-cli-{name}.jsonl"));
    let mut content = lines.join("\n");
    content.push('\n');
    std::fs::write(&path, content).expect("write trace fixture");
    path
}

fn run_report(trace: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg(trace)
        .output()
        .expect("spawn trace_report")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn complete_trace_exits_zero() {
    let trace = write_trace("happy", &happy_lines());
    let out = run_report(&trace);
    assert!(out.status.success(), "stderr: {}", stderr_of(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 trace_end marker(s)"), "{stdout}");
    let _ = std::fs::remove_file(trace);
}

#[test]
fn missing_trace_end_exits_one() {
    let lines = happy_lines();
    let trace = write_trace("truncated", &lines[..lines.len() - 1]);
    let out = run_report(&trace);
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("trace is truncated (0 orphan span(s), trailing trace_end missing)"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn orphaned_span_close_exits_one() {
    // A depth-1 close with no enclosing depth-0 root ever arriving: the
    // span stays pending, and the report must flag it even though the
    // trailing trace_end is present.
    let trace = write_trace(
        "orphan",
        &[
            r#"{"type":"span","name":"construct","index":null,"depth":1,"wall_s":0.010,"counters":{}}"#,
            r#"{"event":"trace_end"}"#,
        ],
    );
    let out = run_report(&trace);
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("trace is truncated (1 orphan span(s), trailing trace_end present)"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn event_after_trace_end_exits_one() {
    // A producer that kept writing after its end marker: the marker is no
    // longer trailing, so the trace cannot vouch for completeness.
    let mut lines = happy_lines();
    lines.push(
        r#"{"type":"hist","hists":{"tabu_boundary_size":{"unit":"areas","count":1,"sum":4,"min":4,"max":4,"buckets":[[3,1]]}}}"#,
    );
    let trace = write_trace("post-end-hist", &lines);
    let out = run_report(&trace);
    assert_eq!(out.status.code(), Some(1));
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("trailing trace_end missing"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_file(trace);
}

#[test]
fn malformed_json_exits_two() {
    let trace = write_trace("malformed", &[r#"{"type":"span", oops"#]);
    let out = run_report(&trace);
    assert_eq!(out.status.code(), Some(2));
    let stderr = stderr_of(&out);
    assert!(stderr.contains("not JSON"), "stderr: {stderr}");
    let _ = std::fs::remove_file(trace);
}

#[test]
fn no_files_is_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .output()
        .expect("spawn trace_report");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("no trace files given"));
}

#[test]
fn help_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg("--help")
        .output()
        .expect("spawn trace_report");
    assert_eq!(out.status.code(), Some(0));
    assert!(stderr_of(&out).contains("usage:"));
}
