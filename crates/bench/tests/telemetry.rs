//! End-to-end telemetry invariants: a seeded 200-area FaCT solve streamed
//! into an in-memory sink must produce a consistent span tree, counter
//! totals, and local-search trajectory (ISSUE: observability acceptance).

use emp_bench::presets::Combo;
use emp_bench::runner::{run_fact, RunOptions};
use emp_obs::{CounterKind, InMemorySink, SharedSink};

#[test]
fn traced_solve_satisfies_telemetry_invariants() {
    let dataset = emp_data::build_sized("telemetry-it", 200);
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);
    let sink = InMemorySink::new();
    let handle = sink.handle();
    let opts = RunOptions {
        max_no_improve: Some(100),
        trace: Some(SharedSink::new(Box::new(sink))),
        ..RunOptions::default()
    };
    let m = run_fact(&instance, &set, &opts);
    assert!(m.p > 0, "seeded instance must be feasible");

    let trace = handle.lock().expect("trace handle");

    // Exactly one root span, named "solve", and it is the last to close.
    let roots: Vec<_> = trace.spans.iter().filter(|s| s.depth == 0).collect();
    assert_eq!(roots.len(), 1, "one root span");
    assert_eq!(roots[0].name, "solve");
    assert_eq!(trace.spans.last().expect("spans recorded").name, "solve");

    // The phase spans of the FaCT pipeline all appear.
    for phase in ["feasibility", "construct_iter", "grow", "adjust", "tabu"] {
        assert!(
            trace.spans.iter().any(|s| s.name == phase),
            "missing span '{phase}'"
        );
    }

    // Counter consistency, on the per-run totals the Measurement carries.
    let c = &m.counters;
    assert!(
        c.get(CounterKind::TabuMovesApplied) <= c.get(CounterKind::TabuMovesEvaluated),
        "applied moves exceed evaluated candidates"
    );
    assert_eq!(
        c.get(CounterKind::ArticulationCacheHits) + c.get(CounterKind::ArticulationCacheMisses),
        c.get(CounterKind::ArticulationQueries),
        "hits + misses must equal queries"
    );
    assert!(c.get(CounterKind::RegionsCreated) > 0);

    // The root span saw at least the whole run's tabu activity.
    assert_eq!(
        roots[0].counters.get(CounterKind::TabuMovesApplied),
        c.get(CounterKind::TabuMovesApplied)
    );

    // Trajectory: starts at the pre-search objective, running minimum is
    // non-increasing (accepted improving moves only lower the best), and the
    // final best matches the improvement the Measurement reports.
    assert!(
        !trace.trajectory.is_empty(),
        "tabu ran, trajectory recorded"
    );
    assert_eq!(trace.trajectory[0].0, 0, "first point is iteration 0");
    let initial = trace.trajectory[0].1;
    let mut running_min = f64::INFINITY;
    let mut mins = Vec::with_capacity(trace.trajectory.len());
    for &(_, h) in &trace.trajectory {
        running_min = running_min.min(h);
        mins.push(running_min);
    }
    assert!(
        mins.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "running minimum must be non-increasing"
    );
    let best = *mins.last().unwrap();
    match m.improvement {
        Some(r) => {
            assert!(initial > 0.0);
            assert!(
                (r - (initial - best) / initial).abs() < 1e-9,
                "improvement must be derivable from the trajectory"
            );
        }
        None => panic!("local search ran on a nonzero objective"),
    }

    // Derived rates are available whenever their inputs are nonzero.
    if c.get(CounterKind::TabuMovesApplied) > 0 && m.tabu_s > 0.0 {
        assert!(m.moves_per_sec().unwrap() > 0.0);
    }
    if c.get(CounterKind::ArticulationQueries) > 0 {
        let rate = m.cache_hit_rate().unwrap();
        assert!((0.0..=1.0).contains(&rate));
    }
}
