//! The harness determinism contract, end to end: a fast-mode run of the
//! full experiment registry at `--jobs 4` must produce byte-identical
//! canonical output to the `--jobs 1` sequential reference — rendered
//! tables (wall-clock cells masked) and JSONL event traces (`wall_s`
//! masked) alike.

use emp_bench::canon;
use emp_bench::experiments::{registry, ExpContext};
use emp_obs::{EventSink as _, JsonlWriter, SharedSink};
use std::path::{Path, PathBuf};

/// One fast-mode pass over the registry: returns, per experiment, the
/// timing-masked markdown render and the canonicalized JSONL trace.
fn run_registry(jobs: usize, trace_dir: &Path) -> Vec<(String, String, String)> {
    std::fs::create_dir_all(trace_dir).expect("trace dir");
    let mut ctx = ExpContext::fast();
    ctx.jobs = jobs;
    let mut out = Vec::new();
    for exp in registry() {
        let path = trace_dir.join(format!("{}.jsonl", exp.name));
        let writer = JsonlWriter::create(&path).expect("create trace");
        let mut sink = SharedSink::new(Box::new(writer));
        ctx.trace = Some(sink.clone());
        let tables = (exp.run)(&ctx);
        sink.flush();
        ctx.trace = None;

        let rendered = tables
            .iter()
            .map(|t| canon::mask_timings(t).markdown())
            .collect::<Vec<_>>()
            .join("\n");
        let trace = canon::canonical_trace(&std::fs::read_to_string(&path).expect("read trace"));
        let _ = std::fs::remove_file(&path);
        out.push((exp.name.to_string(), rendered, trace));
    }
    out
}

#[test]
fn four_jobs_match_the_sequential_reference() {
    let base = std::env::temp_dir().join(format!("emp_par_det_{}", std::process::id()));
    let seq = run_registry(1, &base.join("seq"));
    let par = run_registry(4, &base.join("par"));
    let _ = std::fs::remove_dir_all(&base);

    assert_eq!(seq.len(), par.len());
    for ((name, seq_tables, seq_trace), (par_name, par_tables, par_trace)) in seq.iter().zip(&par) {
        assert_eq!(name, par_name);
        assert_eq!(
            seq_tables, par_tables,
            "experiment '{name}': rendered tables diverged between --jobs 1 and --jobs 4"
        );
        assert_eq!(
            seq_trace, par_trace,
            "experiment '{name}': canonical traces diverged between --jobs 1 and --jobs 4"
        );
    }
    // Not every experiment traces solver runs (`datasets` only builds), but
    // most must — an all-empty pass would make the comparison vacuous.
    let traced = seq.iter().filter(|(_, _, t)| !t.is_empty()).count();
    assert!(traced >= seq.len() - 2, "only {traced} experiments traced");
}

/// Guard for the guard: masking must not erase solver content. The masked
/// render still contains p values and counters (digits), and the canonical
/// trace still contains counters and trajectory points.
#[test]
fn canonical_forms_keep_solver_content() {
    let base: PathBuf = std::env::temp_dir().join(format!("emp_par_det_c_{}", std::process::id()));
    let runs = run_registry(2, &base);
    let _ = std::fs::remove_dir_all(&base);
    let (_, tables, trace) = runs
        .iter()
        .find(|(name, _, _)| name == "table3")
        .expect("table3 in registry");
    assert!(tables.chars().any(|c| c.is_ascii_digit()));
    assert!(trace.contains("\"counters\""));
    assert!(trace.contains("\"wall_s\":null"));
}
