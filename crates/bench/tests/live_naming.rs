//! Naming-contract tests: the live `/metrics` render and `trace_report
//! --prom` are built on the same `emp_obs::naming` module, so for one
//! recorded solve the metric families they share must agree line-for-line
//! (names, labels, *and* values). Also pins the flight-recorder dump as
//! valid `trace_report` input.

use emp_bench::presets::Combo;
use emp_bench::report::TraceReport;
use emp_bench::runner::{run_fact, RunOptions};
use emp_obs::{replay, BufferSink, JsonlWriter, LiveRegistry, RingSink, SharedSink};
use std::sync::Arc;

/// One seeded 200-area solve recorded three ways at once: an event buffer
/// (the `trace_report` path), a live registry (the `/metrics` path), and a
/// deliberately tiny flight ring (forces overwrite-oldest).
fn solve_all_sinks() -> (TraceReport, Arc<LiveRegistry>, RingSink) {
    let dataset = emp_data::build_sized("live-naming-it", 200);
    let instance = dataset.to_instance().expect("instance");
    let set = Combo::Mas.build(None, None, None);
    let buffer = BufferSink::new();
    let events = buffer.handle();
    let registry = Arc::new(LiveRegistry::new());
    let flight = RingSink::new(64);
    let opts = RunOptions {
        max_no_improve: Some(100),
        trace: Some(SharedSink::new(Box::new(buffer))),
        live: Some(Arc::clone(&registry)),
        flight: Some(flight.clone()),
        ..RunOptions::default()
    };
    let m = run_fact(&instance, &set, &opts);
    assert!(m.p > 0, "seeded instance must be feasible");

    // Round-trip the buffered events through the JSONL writer into the
    // trace_report engine — the exact offline pipeline.
    let events = events.lock().expect("event buffer").clone();
    let mut writer = JsonlWriter::new(Vec::new());
    replay(&events, &mut writer);
    let jsonl = String::from_utf8(writer.into_inner()).expect("utf8 trace");
    let mut report = TraceReport::new();
    report.ingest(&jsonl).expect("trace ingests");
    (report, registry, flight)
}

/// The lines of `text` belonging to the metric family `prefix` (samples
/// and their `# HELP` / `# TYPE` headers).
fn family_lines<'a>(text: &'a str, prefix: &str) -> Vec<&'a str> {
    text.lines()
        .filter(|l| {
            l.starts_with(prefix)
                || l.strip_prefix("# HELP ")
                    .or_else(|| l.strip_prefix("# TYPE "))
                    .is_some_and(|rest| rest.starts_with(prefix))
        })
        .collect()
}

#[test]
fn live_metrics_and_trace_report_share_naming() {
    let (report, registry, _) = solve_all_sinks();
    let offline = report.prometheus();
    let live = registry.render_prometheus();

    // Counters: both renders cover the same solve, so every offline counter
    // sample must appear byte-identical in the live output. (The live side
    // also exposes zero-valued counters; the offline report skips them.)
    let offline_counters = family_lines(&offline, "emp_counter_total");
    assert!(!offline_counters.is_empty(), "offline render has counters");
    for line in offline_counters {
        assert!(
            live.contains(line),
            "offline counter line missing from live render: {line}"
        );
    }

    // Histograms: same data reaches both sides (trace events vs live
    // mirrors), so buckets, sums, and counts must agree byte-for-byte.
    for family in ["emp_hist_bucket", "emp_hist_sum", "emp_hist_count"] {
        let lines = family_lines(&offline, family);
        assert!(!lines.is_empty(), "offline render has {family} samples");
        for line in lines {
            assert!(
                live.contains(line),
                "offline {family} line missing from live render: {line}"
            );
        }
    }

    // The live-only families exist with their documented names.
    assert!(live.contains("# TYPE emp_solve_progress gauge"));
    assert!(live.contains("emp_solve_progress{solve=\"fact-n200-seed2022\",field=\"iteration\"}"));
    assert!(live.contains("# TYPE emp_solve_stop_reason gauge"));
    assert!(live.contains("reason=\"completed\"} 1"));
}

#[test]
fn progress_json_reports_the_finished_solve() {
    let (_, registry, _) = solve_all_sinks();
    let progress = registry.render_progress();
    let line = progress.lines().next().expect("one progress line");
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(line);
    let v = parsed.expect("progress line is valid JSON");
    assert_eq!(v["solve"].as_str(), Some("fact-n200-seed2022"));
    assert_eq!(v["done"].as_bool(), Some(true));
    assert_eq!(v["stop_reason"].as_str(), Some("completed"));
    assert!(v["iteration"].as_u64().is_some());
    assert!(v["best_h"].as_f64().is_some());
}

#[test]
fn flight_recorder_dump_is_valid_trace_report_input() {
    let (_, _, flight) = solve_all_sinks();
    assert!(
        flight.dropped_events() > 0,
        "a 64-slot ring must wrap on a 200-area solve"
    );
    let dump = flight.dump_jsonl();
    let mut report = TraceReport::new();
    report
        .ingest(&dump)
        .expect("flight dump must ingest without truncation errors");
    // The dump advertises its own truncation instead of hiding it.
    assert!(dump.contains("flight_recorder_dropped"));
}
