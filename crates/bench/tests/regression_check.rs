//! `bench_core --check-regression` verdicts, end to end through the
//! binary in file-vs-file mode (`--candidate` / `--against`). The key
//! regression under test: a reference artifact that is *missing* a timing
//! metric present in the candidate used to pass silently — a stale baseline
//! vouched for numbers it had never seen.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_json(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("emp-regression-check-{name}.json"));
    std::fs::write(&path, content).expect("write fixture");
    path
}

fn run_check(reference: &PathBuf, candidate: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench_core"))
        .args(["--check-regression", "--against"])
        .arg(reference)
        .arg("--candidate")
        .arg(candidate)
        .output()
        .expect("spawn bench_core")
}

#[test]
fn identical_artifacts_pass() {
    let reference = write_json("id-ref", r#"{"solve_s": 0.5, "graph_build_s": 0.01}"#);
    let candidate = write_json("id-cand", r#"{"solve_s": 0.5, "graph_build_s": 0.01}"#);
    let out = run_check(&reference, &candidate);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
    let _ = std::fs::remove_file(reference);
    let _ = std::fs::remove_file(candidate);
}

#[test]
fn regressed_timing_fails() {
    let reference = write_json("slow-ref", r#"{"solve_s": 0.5}"#);
    let candidate = write_json("slow-cand", r#"{"solve_s": 1.2}"#);
    let out = run_check(&reference, &candidate);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    let _ = std::fs::remove_file(reference);
    let _ = std::fs::remove_file(candidate);
}

#[test]
fn reference_missing_candidate_metric_fails() {
    // The candidate grew a metric the baseline has no number for. The
    // verdict must be exit 1 with the uncovered label named, not a silent
    // PASS.
    let reference = write_json("miss-ref", r#"{"solve_s": 0.5}"#);
    let candidate = write_json("miss-cand", r#"{"solve_s": 0.5, "bfs_sweep_s": 0.2}"#);
    let out = run_check(&reference, &candidate);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing 1 candidate timing metric(s)"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("bfs_sweep_s"), "stderr: {stderr}");
    let _ = std::fs::remove_file(reference);
    let _ = std::fs::remove_file(candidate);
}

#[test]
fn retired_reference_metric_stays_nonfatal() {
    // The reverse direction — a metric only the *reference* has — is a
    // retired benchmark, reported but not fatal.
    let reference = write_json("retire-ref", r#"{"solve_s": 0.5, "gone_s": 9.0}"#);
    let candidate = write_json("retire-cand", r#"{"solve_s": 0.5}"#);
    let out = run_check(&reference, &candidate);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("gone_s"));
    let _ = std::fs::remove_file(reference);
    let _ = std::fs::remove_file(candidate);
}
