//! Irregular polygon tessellations standing in for census-tract shapefiles.
//!
//! Census tracts form a planar tessellation whose contiguity graph has mean
//! degree ≈ 6. A *brick-wall* layout reproduces that: every interior brick
//! touches two side neighbors plus two above and two below. Vertices are
//! jittered with a deterministic hash (shared between adjacent bricks, so
//! contiguity survives), which makes the polygons irregular like real
//! tracts. Multi-component layouts ("islands") model states with offshore
//! areas — a capability EMP has over classic MP-regions.

use emp_geo::par;
use emp_geo::polygon::MultiPolygon;
use emp_geo::ring::Ring;
use emp_geo::{Point, Polygon};

/// Parameters of a brick-wall tessellation.
#[derive(Clone, Debug, PartialEq)]
pub struct TessellationSpec {
    /// Exact number of areas to generate.
    pub n: usize,
    /// Bricks per full row (the last row may be partial).
    pub row_width: usize,
    /// Number of disconnected island bands (1 = a single component).
    pub islands: usize,
    /// Vertex jitter amplitude in cell units (0 = perfectly regular).
    pub jitter: f64,
    /// Seed for the deterministic vertex jitter.
    pub seed: u64,
}

impl TessellationSpec {
    /// A near-square layout for `n` areas with default jitter.
    pub fn squareish(n: usize, seed: u64) -> Self {
        let row_width = ((n as f64).sqrt() / 1.4).ceil().max(1.0) as usize;
        TessellationSpec {
            n,
            row_width,
            islands: 1,
            jitter: 0.22,
            seed,
        }
    }

    /// A near-square layout split into `islands` disconnected bands —
    /// the multi-component case (offshore areas) that EMP supports and
    /// classic MP-regions does not. Used by the fuzz generator to exercise
    /// solvers on disconnected contiguity graphs.
    pub fn islands(n: usize, islands: usize, seed: u64) -> Self {
        TessellationSpec {
            islands: islands.max(1),
            ..Self::squareish(n, seed)
        }
    }
}

/// Below this many areas `generate` stays single-threaded (brick
/// construction is a few hundred nanoseconds each; forking threads only
/// pays off on the scalability-ladder sizes).
const GENERATE_PARALLEL_MIN_AREAS: usize = 2048;

/// Minimum bricks per worker chunk once the parallel path engages.
const GENERATE_MIN_CHUNK: usize = 256;

/// Generates the tessellation: one (multi-)polygon per area.
///
/// Bricks are laid row by row; odd rows are offset by half a brick. Brick
/// edges are split at half-brick boundaries so adjacent bricks share
/// identical vertices and hashed contiguity detection works exactly.
///
/// Every brick is a pure function of `(spec, idx)`, so large tessellations
/// are built on [`par::effective_jobs`] threads via contiguous index chunks
/// reassembled in order — the output is byte-identical for every worker
/// count.
pub fn generate(spec: &TessellationSpec) -> Vec<MultiPolygon> {
    let jobs = if spec.n < GENERATE_PARALLEL_MIN_AREAS {
        1
    } else {
        par::effective_jobs()
    };
    generate_jobs(spec, jobs)
}

/// [`generate`] with an explicit worker count (1 = sequential reference).
pub fn generate_jobs(spec: &TessellationSpec, jobs: usize) -> Vec<MultiPolygon> {
    assert!(spec.row_width > 0, "row_width must be positive");
    assert!(spec.islands > 0, "islands must be positive");
    par::parallel_chunks(spec.n, GENERATE_MIN_CHUNK, jobs, |range| {
        range.map(|idx| brick(spec, idx)).collect()
    })
}

/// Builds brick `idx` of the tessellation — pure in `(spec, idx)`.
fn brick(spec: &TessellationSpec, idx: usize) -> MultiPolygon {
    let w = spec.row_width;
    // Horizontal gap (in x lattice units) inserted between island bands.
    let island_of = |brick_x: usize| -> usize {
        if spec.islands == 1 {
            0
        } else {
            (brick_x * spec.islands / w).min(spec.islands - 1)
        }
    };
    let gap = 6i64;
    let row = idx / w;
    let col = idx % w;
    // Lattice coordinates: x in half-brick units (brick = 2 units).
    let offset = if row % 2 == 1 { 1 } else { 0 };
    let band = island_of(col) as i64;
    let x0 = (2 * col + offset) as i64 + band * gap;
    let y0 = row as i64;
    let verts = [
        (x0, y0),
        (x0 + 1, y0),
        (x0 + 2, y0),
        (x0 + 2, y0 + 1),
        (x0 + 1, y0 + 1),
        (x0, y0 + 1),
    ];
    let points: Vec<Point> = verts
        .iter()
        .map(|&(ix, iy)| jittered_vertex(ix, iy, spec.jitter, spec.seed))
        .collect();
    let ring = Ring::new(points).expect("brick ring is valid");
    Polygon::new(ring).into()
}

/// Deterministic, shared vertex jitter: the same lattice vertex always maps
/// to the same planar point, so adjacent bricks keep identical boundary
/// vertices.
fn jittered_vertex(ix: i64, iy: i64, amplitude: f64, seed: u64) -> Point {
    if amplitude == 0.0 {
        return Point::new(ix as f64, iy as f64);
    }
    let h = hash3(ix as u64, iy as u64, seed);
    // Two independent offsets in [-amplitude, amplitude).
    let dx = (((h & 0xFFFF_FFFF) as f64) / 2f64.powi(32) - 0.5) * 2.0 * amplitude;
    let dy = ((((h >> 32) & 0xFFFF_FFFF) as f64) / 2f64.powi(32) - 0.5) * 2.0 * amplitude;
    Point::new(ix as f64 + dx, iy as f64 + dy)
}

/// SplitMix64-style avalanche over three words.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_geo::contiguity::{contiguity_hashed, edges_to_adjacency, ContiguityKind};
    use emp_graph::{connected_components, ContiguityGraph};

    fn graph_of(areas: &[MultiPolygon]) -> ContiguityGraph {
        let edges = contiguity_hashed(areas, ContiguityKind::Rook);
        let adj = edges_to_adjacency(areas.len(), &edges);
        ContiguityGraph::from_adjacency(adj).unwrap()
    }

    #[test]
    fn exact_area_count() {
        for n in [1, 7, 30, 101] {
            let spec = TessellationSpec::squareish(n, 1);
            assert_eq!(generate(&spec).len(), n);
        }
    }

    #[test]
    fn interior_bricks_have_degree_six() {
        let spec = TessellationSpec {
            n: 100,
            row_width: 10,
            islands: 1,
            jitter: 0.0,
            seed: 0,
        };
        let areas = generate(&spec);
        let g = graph_of(&areas);
        // Area 55 is interior (row 5, col 5).
        assert_eq!(g.degree(55), 6);
        // Mean degree approaches 6 from below (boundary effects).
        assert!(g.mean_degree() > 4.5 && g.mean_degree() <= 6.0);
    }

    #[test]
    fn jitter_preserves_contiguity() {
        let flat = TessellationSpec {
            n: 60,
            row_width: 6,
            islands: 1,
            jitter: 0.0,
            seed: 3,
        };
        let wavy = TessellationSpec {
            jitter: 0.22,
            ..flat
        };
        let g_flat = graph_of(&generate(&flat));
        let g_wavy = graph_of(&generate(&wavy));
        assert_eq!(g_flat, g_wavy, "jitter must not change adjacency");
    }

    #[test]
    fn jitter_is_deterministic_and_shared() {
        let spec = TessellationSpec::squareish(40, 9);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        // Polygons remain simple under default jitter.
        for mp in &a {
            for poly in mp.polygons() {
                assert!(poly.exterior().is_simple());
                assert!(poly.area() > 0.5);
            }
        }
    }

    #[test]
    fn generate_jobs_is_thread_count_invariant() {
        // Large enough (> GENERATE_MIN_CHUNK per worker) that the parallel
        // path actually splits into several chunks.
        for spec in [
            TessellationSpec::squareish(1000, 13),
            TessellationSpec::islands(900, 3, 7),
        ] {
            let seq = generate_jobs(&spec, 1);
            for jobs in [2, 3, 8] {
                assert_eq!(generate_jobs(&spec, jobs), seq, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn single_component_by_default() {
        let spec = TessellationSpec::squareish(80, 2);
        let g = graph_of(&generate(&spec));
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn islands_create_components() {
        let spec = TessellationSpec {
            n: 90,
            row_width: 9,
            islands: 3,
            jitter: 0.1,
            seed: 5,
        };
        let g = graph_of(&generate(&spec));
        assert_eq!(connected_components(&g).count(), 3);
    }

    #[test]
    fn partial_last_row_stays_connected() {
        let spec = TessellationSpec {
            n: 25, // 3 full rows of 7 + 4
            row_width: 7,
            islands: 1,
            jitter: 0.15,
            seed: 11,
        };
        let g = graph_of(&generate(&spec));
        assert_eq!(connected_components(&g).count(), 1);
    }
}
