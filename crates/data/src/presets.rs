//! Named dataset presets mirroring the paper's nine evaluation datasets
//! (Table I and §VII-A).
//!
//! Each preset reproduces the *size* of a paper dataset exactly; geometry and
//! attributes are synthetic (see the crate docs for the substitution
//! rationale). Multi-state datasets grow by appending states, which the
//! synthetic generator mirrors by enlarging a single tessellation.

use crate::dataset::Dataset;
use crate::tessellation::TessellationSpec;

/// One paper dataset preset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Preset {
    /// Paper name (e.g. `"2k"`).
    pub name: &'static str,
    /// Exact area count from the paper.
    pub areas: usize,
    /// What the dataset denotes in the paper.
    pub description: &'static str,
}

/// All nine evaluation datasets (paper §VII-A and Table I).
pub const PRESETS: [Preset; 9] = [
    Preset {
        name: "1k",
        areas: 1012,
        description: "Los Angeles City",
    },
    Preset {
        name: "2k",
        areas: 2344,
        description: "Los Angeles County (default dataset)",
    },
    Preset {
        name: "4k",
        areas: 3947,
        description: "Southern California (SCAG)",
    },
    Preset {
        name: "8k",
        areas: 8049,
        description: "State of California",
    },
    Preset {
        name: "10k",
        areas: 10255,
        description: "CA, NV, AZ",
    },
    Preset {
        name: "20k",
        areas: 20570,
        description: "10k + OR, WA, ID, UT, MT, WY, CO, NM, OK, NE, SD, ND",
    },
    Preset {
        name: "30k",
        areas: 29887,
        description: "20k + TX, LA, AR, MO, IA",
    },
    Preset {
        name: "40k",
        areas: 40214,
        description: "30k + MN, MS, AL, TN, KY, IL, WI",
    },
    Preset {
        name: "50k",
        areas: 49943,
        description: "40k + GA, IN, MI, OH, WV",
    },
];

/// The paper's default evaluation dataset.
pub const DEFAULT_PRESET: &str = "2k";

/// Looks up a preset by name.
pub fn preset(name: &str) -> Option<Preset> {
    PRESETS.iter().copied().find(|p| p.name == name)
}

/// Builds the dataset for a preset with the canonical seed (each preset has
/// a fixed seed so experiments are reproducible across runs and machines).
pub fn build_preset(name: &str) -> Option<Dataset> {
    let p = preset(name)?;
    Some(build_sized(p.name, p.areas))
}

/// Builds a synthetic dataset of an arbitrary size with preset-compatible
/// generation parameters.
pub fn build_sized(name: &str, areas: usize) -> Dataset {
    let seed = 0xC0FFEE ^ areas as u64;
    let spec = TessellationSpec::squareish(areas, seed);
    Dataset::generate(name, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lookup() {
        assert_eq!(preset("2k").unwrap().areas, 2344);
        assert_eq!(preset("50k").unwrap().areas, 49943);
        assert!(preset("3k").is_none());
        assert!(preset(DEFAULT_PRESET).is_some());
    }

    #[test]
    fn paper_sizes_are_exact() {
        // Table I sizes.
        let sizes: Vec<usize> = PRESETS.iter().map(|p| p.areas).collect();
        assert_eq!(
            sizes,
            vec![1012, 2344, 3947, 8049, 10255, 20570, 29887, 40214, 49943]
        );
    }

    #[test]
    fn build_small_preset() {
        let d = build_preset("1k").unwrap();
        assert_eq!(d.len(), 1012);
        assert_eq!(d.name, "1k");
        assert!(emp_graph::is_connected(&d.graph));
    }

    #[test]
    fn build_sized_is_deterministic() {
        let a = build_sized("x", 200);
        let b = build_sized("x", 200);
        assert_eq!(a.attributes, b.attributes);
        assert_eq!(a.graph, b.graph);
    }
}
