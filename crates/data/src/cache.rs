//! Per-entry once-initialization map for concurrent dataset caching.
//!
//! The bench harness used to cache datasets behind a single `Mutex` held
//! across the entire multi-second build, so two workers asking for *distinct*
//! presets serialized on each other. [`OnceMap`] fixes the lock hierarchy:
//!
//! * a `RwLock<HashMap>` guards only the *map structure* (lookup / insert of
//!   an empty slot) and is held for nanoseconds;
//! * each entry is an `Arc<OnceLock<Arc<V>>>` — the build runs inside the
//!   per-entry `OnceLock`, so concurrent requests for the **same** key block
//!   on that entry alone (and exactly one of them builds), while requests
//!   for **different** keys proceed fully in parallel.
//!
//! Values are handed out as `Arc<V>` clones, so readers never hold any lock
//! while using a dataset.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, OnceLock, RwLock};

/// A concurrent map where each value is built at most once, builds for
/// distinct keys run in parallel, and lookups are lock-free after
/// initialization (an `RwLock` read + `OnceLock` load).
pub struct OnceMap<K, V> {
    entries: RwLock<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Eq + Hash + Clone, V> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        OnceMap {
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the value for `key`, building it with `init` if this is the
    /// first request. Concurrent callers with the same key block until the
    /// single in-flight build finishes; callers with different keys are
    /// never blocked by it.
    pub fn get_or_init<F: FnOnce() -> V>(&self, key: &K, init: F) -> Arc<V> {
        let slot = self.slot(key);
        // The map locks are released; only this entry's OnceLock is involved
        // from here on, so unrelated builds proceed concurrently.
        Arc::clone(slot.get_or_init(|| Arc::new(init())))
    }

    /// Returns the value for `key` if it has finished building.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let map = self.entries.read().expect("OnceMap lock poisoned");
        map.get(key).and_then(|slot| slot.get()).cloned()
    }

    /// Number of *completed* entries (slots whose build finished).
    pub fn len(&self) -> usize {
        let map = self.entries.read().expect("OnceMap lock poisoned");
        map.values().filter(|slot| slot.get().is_some()).count()
    }

    /// True when no entry has completed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The (possibly empty) slot for `key`, creating it under a brief write
    /// lock if absent.
    fn slot(&self, key: &K) -> Arc<OnceLock<Arc<V>>> {
        if let Some(slot) = self.entries.read().expect("OnceMap lock poisoned").get(key) {
            return Arc::clone(slot);
        }
        let mut map = self.entries.write().expect("OnceMap lock poisoned");
        Arc::clone(map.entry(key.clone()).or_default())
    }
}

impl<K: Eq + Hash + Clone, V> Default for OnceMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn builds_each_key_once() {
        let map: OnceMap<String, usize> = OnceMap::new();
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = map.get_or_init(&"k".to_string(), || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        42
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1);
        assert_eq!(map.len(), 1);
        assert_eq!(*map.get(&"k".to_string()).unwrap(), 42);
        assert!(map.get(&"absent".to_string()).is_none());
    }

    /// Regression test for the build-under-global-lock bug: two *distinct*
    /// keys must be able to build at the same time. Each build rendezvouses
    /// with the other inside its init closure — if builds were serialized
    /// under one lock, neither could observe the other and the wait below
    /// would time out.
    #[test]
    fn distinct_keys_build_concurrently() {
        let map: OnceMap<String, usize> = OnceMap::new();
        let gate = (Mutex::new(0usize), Condvar::new());
        std::thread::scope(|s| {
            for key in ["preset-a", "preset-b"] {
                let map = &map;
                let gate = &gate;
                s.spawn(move || {
                    map.get_or_init(&key.to_string(), || {
                        let (lock, cv) = gate;
                        let mut inside = lock.lock().unwrap();
                        *inside += 1;
                        cv.notify_all();
                        while *inside < 2 {
                            let (guard, timeout) =
                                cv.wait_timeout(inside, Duration::from_secs(10)).unwrap();
                            inside = guard;
                            assert!(
                                !timeout.timed_out(),
                                "distinct-key builds were serialized: the \
                                 second build never started while the first \
                                 was in flight"
                            );
                        }
                        key.len()
                    });
                });
            }
        });
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn empty_and_incomplete_slots_are_not_counted() {
        let map: OnceMap<u32, u32> = OnceMap::new();
        assert!(map.is_empty());
        map.get_or_init(&1, || 10);
        assert_eq!(map.len(), 1);
        assert!(!map.is_empty());
    }
}
