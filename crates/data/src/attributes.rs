//! Synthetic census-attribute fields calibrated to the paper's datasets.
//!
//! The paper joins 2010 US census attributes (`TOTALPOP`, `POP16UP`,
//! `EMPLOYED`, `HOUSEHOLDS`) onto tract polygons. Those tables are not
//! redistributable here, so this module synthesizes statistically faithful
//! stand-ins:
//!
//! * **Marginals** — log-normal fields whose quantiles match what the paper
//!   reports: Table III implies `P(POP16UP ≤ 2000) ≈ 0.12`,
//!   `P(≤ 3500) ≈ 0.62`, `P(≤ 5000) ≈ 0.93` on the 2k dataset; Figure 8
//!   shows `EMPLOYED` positively skewed, mostly `< 4000`, with outliers up
//!   to ~6149.
//! * **Spatial autocorrelation** — attribute ranks follow a smoothed random
//!   field over the contiguity graph (real census attributes cluster
//!   spatially), while the exact marginal distribution is preserved by
//!   rank-remapping.
//! * **Cross-correlations** — `EMPLOYED` correlates with `POP16UP`;
//!   `TOTALPOP` and `HOUSEHOLDS` are derived with noisy demographic ratios.

use emp_core::attr::AttributeTable;
use emp_graph::ContiguityGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};

/// Log-normal parameters for `POP16UP` (see module docs for calibration).
pub const POP16UP_MU: f64 = 8.05;
/// Log-normal sigma for `POP16UP`.
pub const POP16UP_SIGMA: f64 = 0.37;
/// Log-normal parameters for `EMPLOYED`.
pub const EMPLOYED_MU: f64 = 7.5;
/// Log-normal sigma for `EMPLOYED`.
pub const EMPLOYED_SIGMA: f64 = 0.32;

/// Synthesizes the four paper attributes for `n` areas over a contiguity
/// graph. Deterministic in `seed`.
pub fn census_attributes(graph: &ContiguityGraph, seed: u64) -> AttributeTable {
    let n = graph.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77_12B);

    // Smoothed random fields drive the *spatial pattern* of each attribute.
    let base_field = smooth_field(graph, &mut rng, 3);
    let own_field = smooth_field(graph, &mut rng, 3);
    // EMPLOYED shares part of POP16UP's spatial pattern. The coupling is
    // deliberately moderate: the paper's Table III shows that MIN(POP16UP)
    // seeds mostly still find AVG(EMPLOYED)-compatible regions, which
    // requires low-population areas to frequently have mid-range employment.
    let employed_field: Vec<f64> = base_field
        .iter()
        .zip(&own_field)
        .map(|(b, o)| 0.3 * b + 0.7 * o)
        .collect();

    // Marginals are drawn i.i.d. then assigned by field rank, preserving
    // both distribution shape and spatial structure.
    let lognorm_pop16 = LogNormal::new(POP16UP_MU, POP16UP_SIGMA).expect("valid lognormal");
    let lognorm_emp = LogNormal::new(EMPLOYED_MU, EMPLOYED_SIGMA).expect("valid lognormal");
    let pop16up = rank_remap(&base_field, &mut sample(n, &mut rng, &lognorm_pop16));
    let employed = rank_remap(&employed_field, &mut sample(n, &mut rng, &lognorm_emp));

    // TOTALPOP = POP16UP / share-of-16+, share ≈ N(0.78, 0.03).
    let share = Normal::new(0.78, 0.03).expect("valid normal");
    let totalpop: Vec<f64> = pop16up
        .iter()
        .map(|&p| p / f64::clamp(share.sample(&mut rng), 0.6, 0.95))
        .collect();

    // HOUSEHOLDS = TOTALPOP / household-size, size ≈ N(2.8, 0.3).
    let hh_size = Normal::new(2.8, 0.3).expect("valid normal");
    let households: Vec<f64> = totalpop
        .iter()
        .map(|&p| p / f64::clamp(hh_size.sample(&mut rng), 1.5, 4.5))
        .collect();

    let mut table = AttributeTable::new(n);
    table
        .push_column("TOTALPOP", totalpop)
        .expect("fresh column");
    table.push_column("POP16UP", pop16up).expect("fresh column");
    table
        .push_column("EMPLOYED", employed)
        .expect("fresh column");
    table
        .push_column("HOUSEHOLDS", households)
        .expect("fresh column");
    table
}

/// Degenerate attribute layouts for the fuzz generator (`emp-oracle`):
/// shapes real census data never takes but solvers must still survive.
/// Every layout is finite and NaN-free; `Zeros`/`Spiky` keep values
/// non-negative, matching the repo-wide contract that SUM pruning assumes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DegenerateKind {
    /// Every area has the same value (zero pairwise dissimilarity,
    /// AVG/MIN/MAX all collapse to one number).
    Constant(f64),
    /// All zeros: SUM lower bounds become unsatisfiable, heterogeneity is
    /// exactly zero.
    Zeros,
    /// Two-level field: most areas at `low`, every `period`-th at `high`.
    /// Stresses extrema witnesses and tight AVG windows.
    TwoLevel {
        /// Value of the common areas.
        low: f64,
        /// Value of the sparse spikes.
        high: f64,
        /// Spike spacing (`0` is treated as `1`).
        period: usize,
    },
    /// Mostly-zero field with rare large spikes drawn deterministically
    /// from `seed` — a caricature of heavy-tailed census fields.
    Spiky,
}

/// Synthesizes the four paper attribute columns with a degenerate layout
/// instead of the calibrated marginals. Deterministic in `seed`; all
/// columns share the same layout so constraints on any of them hit the
/// degenerate shape.
pub fn degenerate_attributes(
    graph: &ContiguityGraph,
    seed: u64,
    kind: DegenerateKind,
) -> AttributeTable {
    let n = graph.len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE6E);
    let base: Vec<f64> = match kind {
        DegenerateKind::Constant(v) => vec![v; n],
        DegenerateKind::Zeros => vec![0.0; n],
        DegenerateKind::TwoLevel { low, high, period } => {
            let period = period.max(1);
            (0..n)
                .map(|i| if i % period == period - 1 { high } else { low })
                .collect()
        }
        DegenerateKind::Spiky => (0..n)
            .map(|_| {
                if rng.gen::<f64>() < 0.1 {
                    1_000.0 + 9_000.0 * rng.gen::<f64>()
                } else {
                    0.0
                }
            })
            .collect(),
    };
    let mut table = AttributeTable::new(n);
    for name in ["TOTALPOP", "POP16UP", "EMPLOYED", "HOUSEHOLDS"] {
        table.push_column(name, base.clone()).expect("fresh column");
    }
    table
}

fn sample<D: Distribution<f64>>(n: usize, rng: &mut StdRng, dist: &D) -> Vec<f64> {
    (0..n).map(|_| dist.sample(rng)).collect()
}

/// A spatially-smooth scalar field: i.i.d. uniform noise diffused over the
/// contiguity graph for `passes` rounds.
fn smooth_field(graph: &ContiguityGraph, rng: &mut StdRng, passes: usize) -> Vec<f64> {
    let n = graph.len();
    let mut field: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    let mut next = vec![0.0; n];
    for _ in 0..passes {
        for v in 0..n {
            let nbrs = graph.neighbors(v as u32);
            if nbrs.is_empty() {
                next[v] = field[v];
                continue;
            }
            let nb_mean: f64 =
                nbrs.iter().map(|&w| field[w as usize]).sum::<f64>() / nbrs.len() as f64;
            next[v] = 0.5 * field[v] + 0.5 * nb_mean;
        }
        std::mem::swap(&mut field, &mut next);
    }
    field
}

/// Assigns sorted `values` to areas by the rank of `field`, so the output
/// has exactly the distribution of `values` and the spatial pattern of
/// `field`.
fn rank_remap(field: &[f64], values: &mut [f64]) -> Vec<f64> {
    let n = field.len();
    debug_assert_eq!(values.len(), n);
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| field[a].partial_cmp(&field[b]).expect("finite"));
    let mut out = vec![0.0; n];
    for (rank, &area) in order.iter().enumerate() {
        out[area] = values[rank];
    }
    out
}

/// Empirical CDF helper used by calibration tests and the Figure 8
/// reproduction: fraction of values `<= x`.
pub fn ecdf(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
}

/// Moran's-I-style spatial autocorrelation over the contiguity graph
/// (binary weights), used to verify the synthetic fields cluster spatially.
pub fn morans_i(graph: &ContiguityGraph, values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let denom: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let mut num = 0.0;
    let mut w = 0usize;
    for (i, j) in graph.edges() {
        num += 2.0 * (values[i as usize] - mean) * (values[j as usize] - mean);
        w += 2;
    }
    (n as f64 / w as f64) * (num / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_graph(n_side: usize) -> ContiguityGraph {
        ContiguityGraph::lattice(n_side, n_side)
    }

    #[test]
    fn columns_and_determinism() {
        let g = grid_graph(10);
        let a = census_attributes(&g, 42);
        let b = census_attributes(&g, 42);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 100);
        for name in ["TOTALPOP", "POP16UP", "EMPLOYED", "HOUSEHOLDS"] {
            assert!(a.column_index(name).is_some(), "{name} missing");
        }
        let c = census_attributes(&g, 43);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn pop16up_quantiles_match_paper_calibration() {
        // Table III targets on the 2k dataset: ~12% <= 2000, ~62% <= 3500,
        // ~93% <= 5000. Allow generous tolerance for sample noise.
        let g = grid_graph(48); // 2304 areas, close to the 2k dataset
        let t = census_attributes(&g, 7);
        let pop16 = t.column_by_name("POP16UP").unwrap();
        let q2000 = ecdf(pop16, 2000.0);
        let q3500 = ecdf(pop16, 3500.0);
        let q5000 = ecdf(pop16, 5000.0);
        assert!((0.06..=0.20).contains(&q2000), "P(<=2000) = {q2000}");
        assert!((0.52..=0.72).contains(&q3500), "P(<=3500) = {q3500}");
        assert!((0.86..=0.97).contains(&q5000), "P(<=5000) = {q5000}");
    }

    #[test]
    fn employed_distribution_matches_figure8() {
        // Figure 8: positively skewed, most areas below 4000, outliers
        // reaching ~6000+; more than half below 2000 (Figure 9 discussion).
        let g = grid_graph(48);
        let t = census_attributes(&g, 7);
        let emp = t.column_by_name("EMPLOYED").unwrap();
        assert!(ecdf(emp, 4000.0) > 0.95);
        let below_2000 = ecdf(emp, 2000.0);
        assert!(
            (0.45..=0.75).contains(&below_2000),
            "P(<=2000) = {below_2000}"
        );
        let max = emp.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 3500.0, "max = {max}");
        // Positive skew: mean > median.
        let mut sorted = emp.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        let mean = emp.iter().sum::<f64>() / emp.len() as f64;
        assert!(mean > median);
    }

    #[test]
    fn demographic_ratios_hold() {
        let g = grid_graph(20);
        let t = census_attributes(&g, 3);
        let total = t.column_by_name("TOTALPOP").unwrap();
        let pop16 = t.column_by_name("POP16UP").unwrap();
        let hh = t.column_by_name("HOUSEHOLDS").unwrap();
        for i in 0..t.rows() {
            assert!(pop16[i] <= total[i], "POP16UP must not exceed TOTALPOP");
            assert!(hh[i] <= total[i], "households below population");
            assert!(total[i] > 0.0 && hh[i] > 0.0);
        }
    }

    #[test]
    fn fields_are_spatially_autocorrelated() {
        let g = grid_graph(30);
        let t = census_attributes(&g, 5);
        let emp = t.column_by_name("EMPLOYED").unwrap();
        let i = morans_i(&g, emp);
        assert!(i > 0.2, "Moran's I = {i}, expected clear clustering");
        // Sanity: a shuffled copy loses the autocorrelation.
        let mut shuffled = emp.to_vec();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut StdRng::seed_from_u64(1));
        let i_shuffled = morans_i(&g, &shuffled);
        assert!(i_shuffled < i / 2.0, "shuffled I = {i_shuffled} vs {i}");
    }

    #[test]
    fn degenerate_layouts_are_finite_and_deterministic() {
        let g = grid_graph(6);
        for kind in [
            DegenerateKind::Constant(5.0),
            DegenerateKind::Zeros,
            DegenerateKind::TwoLevel {
                low: 1.0,
                high: 100.0,
                period: 5,
            },
            DegenerateKind::Spiky,
        ] {
            let a = degenerate_attributes(&g, 9, kind);
            let b = degenerate_attributes(&g, 9, kind);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert_eq!(a.rows(), 36);
            assert_eq!(a.columns(), 4);
            for col in 0..a.columns() {
                for row in 0..a.rows() {
                    let v = a.value(col, row);
                    assert!(v.is_finite() && v >= 0.0, "{kind:?} gave {v}");
                }
            }
        }
        let zeros = degenerate_attributes(&g, 1, DegenerateKind::Zeros);
        assert_eq!(zeros.sum(0), 0.0);
    }

    #[test]
    fn ecdf_edges() {
        assert_eq!(ecdf(&[], 1.0), 0.0);
        assert_eq!(ecdf(&[1.0, 2.0, 3.0], 2.0), 2.0 / 3.0);
        assert_eq!(ecdf(&[1.0], 0.0), 0.0);
    }

    #[test]
    fn morans_i_of_constant_field_is_zero() {
        let g = grid_graph(5);
        assert_eq!(morans_i(&g, &[3.0; 25]), 0.0);
    }

    #[test]
    fn rank_remap_preserves_distribution() {
        let field = [0.9, 0.1, 0.5, 0.3];
        let mut values = vec![10.0, 40.0, 20.0, 30.0];
        let out = rank_remap(&field, &mut values);
        // Smallest field rank gets smallest value.
        assert_eq!(out, vec![40.0, 10.0, 30.0, 20.0]);
        let mut sorted = out;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sorted, vec![10.0, 20.0, 30.0, 40.0]);
    }
}
