//! Minimal CSV reader/writer for attribute tables.
//!
//! Census attribute tables ship as CSV; this supports the numeric subset the
//! pipeline needs (no quoting — attribute names and numbers never contain
//! commas).

use emp_core::attr::AttributeTable;
use emp_core::error::EmpError;

/// Serializes an attribute table to CSV with a header row.
pub fn to_csv(table: &AttributeTable) -> String {
    let mut out = String::new();
    out.push_str(&table.names().join(","));
    out.push('\n');
    for row in 0..table.rows() {
        for col in 0..table.columns() {
            if col > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", table.value(col, row)));
        }
        out.push('\n');
    }
    out
}

/// Parses an attribute table from CSV text with a header row.
pub fn from_csv(text: &str) -> Result<AttributeTable, EmpError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let Some(header) = lines.next() else {
        return Ok(AttributeTable::new(0));
    };
    let names: Vec<&str> = header.split(',').map(str::trim).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() {
            return Err(EmpError::ConstraintParse {
                message: format!(
                    "CSV row {} has {} cells, expected {}",
                    lineno + 2,
                    cells.len(),
                    names.len()
                ),
            });
        }
        for (col, cell) in cells.iter().enumerate() {
            let v: f64 = cell.parse().map_err(|_| EmpError::ConstraintParse {
                message: format!("CSV row {}: bad number '{cell}'", lineno + 2),
            })?;
            columns[col].push(v);
        }
    }
    let rows = columns.first().map_or(0, Vec::len);
    let mut table = AttributeTable::new(rows);
    for (name, column) in names.iter().zip(columns) {
        table.push_column(*name, column)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut t = AttributeTable::new(3);
        t.push_column("A", vec![1.0, 2.5, 3.0]).unwrap();
        t.push_column("B", vec![10.0, 0.0, 30.5]).unwrap();
        let text = to_csv(&t);
        let back = from_csv(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_and_header_only() {
        let t = from_csv("").unwrap();
        assert_eq!(t.rows(), 0);
        let t = from_csv("A,B\n").unwrap();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.columns(), 2);
    }

    #[test]
    fn rejects_ragged_rows_and_bad_numbers() {
        assert!(from_csv("A,B\n1.0\n").is_err());
        assert!(from_csv("A\nxyz\n").is_err());
        // Negative values violate the attribute-table contract.
        assert!(from_csv("A\n-5\n").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let t = from_csv("A, B\n 1.0 , 2.0 \n").unwrap();
        assert_eq!(t.value(0, 0), 1.0);
        assert_eq!(t.value(1, 0), 2.0);
    }
}
