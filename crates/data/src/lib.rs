//! # emp-data — synthetic census datasets for EMP regionalization
//!
//! The EMP paper evaluates on nine real US-census-tract datasets (1k–50k
//! areas) joined with 2010 census attributes. Those shapefiles and attribute
//! tables cannot be bundled here, so this crate synthesizes statistically
//! faithful substitutes (see `DESIGN.md` for the substitution argument):
//!
//! * [`tessellation`] — brick-wall polygon tessellations with deterministic
//!   vertex jitter (mean contiguity degree ≈ 6 like census tracts), with
//!   optional multi-component "island" layouts;
//! * [`attributes`] — log-normal `TOTALPOP` / `POP16UP` / `EMPLOYED` /
//!   `HOUSEHOLDS` fields calibrated to the quantiles the paper reports, with
//!   spatial autocorrelation and realistic cross-correlations;
//! * [`presets`] — the paper's nine dataset sizes (`"1k"` … `"50k"`), exact
//!   to the area;
//! * [`dataset`] — ties geometry + contiguity + attributes together, with
//!   GeoJSON round-tripping;
//! * [`csv`] — attribute-table CSV I/O;
//! * [`cache`] — a per-entry once-initialization map ([`OnceMap`]) so the
//!   bench harness can build distinct datasets concurrently.
//!
//! ```
//! use emp_data::prelude::*;
//!
//! let spec = TessellationSpec::squareish(100, 7);
//! let dataset = Dataset::generate("demo", &spec);
//! let instance = dataset.to_instance().unwrap();
//! assert_eq!(instance.len(), 100);
//! ```

#![warn(missing_docs)]

pub mod attributes;
pub mod cache;
pub mod csv;
pub mod dataset;
pub mod presets;
pub mod tessellation;

pub use attributes::{census_attributes, degenerate_attributes, DegenerateKind};
pub use cache::OnceMap;
pub use dataset::{Dataset, DISSIMILARITY_ATTR};
pub use presets::{build_preset, build_sized, preset, Preset, DEFAULT_PRESET, PRESETS};
pub use tessellation::TessellationSpec;

/// Common imports for dataset users.
pub mod prelude {
    pub use crate::dataset::{Dataset, DISSIMILARITY_ATTR};
    pub use crate::presets::{build_preset, build_sized, PRESETS};
    pub use crate::tessellation::TessellationSpec;
}
