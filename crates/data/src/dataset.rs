//! Complete synthetic datasets: geometry + contiguity + attributes.

use crate::attributes::census_attributes;
use crate::tessellation::{generate, TessellationSpec};
use emp_core::attr::AttributeTable;
use emp_core::error::EmpError;
use emp_core::instance::EmpInstance;
use emp_geo::contiguity::{contiguity_hashed, edges_to_adjacency, ContiguityKind};
use emp_geo::geojson::{read_feature_collection, write_feature_collection, AreaFeature};
use emp_geo::polygon::MultiPolygon;
use emp_geo::GeoError;
use emp_graph::ContiguityGraph;
use std::collections::BTreeMap;

/// The dissimilarity attribute used throughout the paper's evaluation.
pub const DISSIMILARITY_ATTR: &str = "HOUSEHOLDS";

/// A dataset ready for EMP: polygons, derived contiguity graph, and the four
/// census-style attributes.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. `"2k"`).
    pub name: String,
    /// Area geometries.
    pub areas: Vec<MultiPolygon>,
    /// Rook-contiguity graph derived from the geometries.
    pub graph: ContiguityGraph,
    /// Attribute table (`TOTALPOP`, `POP16UP`, `EMPLOYED`, `HOUSEHOLDS`).
    pub attributes: AttributeTable,
}

impl Dataset {
    /// Generates a dataset from a tessellation spec; attributes use the same
    /// seed.
    pub fn generate(name: impl Into<String>, spec: &TessellationSpec) -> Dataset {
        let areas = generate(spec);
        let graph = derive_graph(&areas);
        let attributes = census_attributes(&graph, spec.seed);
        Dataset {
            name: name.into(),
            areas,
            graph,
            attributes,
        }
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Converts into an [`EmpInstance`] with the paper's default
    /// dissimilarity attribute (`HOUSEHOLDS`).
    pub fn to_instance(&self) -> Result<EmpInstance, EmpError> {
        self.to_instance_with(DISSIMILARITY_ATTR)
    }

    /// Converts into an [`EmpInstance`] with an explicit dissimilarity
    /// attribute.
    pub fn to_instance_with(&self, dissimilarity: &str) -> Result<EmpInstance, EmpError> {
        EmpInstance::new(self.graph.clone(), self.attributes.clone(), dissimilarity)
    }

    /// Serializes to a GeoJSON `FeatureCollection` (geometry + attributes).
    pub fn to_geojson(&self) -> String {
        let names = self.attributes.names().to_vec();
        let features: Vec<AreaFeature> = self
            .areas
            .iter()
            .enumerate()
            .map(|(i, geom)| {
                let mut properties = BTreeMap::new();
                for (ci, name) in names.iter().enumerate() {
                    properties.insert(name.clone(), self.attributes.value(ci, i));
                }
                AreaFeature {
                    geometry: geom.clone(),
                    properties,
                }
            })
            .collect();
        write_feature_collection(&features)
    }

    /// Loads a dataset from GeoJSON text, re-deriving contiguity from the
    /// geometry. All features must carry the same numeric properties.
    pub fn from_geojson(name: impl Into<String>, text: &str) -> Result<Dataset, GeoError> {
        let features = read_feature_collection(text)?;
        let areas: Vec<MultiPolygon> = features.iter().map(|f| f.geometry.clone()).collect();
        let graph = derive_graph(&areas);
        // Column set = properties of the first feature.
        let mut attributes = AttributeTable::new(areas.len());
        if let Some(first) = features.first() {
            for name in first.properties.keys() {
                let column: Vec<f64> = features
                    .iter()
                    .map(|f| f.properties.get(name).copied().unwrap_or(0.0))
                    .collect();
                attributes
                    .push_column(name.clone(), column)
                    .map_err(|e| GeoError::GeoJson {
                        message: format!("attribute error: {e}"),
                    })?;
            }
        }
        Ok(Dataset {
            name: name.into(),
            areas,
            graph,
            attributes,
        })
    }
}

/// The shapefile sidecar trio: `.shp` geometry, `.shx` index, `.dbf`
/// attributes.
#[derive(Clone, Debug)]
pub struct ShapefileBundle {
    /// Geometry file bytes.
    pub shp: Vec<u8>,
    /// Index file bytes.
    pub shx: Vec<u8>,
    /// Attribute table bytes.
    pub dbf: Vec<u8>,
}

impl Dataset {
    /// Serializes the dataset to an ESRI shapefile bundle (the paper's
    /// native input format).
    pub fn to_shapefile(&self) -> Result<ShapefileBundle, GeoError> {
        let (shp, shx) = emp_geo::shapefile::write_shp(&self.areas);
        let table = emp_geo::dbf::DbfTable {
            names: self.attributes.names().to_vec(),
            columns: (0..self.attributes.columns())
                .map(|c| self.attributes.column(c).to_vec())
                .collect(),
        };
        let dbf = emp_geo::dbf::write_dbf(&table)?;
        Ok(ShapefileBundle { shp, shx, dbf })
    }

    /// Loads a dataset from shapefile bytes (`.shp` + `.dbf`), re-deriving
    /// contiguity from the geometry. The `.shx` index is not needed.
    pub fn from_shapefile(
        name: impl Into<String>,
        shp: &[u8],
        dbf: &[u8],
    ) -> Result<Dataset, GeoError> {
        let areas = emp_geo::shapefile::read_shp(shp)?;
        let table = emp_geo::dbf::read_dbf(dbf)?;
        if table.rows() != areas.len() {
            return Err(GeoError::Io {
                message: format!(
                    "shapefile has {} shapes but dbf has {} records",
                    areas.len(),
                    table.rows()
                ),
            });
        }
        let graph = derive_graph(&areas);
        let mut attributes = AttributeTable::new(areas.len());
        for (name, column) in table.names.iter().zip(table.columns) {
            attributes
                .push_column(name.clone(), column)
                .map_err(|e| GeoError::Io {
                    message: format!("attribute error: {e}"),
                })?;
        }
        Ok(Dataset {
            name: name.into(),
            areas,
            graph,
            attributes,
        })
    }
}

/// Derives the rook-contiguity graph from area geometries.
pub fn derive_graph(areas: &[MultiPolygon]) -> ContiguityGraph {
    let edges = contiguity_hashed(areas, ContiguityKind::Rook);
    let adjacency = edges_to_adjacency(areas.len(), &edges);
    ContiguityGraph::from_adjacency(adjacency).expect("derived adjacency is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_graph::connected_components;

    fn small() -> Dataset {
        Dataset::generate("test", &TessellationSpec::squareish(60, 4))
    }

    #[test]
    fn generation_is_consistent() {
        let d = small();
        assert_eq!(d.len(), 60);
        assert_eq!(d.graph.len(), 60);
        assert_eq!(d.attributes.rows(), 60);
        assert_eq!(connected_components(&d.graph).count(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn converts_to_instance() {
        let d = small();
        let inst = d.to_instance().unwrap();
        assert_eq!(inst.len(), 60);
        // Dissimilarity is HOUSEHOLDS.
        let hh = d.attributes.column_by_name("HOUSEHOLDS").unwrap();
        assert_eq!(inst.dissimilarity(), hh);
        assert!(d.to_instance_with("NOPE").is_err());
    }

    #[test]
    fn geojson_roundtrip_preserves_everything() {
        let d = small();
        let text = d.to_geojson();
        let back = Dataset::from_geojson("back", &text).unwrap();
        assert_eq!(back.len(), d.len());
        // Graph re-derived from geometry matches.
        assert_eq!(back.graph, d.graph);
        // Attribute values survive (column order may differ: BTreeMap sorts).
        for name in d.attributes.names() {
            let orig = d.attributes.column_by_name(name).unwrap();
            let new = back.attributes.column_by_name(name).unwrap();
            for (a, b) in orig.iter().zip(new) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn from_geojson_rejects_garbage() {
        assert!(Dataset::from_geojson("x", "{}").is_err());
    }

    #[test]
    fn shapefile_roundtrip_preserves_everything() {
        let d = small();
        let bundle = d.to_shapefile().unwrap();
        let back = Dataset::from_shapefile("back", &bundle.shp, &bundle.dbf).unwrap();
        assert_eq!(back.len(), d.len());
        // Contiguity re-derived from the written geometry matches.
        assert_eq!(back.graph, d.graph);
        // Attribute values survive at dbf precision (3 decimals).
        for name in d.attributes.names() {
            let orig = d.attributes.column_by_name(name).unwrap();
            let new = back.attributes.column_by_name(name).unwrap();
            for (a, b) in orig.iter().zip(new) {
                assert!((a - b).abs() < 1e-3, "{name}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn shapefile_rejects_mismatched_sidecars() {
        let d = small();
        let other = Dataset::generate("other", &TessellationSpec::squareish(10, 1));
        let bundle = d.to_shapefile().unwrap();
        let wrong_dbf = other.to_shapefile().unwrap().dbf;
        assert!(Dataset::from_shapefile("x", &bundle.shp, &wrong_dbf).is_err());
    }
}
