//! Property tests: the multithreaded contiguity paths in `emp-geo` produce
//! exactly the sequential edge sets on the tessellations `emp-data` actually
//! generates — jittered single-component brick walls and multi-island
//! layouts — for arbitrary worker counts.
//!
//! This is the determinism contract the parallel harness leans on: the edge
//! list a dataset is built from must not depend on `--jobs`.

use emp_data::tessellation::{generate_jobs, TessellationSpec};
use emp_geo::contiguity::{contiguity_hashed_jobs, contiguity_robust_jobs, ContiguityKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Hashed contiguity: sharded parallel extraction == sequential HashMap
    /// path, rook and queen, on jittered multi-island tessellations.
    #[test]
    fn parallel_hashed_matches_sequential(
        n in 40usize..200,
        islands in 1usize..4,
        seed in 0u64..1_000_000,
        jitter_pct in 0usize..30,
        jobs in 2usize..9,
    ) {
        let spec = TessellationSpec {
            jitter: jitter_pct as f64 / 100.0,
            ..TessellationSpec::islands(n, islands, seed)
        };
        let areas = generate_jobs(&spec, 1);
        for kind in [ContiguityKind::Rook, ContiguityKind::Queen] {
            let seq = contiguity_hashed_jobs(&areas, kind, 1);
            let par = contiguity_hashed_jobs(&areas, kind, jobs);
            prop_assert_eq!(
                par, seq,
                "hashed {:?} diverged: n={} islands={} jobs={}",
                kind, n, islands, jobs
            );
        }
    }

    /// Robust contiguity: chunked parallel candidate evaluation == the
    /// sequential filter, rook and queen.
    #[test]
    fn parallel_robust_matches_sequential(
        n in 30usize..120,
        islands in 1usize..4,
        seed in 0u64..1_000_000,
        jitter_pct in 0usize..30,
        jobs in 2usize..9,
    ) {
        let spec = TessellationSpec {
            jitter: jitter_pct as f64 / 100.0,
            ..TessellationSpec::islands(n, islands, seed)
        };
        let areas = generate_jobs(&spec, 1);
        for kind in [ContiguityKind::Rook, ContiguityKind::Queen] {
            let seq = contiguity_robust_jobs(&areas, kind, 1);
            let par = contiguity_robust_jobs(&areas, kind, jobs);
            prop_assert_eq!(
                par, seq,
                "robust {:?} diverged: n={} islands={} jobs={}",
                kind, n, islands, jobs
            );
        }
    }

    /// Tessellation generation itself is thread-count invariant, and the
    /// hashed/robust strategies agree on clean (vertex-shared) tessellations
    /// regardless of worker count.
    #[test]
    fn generation_and_strategies_agree_across_jobs(
        n in 40usize..140,
        islands in 1usize..3,
        seed in 0u64..1_000_000,
        jobs in 2usize..6,
    ) {
        let spec = TessellationSpec::islands(n, islands, seed);
        let areas = generate_jobs(&spec, 1);
        prop_assert_eq!(&generate_jobs(&spec, jobs), &areas);
        let hashed = contiguity_hashed_jobs(&areas, ContiguityKind::Rook, jobs);
        let robust = contiguity_robust_jobs(&areas, ContiguityKind::Rook, jobs);
        prop_assert_eq!(hashed, robust);
    }
}
