//! Property tests of articulation-point computation under *evolving* member
//! sets — the access pattern of the incremental tabu neighborhood, which
//! reuses one `ArticulationScratch` across a whole search and recomputes a
//! region's articulation points after every donation/removal.
//!
//! The single-shot Tarjan-vs-BFS-oracle test lives in `graph_properties.rs`;
//! here the member set mutates step by step (removals of safe vertices,
//! additions of frontier vertices) and after every mutation the
//! scratch-reusing path must agree with both the allocating path and the
//! BFS oracle. Any state leaking between `articulation_points_into` calls
//! would surface as a divergence mid-sequence.

use emp_graph::articulation::{
    articulation_points, articulation_points_into, removable_areas, ArticulationScratch,
};
use emp_graph::subgraph::{frontier, is_connected_after_removal, is_connected_subset};
use emp_graph::ContiguityGraph;
use proptest::prelude::*;

/// Random connected seed region: BFS ball around a start vertex.
fn region_around(graph: &ContiguityGraph, start: u32, size: usize) -> Vec<u32> {
    let mut members = vec![start];
    let mut i = 0;
    while members.len() < size && i < members.len() {
        let v = members[i];
        for &w in graph.neighbors(v) {
            if !members.contains(&w) && members.len() < size {
                members.push(w);
            }
        }
        i += 1;
    }
    members
}

/// BFS oracle: `v` is an articulation point of a connected member set iff
/// removing it disconnects the rest.
fn oracle_articulations(graph: &ContiguityGraph, members: &[u32]) -> Vec<u32> {
    if members.len() <= 1 {
        return Vec::new();
    }
    let mut arts: Vec<u32> = members
        .iter()
        .copied()
        .filter(|&v| !is_connected_after_removal(graph, members, v))
        .collect();
    arts.sort_unstable();
    arts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scratch_reuse_stays_fresh_across_mutation_sequences(
        w in 3usize..8,
        h in 3usize..8,
        start in 0usize..64,
        size in 2usize..24,
        ops in prop::collection::vec((any::<bool>(), any::<u32>()), 30),
    ) {
        let graph = ContiguityGraph::lattice(w, h);
        let start = (start % (w * h)) as u32;
        let mut members = region_around(&graph, start, size.min(w * h));
        let mut scratch = ArticulationScratch::default();
        let mut reused = Vec::new();

        for &(grow, pick) in &ops {
            // Check all three computations agree on the current set.
            articulation_points_into(&graph, &members, &mut scratch, &mut reused);
            let fresh = articulation_points(&graph, &members);
            prop_assert_eq!(&reused, &fresh, "scratch reuse diverged on {:?}", members);
            prop_assert_eq!(&fresh, &oracle_articulations(&graph, &members));
            let removable = removable_areas(&graph, &members);
            for &v in &removable {
                prop_assert!(is_connected_after_removal(&graph, &members, v));
            }
            prop_assert_eq!(removable.len() + fresh.len(), if members.len() > 1 { members.len() } else { 0 });

            // Mutate: add a frontier vertex or remove a safe member —
            // exactly how regions evolve under tabu donations.
            if grow {
                let f = frontier(&graph, &members);
                if f.is_empty() {
                    continue;
                }
                members.push(f[pick as usize % f.len()]);
            } else {
                if removable.is_empty() {
                    continue;
                }
                let victim = removable[pick as usize % removable.len()];
                members.retain(|&v| v != victim);
            }
            prop_assert!(is_connected_subset(&graph, &members));
        }
    }

    #[test]
    fn articulation_of_multi_component_sets_is_per_component(
        w in 3usize..7,
        h in 3usize..7,
        s1 in 0usize..49,
        s2 in 0usize..49,
        size in 1usize..8,
    ) {
        // The cache is also queried for regions that momentarily consist of
        // multiple components (never created by the solver, but the function
        // contract covers it): articulation points must be the union over
        // components.
        let graph = ContiguityGraph::lattice(w, h);
        let n = w * h;
        let a = region_around(&graph, (s1 % n) as u32, size);
        let b = region_around(&graph, (s2 % n) as u32, size);
        let mut union: Vec<u32> = a.iter().chain(&b).copied().collect();
        union.sort_unstable();
        union.dedup();
        let got = articulation_points(&graph, &union);
        // Oracle on the union: v is an articulation point iff removing it
        // increases the number of connected components.
        let base_count = component_count(&graph, &union);
        for &v in &union {
            let rest: Vec<u32> = union.iter().copied().filter(|&u| u != v).collect();
            let split = component_count(&graph, &rest) > base_count;
            let is_art = got.binary_search(&v).is_ok();
            prop_assert_eq!(is_art, split, "vertex {} in {:?}", v, union);
        }
    }
}

/// Number of connected components of the induced subgraph.
fn component_count(graph: &ContiguityGraph, members: &[u32]) -> usize {
    let mut remaining: Vec<u32> = members.to_vec();
    let mut count = 0;
    while let Some(&seed) = remaining.first() {
        count += 1;
        let mut stack = vec![seed];
        let mut comp = vec![seed];
        while let Some(v) = stack.pop() {
            for &nb in graph.neighbors(v) {
                if remaining.contains(&nb) && !comp.contains(&nb) {
                    comp.push(nb);
                    stack.push(nb);
                }
            }
        }
        remaining.retain(|v| !comp.contains(v));
    }
    count
}
