//! Property tests for the connectivity machinery: articulation points vs a
//! BFS oracle on random induced subgraphs.

use emp_graph::articulation::{articulation_points, removable_areas};
use emp_graph::subgraph::{frontier, is_connected_after_removal, is_connected_subset};
use emp_graph::{connected_components, ContiguityGraph};
use proptest::prelude::*;

/// Random connected-ish region: BFS ball around a start vertex.
fn region_around(graph: &ContiguityGraph, start: u32, size: usize) -> Vec<u32> {
    let mut members = vec![start];
    let mut i = 0;
    while members.len() < size && i < members.len() {
        let v = members[i];
        for &w in graph.neighbors(v) {
            if !members.contains(&w) && members.len() < size {
                members.push(w);
            }
        }
        i += 1;
    }
    members
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn articulation_matches_bfs_oracle(
        w in 2usize..8,
        h in 2usize..8,
        start in 0usize..64,
        size in 1usize..30,
    ) {
        let graph = ContiguityGraph::lattice(w, h);
        let start = (start % (w * h)) as u32;
        let members = region_around(&graph, start, size.min(w * h));
        let arts = articulation_points(&graph, &members);
        let removable = removable_areas(&graph, &members);
        for &v in &members {
            let oracle_safe = is_connected_after_removal(&graph, &members, v);
            let is_art = arts.binary_search(&v).is_ok();
            if members.len() > 1 {
                prop_assert_eq!(is_art, !oracle_safe, "vertex {} in {:?}", v, members);
                prop_assert_eq!(removable.binary_search(&v).is_ok(), oracle_safe);
            } else {
                prop_assert!(removable.is_empty());
            }
        }
    }

    #[test]
    fn frontier_is_exactly_outside_neighbors(
        w in 2usize..7,
        h in 2usize..7,
        start in 0usize..49,
        size in 1usize..20,
    ) {
        let graph = ContiguityGraph::lattice(w, h);
        let start = (start % (w * h)) as u32;
        let members = region_around(&graph, start, size.min(w * h));
        let f = frontier(&graph, &members);
        for &v in &f {
            prop_assert!(!members.contains(&v));
            prop_assert!(graph.neighbors(v).iter().any(|nb| members.contains(nb)));
        }
        // Completeness: every outside neighbor is in the frontier.
        for v in 0..(w * h) as u32 {
            if !members.contains(&v)
                && graph.neighbors(v).iter().any(|nb| members.contains(nb))
            {
                prop_assert!(f.binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn bfs_balls_are_connected(
        w in 2usize..8,
        h in 2usize..8,
        start in 0usize..64,
        size in 1usize..40,
    ) {
        let graph = ContiguityGraph::lattice(w, h);
        let start = (start % (w * h)) as u32;
        let members = region_around(&graph, start, size.min(w * h));
        prop_assert!(is_connected_subset(&graph, &members));
    }

    #[test]
    fn random_edge_graphs_components_partition_vertices(
        n in 1usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| a != b && (a as usize) < n && (b as usize) < n)
            .collect();
        let graph = ContiguityGraph::from_edges(n, &edges).unwrap();
        let comps = connected_components(&graph);
        // Every vertex appears in exactly one component.
        let mut seen = vec![0usize; n];
        for members in &comps.members {
            prop_assert!(is_connected_subset(&graph, members));
            for &v in members {
                seen[v as usize] += 1;
                prop_assert_eq!(comps.label[v as usize] as usize,
                    comps.members.iter().position(|m| m.contains(&v)).unwrap());
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
