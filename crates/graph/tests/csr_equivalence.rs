//! Property tests pinning the CSR constructors to a straightforward
//! nested-`Vec` reference implementation: same neighbor sets, same error
//! cases, for both `from_edges` and `from_adjacency`. Plus epoch-rollover
//! coverage for `VisitScratch` (the u32 stamp wraparound path).

use emp_graph::{ContiguityGraph, GraphError, VisitScratch};
use proptest::prelude::*;

/// Reference `from_edges`: validate, symmetrize into nested Vecs, sort,
/// dedup. Mirrors the pre-CSR representation the solver used to hold.
fn reference_from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Vec<Vec<u32>>, GraphError> {
    for &(i, j) in edges {
        if i == j {
            return Err(GraphError::SelfLoop { vertex: i });
        }
        if i as usize >= n || j as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: i.max(j),
                n,
            });
        }
    }
    let mut adj = vec![Vec::new(); n];
    for &(i, j) in edges {
        adj[i as usize].push(j);
        adj[j as usize].push(i);
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }
    Ok(adj)
}

/// Reference `from_adjacency`: validate, symmetrize, sort, dedup.
fn reference_from_adjacency(adjacency: &[Vec<u32>]) -> Result<Vec<Vec<u32>>, GraphError> {
    let n = adjacency.len();
    for (i, list) in adjacency.iter().enumerate() {
        for &j in list {
            if j as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: j, n });
            }
            if j as usize == i {
                return Err(GraphError::SelfLoop { vertex: i as u32 });
            }
        }
    }
    let mut adj = vec![Vec::new(); n];
    for (i, list) in adjacency.iter().enumerate() {
        for &j in list {
            adj[i].push(j);
            adj[j as usize].push(i as u32);
        }
    }
    for row in &mut adj {
        row.sort_unstable();
        row.dedup();
    }
    Ok(adj)
}

fn assert_same_graph(graph: &ContiguityGraph, reference: &[Vec<u32>]) {
    assert_eq!(graph.len(), reference.len());
    for (v, row) in reference.iter().enumerate() {
        assert_eq!(
            graph.neighbors(v as u32),
            row.as_slice(),
            "neighbor row of vertex {v}"
        );
        assert_eq!(graph.degree(v as u32), row.len());
    }
    let edges: usize = reference.iter().map(Vec::len).sum::<usize>() / 2;
    assert_eq!(graph.edge_count(), edges);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Valid edge lists (in-range, no self-loops, duplicates allowed):
    /// CSR rows equal the sorted-deduped nested-Vec reference.
    #[test]
    fn from_edges_matches_reference(
        n in 1usize..48,
        raw in prop::collection::vec((0u32..48, 0u32..48), 0..120),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .filter(|&(a, b)| a != b && (a as usize) < n && (b as usize) < n)
            .collect();
        let graph = ContiguityGraph::from_edges(n, &edges).unwrap();
        let reference = reference_from_edges(n, &edges).unwrap();
        assert_same_graph(&graph, &reference);
    }

    /// Arbitrary edge lists including invalid ones: the CSR constructor and
    /// the reference return the *same* result, errors included (same variant,
    /// same offending vertex — first bad edge wins in both).
    #[test]
    fn from_edges_matches_reference_errors_included(
        n in 0usize..16,
        edges in prop::collection::vec((0u32..20, 0u32..20), 0..40),
    ) {
        let got = ContiguityGraph::from_edges(n, &edges);
        let expected = reference_from_edges(n, &edges);
        match (got, expected) {
            (Ok(graph), Ok(reference)) => assert_same_graph(&graph, &reference),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "CSR {:?} vs reference {:?}", a.map(|g| g.len()), b.map(|r| r.len())),
        }
    }

    /// Asymmetric, unsorted, duplicated adjacency input: `from_adjacency`
    /// normalizes exactly like the reference (symmetrize + sort + dedup).
    #[test]
    fn from_adjacency_matches_reference(
        rows in prop::collection::vec(prop::collection::vec(0u32..24, 0..8), 0..24),
    ) {
        let got = ContiguityGraph::from_adjacency(rows.clone());
        let expected = reference_from_adjacency(&rows);
        match (got, expected) {
            (Ok(graph), Ok(reference)) => assert_same_graph(&graph, &reference),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "CSR {:?} vs reference {:?}", a.map(|g| g.len()), b.map(|r| r.len())),
        }
    }

    /// The two constructors agree with each other when fed the same graph.
    #[test]
    fn from_edges_and_from_adjacency_agree(
        n in 1usize..32,
        raw in prop::collection::vec((0u32..32, 0u32..32), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .filter(|&(a, b)| a != b && (a as usize) < n && (b as usize) < n)
            .collect();
        let via_edges = ContiguityGraph::from_edges(n, &edges).unwrap();
        let mut adj = vec![Vec::new(); n];
        for &(i, j) in &edges {
            adj[i as usize].push(j); // one direction only: constructor symmetrizes
        }
        let via_adjacency = ContiguityGraph::from_adjacency(adj).unwrap();
        prop_assert_eq!(via_edges, via_adjacency);
    }

    /// Marks survive an epoch wraparound: force the stamp near `u32::MAX`,
    /// then run several rounds across the rollover and check that each round
    /// still sees exactly its own marks (stale stamps never leak through).
    #[test]
    fn epoch_rollover_preserves_mark_semantics(
        n in 1usize..40,
        marks in prop::collection::vec(0u32..40, 1..20),
        rounds in 2usize..6,
    ) {
        let marks: Vec<u32> = marks.into_iter().filter(|&v| (v as usize) < n).collect();
        let mut scratch = VisitScratch::new();

        // Seed some stamps at a normal epoch, then jump next to the wrap.
        scratch.begin(n);
        for &v in &marks {
            scratch.mark(v);
        }
        scratch.force_epoch_near_max();
        prop_assert_eq!(scratch.rollovers(), 0);

        let mut wrapped = false;
        for round in 0..rounds {
            scratch.begin(n); // round 1 lands on u32::MAX, round 2 wraps
            wrapped |= scratch.rollovers() > 0;
            for v in 0..n as u32 {
                prop_assert!(!scratch.is_marked(v), "stale mark on {} in round {}", v, round);
            }
            for (idx, &v) in marks.iter().enumerate() {
                let fresh = scratch.mark(v);
                prop_assert_eq!(fresh, !marks[..idx].contains(&v), "mark({v})");
                prop_assert!(scratch.is_marked(v));
            }
        }
        prop_assert!(wrapped, "test must actually cross the wraparound");
        prop_assert_eq!(scratch.rollovers(), 1, "exactly one zero-fill");
    }

    /// `unmark` stays sound immediately after a rollover zero-fill (epoch 1:
    /// unmark writes epoch 0, which must not read as marked).
    #[test]
    fn unmark_sound_across_rollover(v in 0u32..16) {
        let mut scratch = VisitScratch::new();
        scratch.begin(16);
        scratch.force_epoch_near_max();
        scratch.begin(16); // u32::MAX
        scratch.begin(16); // wraps: zero-fill, epoch restarts at 1
        prop_assert_eq!(scratch.rollovers(), 1);
        prop_assert!(scratch.mark(v));
        scratch.unmark(v);
        prop_assert!(!scratch.is_marked(v));
        prop_assert!(scratch.mark(v), "unmarked vertex re-marks as fresh");
    }
}
