//! Connected components of the whole contiguity graph.
//!
//! EMP explicitly supports datasets with multiple connected components
//! (unlike the original MP-regions formulation), so component analysis is a
//! first-class operation.

use crate::graph::ContiguityGraph;
use crate::scratch::VisitScratch;
use crate::traversal::bfs_visit;

/// Component labeling of every vertex plus the member lists per component.
#[derive(Clone, Debug, PartialEq)]
pub struct Components {
    /// `label[v]` is the component index of vertex `v`.
    pub label: Vec<u32>,
    /// `members[c]` lists the vertices of component `c`, sorted ascending.
    pub members: Vec<Vec<u32>>,
}

impl Components {
    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest(&self) -> usize {
        self.members.iter().map(|m| m.len()).max().unwrap_or(0)
    }
}

/// Computes connected components with an iterative BFS.
pub fn connected_components(graph: &ContiguityGraph) -> Components {
    let n = graph.len();
    let mut label = vec![u32::MAX; n];
    let mut members: Vec<Vec<u32>> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();
    for start in 0..n as u32 {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let c = members.len() as u32;
        let mut comp = Vec::new();
        label[start as usize] = c;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            comp.push(v);
            for &w in graph.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = c;
                    queue.push(w);
                }
            }
        }
        comp.sort_unstable();
        members.push(comp);
    }
    Components { label, members }
}

/// Whether the whole graph is connected (true for the empty graph).
pub fn is_connected(graph: &ContiguityGraph) -> bool {
    let mut visited = VisitScratch::with_capacity(graph.len());
    let mut queue = Vec::new();
    is_connected_with(graph, &mut visited, &mut queue)
}

/// Allocation-free variant of [`is_connected`] reusing caller buffers.
pub fn is_connected_with(
    graph: &ContiguityGraph,
    visited: &mut VisitScratch,
    queue: &mut Vec<u32>,
) -> bool {
    graph.is_empty() || bfs_visit(graph, 0, visited, queue, |_| {}) == graph.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_lattice() {
        let g = ContiguityGraph::lattice(4, 4);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.largest(), 16);
        assert!(is_connected(&g));
    }

    #[test]
    fn two_components() {
        let g = ContiguityGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 2);
        assert_eq!(c.members[0], vec![0, 1, 2]);
        assert_eq!(c.members[1], vec![3, 4]);
        assert_eq!(c.label[3], c.label[4]);
        assert_ne!(c.label[0], c.label[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = ContiguityGraph::from_edges(3, &[]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count(), 3);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = ContiguityGraph::from_edges(0, &[]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count(), 0);
    }
}
