//! Reusable, allocation-free visited marking for graph traversals.
//!
//! Every traversal needs a "have I seen this vertex?" set. Allocating (or
//! zero-filling) a `vec![false; n]` per call dominates the cost of the small
//! subgraph walks FaCT performs millions of times. [`VisitScratch`] replaces
//! the boolean vector with an epoch-stamped `Vec<u32>`: starting a new round
//! is a single counter increment, and a vertex is visited iff its stamp equals
//! the current epoch. The stamp array is only zero-filled when the 32-bit
//! epoch wraps around (once every ~4.3 billion rounds), which callers can
//! monitor via [`VisitScratch::rollovers`].

/// Epoch-stamped visited set over dense `u32` ids.
///
/// ```
/// use emp_graph::VisitScratch;
///
/// let mut visited = VisitScratch::new();
/// visited.begin(10);
/// assert!(visited.mark(3)); // newly marked
/// assert!(!visited.mark(3)); // already marked this round
/// visited.begin(10); // O(1): nothing to clear
/// assert!(!visited.is_marked(3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct VisitScratch {
    stamp: Vec<u32>,
    epoch: u32,
    rollovers: u64,
}

impl VisitScratch {
    /// An empty scratch; the stamp array grows on first [`begin`](Self::begin).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for a domain of `n` ids.
    pub fn with_capacity(n: usize) -> Self {
        VisitScratch {
            stamp: vec![0; n],
            epoch: 0,
            rollovers: 0,
        }
    }

    /// Starts a new visitation round over ids `0..n`. O(1) except when the
    /// stamp array must grow or the epoch wraps around.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
            self.rollovers += 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Marks `v` as visited. Returns `true` if `v` was not yet marked in the
    /// current round.
    #[inline]
    pub fn mark(&mut self, v: u32) -> bool {
        let slot = &mut self.stamp[v as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `v` has been marked in the current round.
    #[inline]
    pub fn is_marked(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }

    /// Unmarks `v` in the current round (used for "set minus one element"
    /// membership tests without restarting the round).
    #[inline]
    pub fn unmark(&mut self, v: u32) {
        // Epoch 0 never equals the live epoch: `begin` starts at 1.
        self.stamp[v as usize] = self.epoch.wrapping_sub(1);
    }

    /// How many times the 32-bit epoch wrapped and forced a full zero-fill.
    /// Exposed so solvers can report it as an observability counter.
    #[inline]
    pub fn rollovers(&self) -> u64 {
        self.rollovers
    }

    /// Forces the epoch close to the wraparound point (test hook for
    /// exercising rollover behaviour without 4.3 billion rounds).
    pub fn force_epoch_near_max(&mut self) {
        self.epoch = u32::MAX - 1;
    }
}

/// Shared buffers for subset-connectivity and frontier queries: a membership
/// set, a visited set, and a work stack. One instance serves all the
/// subgraph helpers in [`crate::subgraph`].
#[derive(Clone, Debug, Default)]
pub struct SubsetScratch {
    /// Which vertices belong to the queried subset this round.
    pub(crate) in_set: VisitScratch,
    /// Which subset vertices the walk has reached.
    pub(crate) visited: VisitScratch,
    /// DFS/BFS work stack of vertex ids.
    pub(crate) stack: Vec<u32>,
}

impl SubsetScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total epoch rollovers across the contained visit sets.
    pub fn rollovers(&self) -> u64 {
        self.in_set.rollovers() + self.visited.rollovers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_is_per_round() {
        let mut s = VisitScratch::new();
        s.begin(4);
        assert!(s.mark(0));
        assert!(s.mark(3));
        assert!(!s.mark(0));
        assert!(s.is_marked(3));
        assert!(!s.is_marked(1));
        s.begin(4);
        assert!(!s.is_marked(0));
        assert!(s.mark(0));
    }

    #[test]
    fn grows_to_larger_domains() {
        let mut s = VisitScratch::new();
        s.begin(2);
        s.mark(1);
        s.begin(8);
        assert!(!s.is_marked(7));
        assert!(s.mark(7));
    }

    #[test]
    fn unmark_removes_from_round() {
        let mut s = VisitScratch::new();
        s.begin(4);
        s.mark(2);
        s.unmark(2);
        assert!(!s.is_marked(2));
        assert!(s.mark(2));
    }

    #[test]
    fn epoch_rollover_clears_stale_stamps() {
        let mut s = VisitScratch::new();
        s.begin(4);
        s.mark(1);
        s.force_epoch_near_max();
        // Next begin hits u32::MAX, the one after wraps and zero-fills.
        s.begin(4);
        assert_eq!(s.rollovers(), 0);
        s.mark(2);
        s.begin(4);
        assert_eq!(s.rollovers(), 1);
        assert!(!s.is_marked(1));
        assert!(!s.is_marked(2));
        assert!(s.mark(2));
        // Subsequent rounds behave normally.
        s.begin(4);
        assert!(!s.is_marked(2));
    }
}
