//! Articulation points (cut vertices) of induced subgraphs.
//!
//! A region's articulation points are exactly the areas whose removal would
//! disconnect it. Computing them once per region (O(V + E) Tarjan) lets the
//! local-search phase answer "is this move contiguity-safe?" in O(1) instead
//! of a BFS per candidate move — one of the design choices benchmarked as an
//! ablation (see DESIGN.md §4.2).

use crate::graph::ContiguityGraph;
use crate::scratch::VisitScratch;

/// Reusable buffers for [`articulation_points_into`].
///
/// The local-search phase recomputes articulation points for the two regions
/// touched by every applied move; reusing one scratch across those calls
/// avoids six heap allocations per recomputation. Membership tests during the
/// DFS use an epoch-stamped index map (`in_set` + `pos`) instead of a binary
/// search per neighbor probe, so each probe is O(1).
#[derive(Clone, Debug, Default)]
pub struct ArticulationScratch {
    sorted: Vec<u32>,
    /// `pos[v]` is the local index of global vertex `v`, valid iff `in_set`
    /// has `v` marked in the current round.
    pos: Vec<u32>,
    in_set: VisitScratch,
    disc: Vec<u32>,
    low: Vec<u32>,
    parent: Vec<u32>,
    is_art: Vec<bool>,
    stack: Vec<(u32, usize)>,
}

impl ArticulationScratch {
    /// Epoch rollovers of the internal membership set (observability hook).
    pub fn rollovers(&self) -> u64 {
        self.in_set.rollovers()
    }
}

/// Computes the articulation points of the subgraph induced by `members`,
/// returned as a sorted vertex list.
///
/// If the induced subgraph is disconnected, articulation points of each
/// component are returned. Vertices in `members` must be distinct.
pub fn articulation_points(graph: &ContiguityGraph, members: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    articulation_points_into(
        graph,
        members,
        &mut ArticulationScratch::default(),
        &mut out,
    );
    out
}

/// Allocation-free variant of [`articulation_points`]: writes the sorted
/// articulation points into `out` (cleared first), reusing `scratch` for all
/// internal DFS state.
pub fn articulation_points_into(
    graph: &ContiguityGraph,
    members: &[u32],
    scratch: &mut ArticulationScratch,
    out: &mut Vec<u32>,
) {
    out.clear();
    let k = members.len();
    if k <= 2 {
        // Removing a vertex of a 1- or 2-vertex region never disconnects the
        // remainder (it becomes empty or a singleton).
        return;
    }
    scratch.sorted.clear();
    scratch.sorted.extend_from_slice(members);
    scratch.sorted.sort_unstable();
    // Stamp membership and record each member's local (sorted) index for O(1)
    // neighbor probes during the DFS.
    scratch.in_set.begin(graph.len());
    if scratch.pos.len() < graph.len() {
        scratch.pos.resize(graph.len(), 0);
    }
    for (idx, &v) in scratch.sorted.iter().enumerate() {
        scratch.in_set.mark(v);
        scratch.pos[v as usize] = idx as u32;
    }
    let sorted = &scratch.sorted;
    let in_set = &scratch.in_set;
    let pos = &scratch.pos;

    // Iterative Tarjan lowlink over local indices.
    const NIL: u32 = u32::MAX;
    scratch.disc.clear();
    scratch.disc.resize(k, NIL);
    scratch.low.clear();
    scratch.low.resize(k, 0);
    scratch.parent.clear();
    scratch.parent.resize(k, NIL);
    scratch.is_art.clear();
    scratch.is_art.resize(k, false);
    let disc = &mut scratch.disc;
    let low = &mut scratch.low;
    let parent = &mut scratch.parent;
    let is_art = &mut scratch.is_art;
    let mut timer = 0u32;

    // Explicit DFS stack: (node, neighbor cursor).
    let stack = &mut scratch.stack;
    stack.clear();

    for root in 0..k as u32 {
        if disc[root as usize] != NIL {
            continue;
        }
        let mut root_children = 0u32;
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, 0));
        while let Some(&mut (u, ref mut cursor)) = stack.last_mut() {
            let global_u = sorted[u as usize];
            let neighbors = graph.neighbors(global_u);
            if *cursor < neighbors.len() {
                let w_global = neighbors[*cursor];
                *cursor += 1;
                if !in_set.is_marked(w_global) {
                    continue; // neighbor outside the region
                }
                let w = pos[w_global as usize];
                if disc[w as usize] == NIL {
                    parent[w as usize] = u;
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((w, 0));
                } else if w != parent[u as usize] {
                    low[u as usize] = low[u as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                    if p != root && low[u as usize] >= disc[p as usize] {
                        is_art[p as usize] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[root as usize] = true;
        }
    }

    out.extend(
        sorted
            .iter()
            .zip(is_art.iter())
            .filter_map(|(&v, &a)| a.then_some(v)),
    );
}

/// Convenience: the members of a region that are *safe to remove* without
/// disconnecting it — i.e. non-articulation members (singleton regions have
/// no safe removals, since a region must keep at least one area).
pub fn removable_areas(graph: &ContiguityGraph, members: &[u32]) -> Vec<u32> {
    if members.len() <= 1 {
        return Vec::new();
    }
    let arts = articulation_points(graph, members);
    let mut out: Vec<u32> = members
        .iter()
        .copied()
        .filter(|v| arts.binary_search(v).is_err())
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::is_connected_after_removal;

    #[test]
    fn path_interior_vertices_are_articulation() {
        let g = ContiguityGraph::lattice(4, 1); // path 0-1-2-3
        let arts = articulation_points(&g, &[0, 1, 2, 3]);
        assert_eq!(arts, vec![1, 2]);
        assert_eq!(removable_areas(&g, &[0, 1, 2, 3]), vec![0, 3]);
    }

    #[test]
    fn cycle_has_no_articulation() {
        // 2x2 block of a lattice forms a 4-cycle.
        let g = ContiguityGraph::lattice(2, 2);
        assert!(articulation_points(&g, &[0, 1, 2, 3]).is_empty());
        assert_eq!(removable_areas(&g, &[0, 1, 2, 3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn small_regions_have_no_articulation() {
        let g = ContiguityGraph::lattice(3, 1);
        assert!(articulation_points(&g, &[0]).is_empty());
        assert!(articulation_points(&g, &[0, 1]).is_empty());
        assert!(removable_areas(&g, &[0]).is_empty());
        assert_eq!(removable_areas(&g, &[0, 1]), vec![0, 1]);
    }

    #[test]
    fn star_center_is_articulation() {
        let g = ContiguityGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(articulation_points(&g, &[0, 1, 2, 3]), vec![0]);
    }

    #[test]
    fn agrees_with_bfs_oracle_on_lattice_regions() {
        let g = ContiguityGraph::lattice(5, 5);
        // Several irregular but connected regions.
        let regions: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 7, 12, 11, 10],      // snake
            vec![6, 7, 8, 11, 13, 16, 17, 18], // ring around 12
            (0..25).collect(),                 // everything
            vec![0, 5, 10, 15, 20, 21, 22],    // L
        ];
        for region in regions {
            let arts = articulation_points(&g, &region);
            for &v in &region {
                let safe = is_connected_after_removal(&g, &region, v);
                let is_art = arts.binary_search(&v).is_ok();
                // v is an articulation point iff removal disconnects
                // (for regions with > 1 member).
                if region.len() > 1 {
                    assert_eq!(is_art, !safe, "vertex {v} in {region:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_computation() {
        let g = ContiguityGraph::lattice(5, 5);
        let regions: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 7, 12, 11, 10],
            (0..25).collect(),
            vec![3, 4],
            vec![0, 5, 10, 15, 20, 21, 22],
        ];
        let mut scratch = ArticulationScratch::default();
        let mut out = Vec::new();
        for region in &regions {
            articulation_points_into(&g, region, &mut scratch, &mut out);
            assert_eq!(out, articulation_points(&g, region), "region {region:?}");
        }
    }

    #[test]
    fn disconnected_subset_components_handled() {
        let g = ContiguityGraph::lattice(5, 1); // path 0-1-2-3-4
                                                // Two components: {0,1,2} and {4}.
        let arts = articulation_points(&g, &[0, 1, 2, 4]);
        assert_eq!(arts, vec![1]);
    }
}
