//! Error type for graph construction.

use std::fmt;

/// Errors produced by graph constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphError {
    /// An edge `(v, v)` was supplied.
    SelfLoop {
        /// The offending vertex.
        vertex: u32,
    },
    /// An edge endpoint is `>= n`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices in the graph.
        n: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            GraphError::SelfLoop { vertex: 4 }.to_string(),
            "self-loop at vertex 4"
        );
        assert!(GraphError::VertexOutOfRange { vertex: 9, n: 5 }
            .to_string()
            .contains("out of range"));
    }
}
