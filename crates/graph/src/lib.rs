//! # emp-graph — contiguity-graph substrate for EMP regionalization
//!
//! Regionalization algorithms operate on the *contiguity graph* of the input
//! areas: vertices are areas, edges are spatial adjacency. This crate
//! provides that graph plus the connectivity machinery FaCT needs:
//!
//! * [`ContiguityGraph`] — compressed sparse row (CSR) adjacency over dense
//!   `u32` ids: one flat neighbor array, `neighbors(v)` is a slice walk;
//! * [`scratch`] — epoch-stamped visited sets ([`VisitScratch`]) so repeated
//!   traversals never clear or allocate per call;
//! * [`components`] — whole-graph connected components (EMP supports
//!   multi-component datasets);
//! * [`subgraph`] — region connectivity checks, boundary areas, frontiers;
//! * [`articulation`] — cut vertices of a region for O(1) "safe to remove"
//!   answers in the local-search phase;
//! * [`traversal`] — BFS iterators and distances.
//!
//! ```
//! use emp_graph::{ContiguityGraph, subgraph::is_connected_subset};
//!
//! let g = ContiguityGraph::lattice(3, 3);
//! assert!(is_connected_subset(&g, &[0, 1, 2]));
//! assert!(!is_connected_subset(&g, &[0, 8]));
//! ```

#![warn(missing_docs)]

pub mod articulation;
pub mod components;
pub mod error;
pub mod graph;
pub mod scratch;
pub mod subgraph;
pub mod traversal;

pub use components::{connected_components, is_connected, Components};
pub use error::GraphError;
pub use graph::ContiguityGraph;
pub use scratch::{SubsetScratch, VisitScratch};
