//! Connectivity queries on induced subgraphs (regions).
//!
//! FaCT repeatedly asks "is this region still spatially contiguous if area X
//! leaves?" during Step 3 swaps and Tabu moves. These helpers answer such
//! questions without materializing subgraphs, using a caller-provided
//! membership predicate over the global assignment.
//!
//! Every query has two forms: a convenience function that allocates its own
//! working memory, and a `_with` / `_into` form that reuses a caller-held
//! [`SubsetScratch`] so the hot loops in the solver run allocation-free.

use crate::graph::ContiguityGraph;
use crate::scratch::SubsetScratch;

/// Whether the vertices in `members` induce a connected subgraph.
///
/// `members` may be in any order; duplicates are not allowed. An empty set is
/// considered connected (a region, however, always has >= 1 area).
pub fn is_connected_subset(graph: &ContiguityGraph, members: &[u32]) -> bool {
    is_connected_subset_with(graph, members, &mut SubsetScratch::new())
}

/// Allocation-free variant of [`is_connected_subset`] reusing `scratch`.
pub fn is_connected_subset_with(
    graph: &ContiguityGraph,
    members: &[u32],
    scratch: &mut SubsetScratch,
) -> bool {
    match members.len() {
        0 | 1 => return true,
        _ => {}
    }
    scratch.in_set.begin(graph.len());
    for &v in members {
        let fresh = scratch.in_set.mark(v);
        debug_assert!(fresh, "duplicate member {v}");
    }
    scratch.visited.begin(graph.len());
    scratch.stack.clear();
    let start = members[0];
    scratch.visited.mark(start);
    scratch.stack.push(start);
    let mut seen = 1usize;
    while let Some(v) = scratch.stack.pop() {
        for &w in graph.neighbors(v) {
            if scratch.in_set.is_marked(w) && scratch.visited.mark(w) {
                seen += 1;
                scratch.stack.push(w);
            }
        }
    }
    seen == members.len()
}

/// Whether the subgraph induced by `members` minus vertex `removed` is still
/// connected. `removed` must be in `members`.
///
/// Returns `false` when the region would become empty — by convention a
/// region must keep at least one area, so removing the last area is invalid.
pub fn is_connected_after_removal(graph: &ContiguityGraph, members: &[u32], removed: u32) -> bool {
    is_connected_after_removal_with(graph, members, removed, &mut SubsetScratch::new())
}

/// Allocation-free variant of [`is_connected_after_removal`].
pub fn is_connected_after_removal_with(
    graph: &ContiguityGraph,
    members: &[u32],
    removed: u32,
    scratch: &mut SubsetScratch,
) -> bool {
    debug_assert!(members.contains(&removed));
    if members.len() <= 1 {
        return false;
    }
    scratch.in_set.begin(graph.len());
    for &v in members {
        scratch.in_set.mark(v);
    }
    scratch.in_set.unmark(removed);
    scratch.visited.begin(graph.len());
    scratch.stack.clear();
    let start = members
        .iter()
        .copied()
        .find(|&v| v != removed)
        .expect("members has >= 2 vertices");
    scratch.visited.mark(start);
    scratch.stack.push(start);
    let mut seen = 1usize;
    while let Some(v) = scratch.stack.pop() {
        for &w in graph.neighbors(v) {
            if scratch.in_set.is_marked(w) && scratch.visited.mark(w) {
                seen += 1;
                scratch.stack.push(w);
            }
        }
    }
    seen == members.len() - 1
}

/// Members of `members` that have at least one neighbor for which
/// `is_outside` returns true (i.e. the region's boundary areas).
pub fn boundary_areas<F: Fn(u32) -> bool>(
    graph: &ContiguityGraph,
    members: &[u32],
    is_outside: F,
) -> Vec<u32> {
    members
        .iter()
        .copied()
        .filter(|&v| graph.neighbors(v).iter().any(|&w| is_outside(w)))
        .collect()
}

/// All vertices outside `members` adjacent to at least one member, sorted and
/// deduplicated: the region's neighboring frontier.
pub fn frontier(graph: &ContiguityGraph, members: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    frontier_into(graph, members, &mut SubsetScratch::new(), &mut out);
    out
}

/// Allocation-free variant of [`frontier`]: writes the sorted, deduplicated
/// frontier into `out` (cleared first).
pub fn frontier_into(
    graph: &ContiguityGraph,
    members: &[u32],
    scratch: &mut SubsetScratch,
    out: &mut Vec<u32>,
) {
    out.clear();
    scratch.in_set.begin(graph.len());
    for &v in members {
        scratch.in_set.mark(v);
    }
    // `visited` doubles as the output dedup set.
    scratch.visited.begin(graph.len());
    for &v in members {
        for &w in graph.neighbors(v) {
            if !scratch.in_set.is_marked(w) && scratch.visited.mark(w) {
                out.push(w);
            }
        }
    }
    out.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_subsets_on_lattice() {
        let g = ContiguityGraph::lattice(3, 3);
        // Row 0: vertices 0,1,2 connected.
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        // Two opposite corners: not connected.
        assert!(!is_connected_subset(&g, &[0, 8]));
        // L-shape.
        assert!(is_connected_subset(&g, &[0, 3, 6, 7, 8]));
        // Singleton and empty.
        assert!(is_connected_subset(&g, &[4]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn removal_connectivity() {
        let g = ContiguityGraph::lattice(3, 1); // path 0-1-2
        assert!(!is_connected_after_removal(&g, &[0, 1, 2], 1)); // cut vertex
        assert!(is_connected_after_removal(&g, &[0, 1, 2], 0));
        assert!(is_connected_after_removal(&g, &[0, 1, 2], 2));
        assert!(!is_connected_after_removal(&g, &[0], 0)); // last area
    }

    #[test]
    fn boundary_of_region() {
        let g = ContiguityGraph::lattice(3, 3);
        // Region = left column {0,3,6}; outside everything else.
        let region = [0u32, 3, 6];
        let b = boundary_areas(&g, &region, |v| !region.contains(&v));
        assert_eq!(b, vec![0, 3, 6]); // every member touches the middle column
                                      // Region = whole lattice: no boundary against an empty outside.
        let all: Vec<u32> = (0..9).collect();
        let b = boundary_areas(&g, &all, |_| false);
        assert!(b.is_empty());
    }

    #[test]
    fn frontier_of_region() {
        let g = ContiguityGraph::lattice(3, 3);
        let f = frontier(&g, &[4]); // center
        assert_eq!(f, vec![1, 3, 5, 7]);
        let f = frontier(&g, &[0, 1, 2]); // top row (y=0)
        assert_eq!(f, vec![3, 4, 5]);
        let all: Vec<u32> = (0..9).collect();
        assert!(frontier(&g, &all).is_empty());
    }

    #[test]
    fn unordered_members_are_fine() {
        let g = ContiguityGraph::lattice(3, 3);
        assert!(is_connected_subset(&g, &[2, 0, 1]));
        assert!(!is_connected_subset(&g, &[8, 0]));
    }

    #[test]
    fn scratch_reuse_matches_fresh_queries() {
        let g = ContiguityGraph::lattice(4, 4);
        let regions: Vec<Vec<u32>> = vec![
            vec![0, 1, 2, 3],
            vec![0, 4, 8, 12, 13],
            vec![5, 6, 9, 10],
            vec![0, 15],
            (0..16).collect(),
        ];
        let mut scratch = SubsetScratch::new();
        let mut out = Vec::new();
        for region in &regions {
            assert_eq!(
                is_connected_subset_with(&g, region, &mut scratch),
                is_connected_subset(&g, region),
                "region {region:?}"
            );
            frontier_into(&g, region, &mut scratch, &mut out);
            assert_eq!(out, frontier(&g, region), "region {region:?}");
            for &v in region {
                if region.len() > 1 {
                    assert_eq!(
                        is_connected_after_removal_with(&g, region, v, &mut scratch),
                        is_connected_after_removal(&g, region, v),
                        "remove {v} from {region:?}"
                    );
                }
            }
        }
    }
}
