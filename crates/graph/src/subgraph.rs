//! Connectivity queries on induced subgraphs (regions).
//!
//! FaCT repeatedly asks "is this region still spatially contiguous if area X
//! leaves?" during Step 3 swaps and Tabu moves. These helpers answer such
//! questions without materializing subgraphs, using a caller-provided
//! membership predicate over the global assignment.

use crate::graph::ContiguityGraph;

/// Whether the vertices in `members` induce a connected subgraph.
///
/// `members` may be in any order; duplicates are not allowed. An empty set is
/// considered connected (a region, however, always has >= 1 area).
pub fn is_connected_subset(graph: &ContiguityGraph, members: &[u32]) -> bool {
    match members.len() {
        0 | 1 => return true,
        _ => {}
    }
    // Membership test via a sorted copy: O(k log k) once, O(log k) per probe.
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    debug_assert!(sorted.windows(2).all(|w| w[0] != w[1]), "duplicate member");
    let mut visited = vec![false; sorted.len()];
    let mut stack = vec![0usize];
    visited[0] = true;
    let mut seen = 1usize;
    while let Some(idx) = stack.pop() {
        let v = sorted[idx];
        for &w in graph.neighbors(v) {
            if let Ok(widx) = sorted.binary_search(&w) {
                if !visited[widx] {
                    visited[widx] = true;
                    seen += 1;
                    stack.push(widx);
                }
            }
        }
    }
    seen == sorted.len()
}

/// Whether the subgraph induced by `members` minus vertex `removed` is still
/// connected. `removed` must be in `members`.
///
/// Returns `false` when the region would become empty — by convention a
/// region must keep at least one area, so removing the last area is invalid.
pub fn is_connected_after_removal(graph: &ContiguityGraph, members: &[u32], removed: u32) -> bool {
    debug_assert!(members.contains(&removed));
    if members.len() == 1 {
        return false;
    }
    let remaining: Vec<u32> = members.iter().copied().filter(|&v| v != removed).collect();
    is_connected_subset(graph, &remaining)
}

/// Members of `members` that have at least one neighbor for which
/// `is_outside` returns true (i.e. the region's boundary areas).
pub fn boundary_areas<F: Fn(u32) -> bool>(
    graph: &ContiguityGraph,
    members: &[u32],
    is_outside: F,
) -> Vec<u32> {
    members
        .iter()
        .copied()
        .filter(|&v| graph.neighbors(v).iter().any(|&w| is_outside(w)))
        .collect()
}

/// All vertices outside `members` adjacent to at least one member, sorted and
/// deduplicated: the region's neighboring frontier.
pub fn frontier(graph: &ContiguityGraph, members: &[u32]) -> Vec<u32> {
    let mut inside = members.to_vec();
    inside.sort_unstable();
    let mut out = Vec::new();
    for &v in members {
        for &w in graph.neighbors(v) {
            if inside.binary_search(&w).is_err() {
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_subsets_on_lattice() {
        let g = ContiguityGraph::lattice(3, 3);
        // Row 0: vertices 0,1,2 connected.
        assert!(is_connected_subset(&g, &[0, 1, 2]));
        // Two opposite corners: not connected.
        assert!(!is_connected_subset(&g, &[0, 8]));
        // L-shape.
        assert!(is_connected_subset(&g, &[0, 3, 6, 7, 8]));
        // Singleton and empty.
        assert!(is_connected_subset(&g, &[4]));
        assert!(is_connected_subset(&g, &[]));
    }

    #[test]
    fn removal_connectivity() {
        let g = ContiguityGraph::lattice(3, 1); // path 0-1-2
        assert!(!is_connected_after_removal(&g, &[0, 1, 2], 1)); // cut vertex
        assert!(is_connected_after_removal(&g, &[0, 1, 2], 0));
        assert!(is_connected_after_removal(&g, &[0, 1, 2], 2));
        assert!(!is_connected_after_removal(&g, &[0], 0)); // last area
    }

    #[test]
    fn boundary_of_region() {
        let g = ContiguityGraph::lattice(3, 3);
        // Region = left column {0,3,6}; outside everything else.
        let region = [0u32, 3, 6];
        let b = boundary_areas(&g, &region, |v| !region.contains(&v));
        assert_eq!(b, vec![0, 3, 6]); // every member touches the middle column
                                      // Region = whole lattice: no boundary against an empty outside.
        let all: Vec<u32> = (0..9).collect();
        let b = boundary_areas(&g, &all, |_| false);
        assert!(b.is_empty());
    }

    #[test]
    fn frontier_of_region() {
        let g = ContiguityGraph::lattice(3, 3);
        let f = frontier(&g, &[4]); // center
        assert_eq!(f, vec![1, 3, 5, 7]);
        let f = frontier(&g, &[0, 1, 2]); // top row (y=0)
        assert_eq!(f, vec![3, 4, 5]);
        let all: Vec<u32> = (0..9).collect();
        assert!(frontier(&g, &all).is_empty());
    }

    #[test]
    fn unordered_members_are_fine() {
        let g = ContiguityGraph::lattice(3, 3);
        assert!(is_connected_subset(&g, &[2, 0, 1]));
        assert!(!is_connected_subset(&g, &[8, 0]));
    }
}
