//! Breadth-first traversal utilities.

use crate::graph::ContiguityGraph;
use crate::scratch::VisitScratch;
use std::collections::VecDeque;

/// Breadth-first iterator over the component containing `start`.
pub struct Bfs<'g> {
    graph: &'g ContiguityGraph,
    queue: VecDeque<u32>,
    visited: VisitScratch,
}

impl<'g> Bfs<'g> {
    /// Starts a BFS from `start`.
    pub fn new(graph: &'g ContiguityGraph, start: u32) -> Self {
        let mut visited = VisitScratch::with_capacity(graph.len());
        visited.begin(graph.len());
        let mut queue = VecDeque::new();
        if (start as usize) < graph.len() {
            visited.mark(start);
            queue.push_back(start);
        }
        Bfs {
            graph,
            queue,
            visited,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let v = self.queue.pop_front()?;
        for &w in self.graph.neighbors(v) {
            if self.visited.mark(w) {
                self.queue.push_back(w);
            }
        }
        Some(v)
    }
}

/// Visits the component containing `start`, calling `f` for each vertex in
/// BFS order. Allocation-free: reuses the caller's `visited` set and `queue`
/// buffer (cleared here). Returns the number of vertices visited.
pub fn bfs_visit(
    graph: &ContiguityGraph,
    start: u32,
    visited: &mut VisitScratch,
    queue: &mut Vec<u32>,
    mut f: impl FnMut(u32),
) -> usize {
    visited.begin(graph.len());
    queue.clear();
    if (start as usize) >= graph.len() {
        return 0;
    }
    visited.mark(start);
    queue.push(start);
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        f(v);
        for &w in graph.neighbors(v) {
            if visited.mark(w) {
                queue.push(w);
            }
        }
    }
    head
}

/// BFS distances from `start` to every vertex (`u32::MAX` if unreachable).
pub fn bfs_distances(graph: &ContiguityGraph, start: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.len()];
    if (start as usize) >= graph.len() {
        return dist;
    }
    dist[start as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in graph.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_visits_component_once() {
        let g = ContiguityGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut order: Vec<u32> = Bfs::new(&g, 0).collect();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
        let other: Vec<u32> = Bfs::new(&g, 3).collect();
        assert_eq!(other, vec![3, 4]);
    }

    #[test]
    fn bfs_order_is_breadth_first() {
        let g = ContiguityGraph::lattice(3, 3);
        let order: Vec<u32> = Bfs::new(&g, 4).collect();
        assert_eq!(order[0], 4);
        // Distance-1 vertices come before distance-2.
        let pos = |v: u32| order.iter().position(|&x| x == v).unwrap();
        for near in [1u32, 3, 5, 7] {
            for far in [0u32, 2, 6, 8] {
                assert!(pos(near) < pos(far));
            }
        }
    }

    #[test]
    fn bfs_visit_matches_iterator() {
        let g = ContiguityGraph::lattice(4, 3);
        let mut visited = VisitScratch::new();
        let mut queue = Vec::new();
        for start in 0..g.len() as u32 {
            let mut order = Vec::new();
            let count = bfs_visit(&g, start, &mut visited, &mut queue, |v| order.push(v));
            let expected: Vec<u32> = Bfs::new(&g, start).collect();
            assert_eq!(order, expected);
            assert_eq!(count, expected.len());
        }
    }

    #[test]
    fn bfs_visit_out_of_range_start_is_empty() {
        let g = ContiguityGraph::lattice(2, 2);
        let mut visited = VisitScratch::new();
        let mut queue = Vec::new();
        let count = bfs_visit(&g, 99, &mut visited, &mut queue, |_| panic!("no visits"));
        assert_eq!(count, 0);
    }

    #[test]
    fn distances_on_lattice() {
        let g = ContiguityGraph::lattice(3, 3);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[4], 2);
        assert_eq!(d[8], 4);
    }

    #[test]
    fn unreachable_vertices_are_max() {
        let g = ContiguityGraph::from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }
}
