//! The contiguity graph: areas as vertices, spatial adjacency as edges.

use crate::error::GraphError;

/// An undirected graph over `n` areas in compressed sparse row (CSR) form.
///
/// Vertex ids are dense `u32` in `0..n`, matching area indices in the dataset.
/// The neighbors of vertex `v` are the contiguous, ascending-sorted slice
/// `neighbors[offsets[v]..offsets[v + 1]]`, so every traversal walks flat
/// memory instead of chasing one heap allocation per vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct ContiguityGraph {
    /// `n + 1` row boundaries into `neighbors` (`offsets[0] == 0`).
    offsets: Vec<u32>,
    /// All adjacency lists, concatenated; each row sorted ascending.
    neighbors: Vec<u32>,
}

impl ContiguityGraph {
    /// Builds a graph from an undirected edge list over `n` vertices.
    ///
    /// Edges are deduplicated; self-loops are rejected.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        for &(i, j) in edges {
            if i == j {
                return Err(GraphError::SelfLoop { vertex: i });
            }
            if i as usize >= n || j as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: i.max(j),
                    n,
                });
            }
        }
        Ok(Self::from_directed_pairs(n, |emit| {
            for &(i, j) in edges {
                emit(i, j);
                emit(j, i);
            }
        }))
    }

    /// Builds a graph from pre-computed adjacency lists (normalized to be
    /// sorted, deduplicated, and symmetric).
    pub fn from_adjacency(adjacency: Vec<Vec<u32>>) -> Result<Self, GraphError> {
        let n = adjacency.len();
        // Validate ranges and self-loops first.
        for (i, list) in adjacency.iter().enumerate() {
            for &j in list {
                if j as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: j, n });
                }
                if j as usize == i {
                    return Err(GraphError::SelfLoop { vertex: i as u32 });
                }
            }
        }
        // Symmetrize: emit each listed arc in both directions; the CSR
        // builder's sort + dedup collapses duplicates.
        Ok(Self::from_directed_pairs(n, |emit| {
            for (i, list) in adjacency.iter().enumerate() {
                for &j in list {
                    emit(i as u32, j);
                    emit(j, i as u32);
                }
            }
        }))
    }

    /// Builds the CSR arrays from a directed-pair generator. The generator is
    /// invoked twice: once to count row sizes, once to scatter the pairs.
    /// Rows are then sorted, deduplicated, and compacted in place.
    fn from_directed_pairs(n: usize, generate: impl Fn(&mut dyn FnMut(u32, u32))) -> Self {
        let mut offsets = vec![0u32; n + 1];
        generate(&mut |i, _| offsets[i as usize + 1] += 1);
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        generate(&mut |i, j| {
            let c = &mut cursor[i as usize];
            neighbors[*c as usize] = j;
            *c += 1;
        });
        // Sort each row, then dedup while compacting rows left.
        let mut write = 0usize;
        for v in 0..n {
            let start = offsets[v] as usize;
            let end = offsets[v + 1] as usize;
            neighbors[start..end].sort_unstable();
            let row_start = write;
            for idx in start..end {
                let x = neighbors[idx];
                if write == row_start || neighbors[write - 1] != x {
                    neighbors[write] = x;
                    write += 1;
                }
            }
            offsets[v] = row_start as u32;
        }
        offsets[n] = write as u32;
        neighbors.truncate(write);
        neighbors.shrink_to_fit();
        ContiguityGraph { offsets, neighbors }
    }

    /// A `w x h` 4-connected lattice (useful for tests and synthetic data).
    pub fn lattice(w: usize, h: usize) -> Self {
        let mut edges = Vec::with_capacity(2 * w * h);
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        Self::from_edges(w * h, &edges).expect("lattice edges are valid")
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.neighbors[start..end]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Whether `(i, j)` is an edge (binary search on the sorted row).
    #[inline]
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        self.neighbors(i).binary_search(&j).is_ok()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Mean vertex degree (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.neighbors.len() as f64 / self.len() as f64
    }

    /// Iterates all undirected edges `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.len() as u32).flat_map(move |i| {
            self.neighbors(i)
                .iter()
                .copied()
                .filter(move |&j| i < j)
                .map(move |j| (i, j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = ContiguityGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        assert!(matches!(
            ContiguityGraph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            ContiguityGraph::from_edges(3, &[(0, 3)]),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
    }

    #[test]
    fn from_adjacency_symmetrizes() {
        let g = ContiguityGraph::from_adjacency(vec![vec![1], vec![], vec![1]]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn from_adjacency_validates() {
        assert!(ContiguityGraph::from_adjacency(vec![vec![0]]).is_err());
        assert!(ContiguityGraph::from_adjacency(vec![vec![5]]).is_err());
    }

    #[test]
    fn lattice_structure() {
        let g = ContiguityGraph::lattice(3, 2);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7);
        // Corner has degree 2, middle-edge 3.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert!((g.mean_degree() - 14.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = ContiguityGraph::lattice(2, 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = ContiguityGraph::from_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = ContiguityGraph::from_edges(4, &[(1, 3)]).unwrap();
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.neighbors(1), &[3]);
        assert!(g.neighbors(2).is_empty());
        assert_eq!(g.neighbors(3), &[1]);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edge_count(), 1);
    }
}
