//! The contiguity graph: areas as vertices, spatial adjacency as edges.

use crate::error::GraphError;

/// An undirected graph over `n` areas, stored as sorted adjacency lists.
///
/// Vertex ids are dense `u32` in `0..n`, matching area indices in the dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct ContiguityGraph {
    adjacency: Vec<Vec<u32>>,
}

impl ContiguityGraph {
    /// Builds a graph from an undirected edge list over `n` vertices.
    ///
    /// Edges are deduplicated; self-loops are rejected.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut adjacency = vec![Vec::new(); n];
        for &(i, j) in edges {
            if i == j {
                return Err(GraphError::SelfLoop { vertex: i });
            }
            if i as usize >= n || j as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: i.max(j),
                    n,
                });
            }
            adjacency[i as usize].push(j);
            adjacency[j as usize].push(i);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Ok(ContiguityGraph { adjacency })
    }

    /// Builds a graph from pre-computed adjacency lists (normalized to be
    /// sorted, deduplicated, and symmetric).
    pub fn from_adjacency(mut adjacency: Vec<Vec<u32>>) -> Result<Self, GraphError> {
        let n = adjacency.len();
        // Validate ranges and self-loops first.
        for (i, list) in adjacency.iter().enumerate() {
            for &j in list {
                if j as usize >= n {
                    return Err(GraphError::VertexOutOfRange { vertex: j, n });
                }
                if j as usize == i {
                    return Err(GraphError::SelfLoop { vertex: i as u32 });
                }
            }
        }
        // Symmetrize.
        let mut to_add: Vec<(usize, u32)> = Vec::new();
        for (i, list) in adjacency.iter().enumerate() {
            for &j in list {
                if !adjacency[j as usize].contains(&(i as u32)) {
                    to_add.push((j as usize, i as u32));
                }
            }
        }
        for (i, j) in to_add {
            adjacency[i].push(j);
        }
        for list in &mut adjacency {
            list.sort_unstable();
            list.dedup();
        }
        Ok(ContiguityGraph { adjacency })
    }

    /// A `w x h` 4-connected lattice (useful for tests and synthetic data).
    pub fn lattice(w: usize, h: usize) -> Self {
        let mut edges = Vec::with_capacity(2 * w * h);
        let id = |x: usize, y: usize| (y * w + x) as u32;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    edges.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < h {
                    edges.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        Self::from_edges(w * h, &edges).expect("lattice edges are valid")
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adjacency[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adjacency[v as usize].len()
    }

    /// Whether `(i, j)` is an edge (binary search on the sorted list).
    #[inline]
    pub fn has_edge(&self, i: u32, j: u32) -> bool {
        self.adjacency[i as usize].binary_search(&j).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(|l| l.len()).sum::<usize>() / 2
    }

    /// Mean vertex degree (0 for an empty graph).
    pub fn mean_degree(&self) -> f64 {
        if self.adjacency.is_empty() {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.adjacency.len() as f64
    }

    /// Iterates all undirected edges `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(i, list)| {
            let i = i as u32;
            list.iter()
                .copied()
                .filter(move |&j| i < j)
                .map(move |j| (i, j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = ContiguityGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (0, 1)]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        assert!(matches!(
            ContiguityGraph::from_edges(3, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        assert!(matches!(
            ContiguityGraph::from_edges(3, &[(0, 3)]),
            Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })
        ));
    }

    #[test]
    fn from_adjacency_symmetrizes() {
        let g = ContiguityGraph::from_adjacency(vec![vec![1], vec![], vec![1]]).unwrap();
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(1, 2));
    }

    #[test]
    fn from_adjacency_validates() {
        assert!(ContiguityGraph::from_adjacency(vec![vec![0]]).is_err());
        assert!(ContiguityGraph::from_adjacency(vec![vec![5]]).is_err());
    }

    #[test]
    fn lattice_structure() {
        let g = ContiguityGraph::lattice(3, 2);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7);
        // Corner has degree 2, middle-edge 3.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert!((g.mean_degree() - 14.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = ContiguityGraph::lattice(2, 2);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = ContiguityGraph::from_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.mean_degree(), 0.0);
    }
}
