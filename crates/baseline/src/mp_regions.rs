//! The max-p-regions construction heuristic and solver.

use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::control::{SolveBudget, StopReason};
use emp_core::engine::ConstraintEngine;
use emp_core::error::EmpError;
use emp_core::instance::EmpInstance;
use emp_core::partition::Partition;
use emp_core::solution::Solution;
use emp_core::solver::PhaseTimings;
use emp_core::tabu::{tabu_search_budgeted, TabuConfig, TabuOutcome, TabuStats};
use emp_graph::VisitScratch;
use emp_obs::{CounterKind, Counters, Recorder, TrajectorySummary};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// MP-regions tuning parameters, mirroring FaCT's defaults where shared.
#[derive(Clone, Debug)]
pub struct MpConfig {
    /// Construction iterations; the partition with the highest `p` wins.
    pub construction_iterations: usize,
    /// Tabu list length.
    pub tabu_tenure: usize,
    /// Maximum non-improving tabu iterations (`None` = number of areas).
    pub max_no_improve: Option<usize>,
    /// Hard cap on total tabu iterations (`None` = `20 n`).
    pub max_tabu_iterations: Option<usize>,
    /// Whether to run the tabu phase.
    pub local_search: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MpConfig {
    fn default() -> Self {
        MpConfig {
            construction_iterations: 3,
            tabu_tenure: 10,
            max_no_improve: None,
            max_tabu_iterations: None,
            local_search: true,
            seed: 0x3A9,
        }
    }
}

impl MpConfig {
    /// A config with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        MpConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Solver output: solution plus timing, tabu statistics, and telemetry,
/// shaped like FaCT's report for side-by-side evaluation.
#[derive(Clone, Debug)]
pub struct MpReport {
    /// The final partition.
    pub solution: Solution,
    /// Heterogeneity before local search.
    pub heterogeneity_before: f64,
    /// Tabu statistics.
    pub tabu: TabuStats,
    /// Phase timings (feasibility slot unused; kept for symmetry).
    pub timings: PhaseTimings,
    /// Telemetry counters accumulated during this solve.
    pub counters: Counters,
    /// Local-search objective trajectory summary (empty when tabu was
    /// skipped).
    pub trajectory: TrajectorySummary,
}

impl MpReport {
    /// Number of regions.
    pub fn p(&self) -> usize {
        self.solution.p()
    }

    /// Relative heterogeneity improvement from the local search; `None` when
    /// the search never ran or the initial objective was zero/non-finite
    /// (same convention as FaCT's `SolveReport::improvement`).
    pub fn improvement(&self) -> Option<f64> {
        self.trajectory.improvement()
    }
}

/// The classic max-p-regions feasibility check: the problem is solvable iff
/// the attribute total reaches the threshold (one region containing every
/// area then satisfies `SUM(attr) >= threshold`; note this assumes a
/// connected map, the classic formulation's standing assumption). Returns
/// the total on success so callers can reuse it.
///
/// Exposed separately so the differential oracle (`emp-oracle`) can
/// cross-check FaCT's per-region feasibility phase against the classic
/// formulation's verdict on sum-threshold-only constraint sets.
pub fn mp_feasibility(instance: &EmpInstance, attr: &str, threshold: f64) -> Result<f64, EmpError> {
    let col =
        instance
            .attributes()
            .column_index(attr)
            .ok_or_else(|| EmpError::UnknownAttribute {
                name: attr.to_string(),
            })?;
    let total: f64 = instance.attributes().sum(col);
    if total < threshold {
        return Err(EmpError::Infeasible {
            reasons: vec![format!(
                "total {attr} = {total} is below the threshold {threshold}"
            )],
        });
    }
    Ok(total)
}

/// Solves the max-p-regions problem: maximize the number of regions where
/// every region has `SUM(attr) >= threshold`, all areas assigned where
/// possible, then minimize heterogeneity.
pub fn solve_mp(
    instance: &EmpInstance,
    attr: &str,
    threshold: f64,
    config: &MpConfig,
) -> Result<MpReport, EmpError> {
    solve_mp_observed(instance, attr, threshold, config, &mut Recorder::noop())
}

/// [`solve_mp`] reporting telemetry through `rec`: a `solve` span wrapping
/// one `mp_construct` span per construction iteration and a `tabu` span with
/// the per-move objective trajectory.
pub fn solve_mp_observed(
    instance: &EmpInstance,
    attr: &str,
    threshold: f64,
    config: &MpConfig,
    rec: &mut Recorder,
) -> Result<MpReport, EmpError> {
    solve_mp_budgeted_observed(
        instance,
        attr,
        threshold,
        config,
        &SolveBudget::unlimited(),
        rec,
    )
    .map(|(report, _)| report)
}

/// [`solve_mp`] under a cooperative [`SolveBudget`]: the solve polls the
/// budget before each construction iteration, at every enclave-assignment
/// fixpoint round, and (through the budgeted tabu search) at every tabu
/// iteration. An interrupted solve returns the best-so-far valid incumbent
/// — at worst the always-valid "everything unassigned" partition — and the
/// interrupting [`StopReason`]; no checkpointing (baselines are cheap to
/// re-run).
pub fn solve_mp_budgeted(
    instance: &EmpInstance,
    attr: &str,
    threshold: f64,
    config: &MpConfig,
    budget: &SolveBudget,
) -> Result<(MpReport, StopReason), EmpError> {
    solve_mp_budgeted_observed(
        instance,
        attr,
        threshold,
        config,
        budget,
        &mut Recorder::noop(),
    )
}

/// [`solve_mp_budgeted`] reporting telemetry through `rec`.
pub fn solve_mp_budgeted_observed(
    instance: &EmpInstance,
    attr: &str,
    threshold: f64,
    config: &MpConfig,
    budget: &SolveBudget,
    rec: &mut Recorder,
) -> Result<(MpReport, StopReason), EmpError> {
    let constraints = ConstraintSet::new().with(Constraint::sum(attr, threshold, f64::INFINITY)?);
    let engine = ConstraintEngine::compile(instance, &constraints)?;
    let col =
        instance
            .attributes()
            .column_index(attr)
            .ok_or_else(|| EmpError::UnknownAttribute {
                name: attr.to_string(),
            })?;

    // Feasibility (the classic formulation's only check).
    mp_feasibility(instance, attr, threshold)?;

    let counters_at_entry = rec.counters_snapshot();
    rec.span_begin("solve", None);
    let t0 = Instant::now();
    let mut stop: Option<StopReason> = None;
    let mut best: Option<Partition> = None;
    for i in 0..config.construction_iterations.max(1) {
        rec.counters().inc(CounterKind::CancelPolls);
        if let Some(reason) = budget.poll() {
            if reason == StopReason::DeadlineExceeded {
                rec.counters().inc(CounterKind::DeadlineExceeded);
            }
            stop = Some(reason);
            break;
        }
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        rec.span_begin("mp_construct", Some(i as u64));
        let cand = construct(
            &engine,
            instance,
            col,
            threshold,
            &mut rng,
            budget,
            &mut stop,
            rec.counters(),
        );
        rec.span_end();
        let replace = match &best {
            None => true,
            Some(b) => {
                (cand.p(), std::cmp::Reverse(cand.unassigned_count()))
                    > (b.p(), std::cmp::Reverse(b.unassigned_count()))
            }
        };
        if replace {
            best = Some(cand);
        }
        if stop.is_some() {
            break;
        }
    }
    // Interrupted before the first construction finished: fall back to the
    // always-valid "everything unassigned" partition.
    let mut partition = best.unwrap_or_else(|| Partition::new(instance.len()));
    let construction = t0.elapsed().as_secs_f64();
    let heterogeneity_before = partition.heterogeneity_with(&engine);

    let t1 = Instant::now();
    let tabu = if config.local_search && stop.is_none() {
        let mut cfg = TabuConfig {
            tenure: config.tabu_tenure,
            max_no_improve: config.max_no_improve.unwrap_or(instance.len()),
            ..TabuConfig::for_instance(instance.len())
        };
        if let Some(cap) = config.max_tabu_iterations {
            cfg.max_iterations = cap;
        }
        rec.span_begin("tabu", None);
        let outcome = tabu_search_budgeted(&engine, &mut partition, &cfg, budget, None, rec);
        rec.span_end();
        match outcome {
            TabuOutcome::Converged(stats) => stats,
            TabuOutcome::Interrupted {
                stats,
                reason,
                state,
            } => {
                stop = Some(reason);
                partition = Partition::from_assignment(&engine, &state.best_assignment);
                stats
            }
        }
    } else {
        TabuStats {
            initial: heterogeneity_before,
            best: heterogeneity_before,
            ..Default::default()
        }
    };
    let local_search = t1.elapsed().as_secs_f64();

    let stop_reason = stop.unwrap_or(StopReason::Completed);
    rec.note("stop_reason", stop_reason.code() as f64);
    rec.span_end(); // close "solve"
    let counters = rec.counters_snapshot().delta_since(&counters_at_entry);
    let trajectory = rec.take_trajectory();

    Ok((
        MpReport {
            solution: Solution::from_partition(&engine, &partition),
            heterogeneity_before,
            tabu,
            timings: PhaseTimings {
                feasibility: 0.0,
                construction,
                local_search,
            },
            counters,
            trajectory,
        },
        stop_reason,
    ))
}

/// One growing-phase construction iteration. Polls `budget` once per
/// enclave-assignment fixpoint round; on interruption the partially
/// enclave-assigned (still valid) partition is returned and `stop` is set.
#[allow(clippy::too_many_arguments)]
fn construct(
    engine: &ConstraintEngine<'_>,
    instance: &EmpInstance,
    col: usize,
    threshold: f64,
    rng: &mut StdRng,
    budget: &SolveBudget,
    stop: &mut Option<StopReason>,
    counters: &mut Counters,
) -> Partition {
    let n = instance.len();
    let graph = instance.graph();
    let attrs = instance.attributes();
    let mut partition = Partition::new(n);

    // Growing phase: seed regions in random order, absorb unassigned
    // neighbors until the threshold is met. The frontier is maintained
    // incrementally with epoch-stamped membership sets (absorbing an area
    // only adds its own unassigned neighbors), so a k-member growth walks
    // each adjacency once instead of rescanning all members per step.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut in_region = VisitScratch::new();
    let mut in_frontier = VisitScratch::new();
    let mut frontier: Vec<u32> = Vec::new();
    for &seed in &order {
        if !partition.is_unassigned(seed) {
            continue;
        }
        let mut members = vec![seed];
        let mut sum = attrs.value(col, seed as usize);
        in_region.begin(n);
        in_frontier.begin(n);
        in_region.mark(seed);
        frontier.clear();
        for &nb in graph.neighbors(seed) {
            if partition.is_unassigned(nb) && in_frontier.mark(nb) {
                frontier.push(nb);
            }
        }
        while sum < threshold {
            // Classic heuristic: absorb the frontier area with the largest
            // attribute value to reach the threshold quickly (keeps regions
            // small, maximizing p). Ties break toward the largest id — the
            // same winner the historical sorted-scan selection produced.
            let Some(best_at) = (0..frontier.len()).reduce(|best, i| {
                let (va, vb) = (
                    attrs.value(col, frontier[best] as usize),
                    attrs.value(col, frontier[i] as usize),
                );
                match va.partial_cmp(&vb) {
                    Some(std::cmp::Ordering::Greater) => best,
                    Some(std::cmp::Ordering::Less) => i,
                    _ => {
                        if frontier[i] > frontier[best] {
                            i
                        } else {
                            best
                        }
                    }
                }
            }) else {
                break;
            };
            let next = frontier.swap_remove(best_at);
            members.push(next);
            sum += attrs.value(col, next as usize);
            in_region.mark(next);
            for &nb in graph.neighbors(next) {
                if partition.is_unassigned(nb) && !in_region.is_marked(nb) && in_frontier.mark(nb) {
                    frontier.push(nb);
                }
            }
        }
        if sum >= threshold {
            // Commit: mark members assigned.
            partition.create_region(engine, &members);
            counters.inc(CounterKind::RegionsCreated);
        }
        // Failed growth leaves the areas unassigned (enclaves).
    }

    // Enclave assignment: attach leftovers to adjacent regions, choosing the
    // region whose objective increases least, until a fixpoint.
    loop {
        counters.inc(CounterKind::CancelPolls);
        if let Some(reason) = budget.poll() {
            if reason == StopReason::DeadlineExceeded {
                counters.inc(CounterKind::DeadlineExceeded);
            }
            *stop = Some(reason);
            break;
        }
        let mut changed = false;
        let mut enclaves = partition.unassigned();
        enclaves.shuffle(rng);
        for a in enclaves {
            if !partition.is_unassigned(a) {
                continue;
            }
            let candidates = partition.regions_adjacent_to_area(engine, a);
            let best = candidates.into_iter().min_by(|&r1, &r2| {
                let d1 = partition.insert_objective_delta(engine, r1, a);
                let d2 = partition.insert_objective_delta(engine, r2, a);
                d1.partial_cmp(&d2).unwrap_or(std::cmp::Ordering::Equal)
            });
            if let Some(r) = best {
                partition.add_to_region(engine, r, a);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    partition
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_core::attr::AttributeTable;
    use emp_core::validate::validate_solution;
    use emp_graph::ContiguityGraph;
    use rand::Rng;

    fn uniform_instance(n_side: usize, value: f64) -> EmpInstance {
        let n = n_side * n_side;
        let graph = ContiguityGraph::lattice(n_side, n_side);
        let mut attrs = AttributeTable::new(n);
        attrs.push_column("POP", vec![value; n]).unwrap();
        EmpInstance::new(graph, attrs, "POP").unwrap()
    }

    fn random_instance(n_side: usize, seed: u64) -> EmpInstance {
        let n = n_side * n_side;
        let graph = ContiguityGraph::lattice(n_side, n_side);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut attrs = AttributeTable::new(n);
        attrs
            .push_column("POP", (0..n).map(|_| rng.gen_range(50.0..500.0)).collect())
            .unwrap();
        attrs
            .push_column("HH", (0..n).map(|_| rng.gen_range(10.0..100.0)).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "HH").unwrap()
    }

    #[test]
    fn uniform_grid_partitions_fully() {
        // 6x6 grid of 100s with threshold 250 -> regions of 3 areas, p = 12.
        let inst = uniform_instance(6, 100.0);
        let report = solve_mp(&inst, "POP", 250.0, &MpConfig::seeded(1)).unwrap();
        assert!(report.p() >= 10, "p = {}", report.p());
        assert!(report.solution.unassigned.is_empty());
        let set = ConstraintSet::new().with(Constraint::sum("POP", 250.0, f64::INFINITY).unwrap());
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn p_respects_theoretical_bound() {
        // Total = 3600, threshold 1000 -> at most 3 regions.
        let inst = uniform_instance(6, 100.0);
        let report = solve_mp(&inst, "POP", 1000.0, &MpConfig::seeded(2)).unwrap();
        assert!(report.p() <= 3);
        assert!(report.p() >= 1);
    }

    #[test]
    fn infeasible_threshold_errors() {
        let inst = uniform_instance(3, 1.0);
        assert!(matches!(
            solve_mp(&inst, "POP", 100.0, &MpConfig::default()),
            Err(EmpError::Infeasible { .. })
        ));
        assert!(matches!(
            solve_mp(&inst, "NOPE", 1.0, &MpConfig::default()),
            Err(EmpError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn local_search_improves_or_preserves() {
        let inst = random_instance(8, 3);
        let report = solve_mp(&inst, "POP", 800.0, &MpConfig::seeded(4)).unwrap();
        assert!(report.solution.heterogeneity <= report.heterogeneity_before + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = random_instance(7, 9);
        let a = solve_mp(&inst, "POP", 600.0, &MpConfig::seeded(5)).unwrap();
        let b = solve_mp(&inst, "POP", 600.0, &MpConfig::seeded(5)).unwrap();
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn higher_threshold_gives_fewer_regions() {
        let inst = random_instance(10, 11);
        let lo = solve_mp(&inst, "POP", 500.0, &MpConfig::seeded(6)).unwrap();
        let hi = solve_mp(&inst, "POP", 2000.0, &MpConfig::seeded(6)).unwrap();
        assert!(hi.p() <= lo.p(), "hi {} vs lo {}", hi.p(), lo.p());
    }

    #[test]
    fn solution_is_valid_partition() {
        let inst = random_instance(9, 13);
        let report = solve_mp(&inst, "POP", 700.0, &MpConfig::seeded(7)).unwrap();
        let set = ConstraintSet::new().with(Constraint::sum("POP", 700.0, f64::INFINITY).unwrap());
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn budget_zero_returns_valid_empty_incumbent() {
        let inst = random_instance(8, 21);
        let (report, reason) = solve_mp_budgeted(
            &inst,
            "POP",
            800.0,
            &MpConfig::seeded(4),
            &SolveBudget::poll_limit(0),
        )
        .unwrap();
        assert_eq!(reason, StopReason::IterationBudget);
        assert_eq!(report.p(), 0);
        assert_eq!(report.solution.unassigned.len(), inst.len());
        let set = ConstraintSet::new().with(Constraint::sum("POP", 800.0, f64::INFINITY).unwrap());
        validate_solution(&inst, &set, &report.solution).unwrap();
    }

    #[test]
    fn interrupted_solve_keeps_valid_incumbent() {
        let inst = random_instance(8, 21);
        let set = ConstraintSet::new().with(Constraint::sum("POP", 800.0, f64::INFINITY).unwrap());
        // Cut at a spread of points through construction and tabu; every
        // incumbent must validate and carry a non-Completed stop reason.
        for limit in [1u64, 2, 3, 5, 8, 13, 21] {
            let (report, reason) = solve_mp_budgeted(
                &inst,
                "POP",
                800.0,
                &MpConfig::seeded(4),
                &SolveBudget::poll_limit(limit),
            )
            .unwrap();
            if reason == StopReason::Completed {
                continue; // budget outlived the whole solve
            }
            assert_eq!(reason, StopReason::IterationBudget);
            validate_solution(&inst, &set, &report.solution)
                .unwrap_or_else(|e| panic!("limit {limit}: {e:?}"));
        }
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_solve() {
        let inst = random_instance(7, 9);
        let plain = solve_mp(&inst, "POP", 600.0, &MpConfig::seeded(5)).unwrap();
        let (budgeted, reason) = solve_mp_budgeted(
            &inst,
            "POP",
            600.0,
            &MpConfig::seeded(5),
            &SolveBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(reason, StopReason::Completed);
        assert_eq!(plain.solution, budgeted.solution);
    }

    #[test]
    fn observed_solve_reports_spans_and_counters() {
        let inst = random_instance(8, 17);
        let sink = emp_obs::InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        let report =
            solve_mp_observed(&inst, "POP", 800.0, &MpConfig::seeded(8), &mut rec).unwrap();
        rec.finish();
        assert!(report.counters.get(CounterKind::RegionsCreated) >= report.p() as u64);
        assert_eq!(
            report.tabu.moves as u64,
            report.counters.get(CounterKind::TabuMovesApplied)
        );
        let data = handle.lock().unwrap();
        assert!(data.spans.iter().any(|s| s.name == "mp_construct"));
        assert!(data.spans.iter().any(|s| s.name == "tabu"));
        assert_eq!(report.trajectory.points(), data.trajectory.len() as u64);
    }
}
