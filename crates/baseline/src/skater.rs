//! Tree-partition regionalization (SKATER-style), the third family in the
//! paper's related work (§II: "the construction methods include tree
//! partition [5], [6]" — Assunção et al. 2006; Aydin et al. 2018).
//!
//! Phase 1 builds a minimum spanning tree of the contiguity graph with
//! dissimilarity edge weights `|d_i − d_j|`; phase 2 repeatedly removes the
//! tree edge whose removal most reduces total within-region heterogeneity,
//! until `k` regions exist (or no admissible split remains). Regions are
//! contiguous by construction (subtrees of a spanning tree of the contiguity
//! graph). Like the clustering family, it needs the region count `k` as
//! input and supports no enriched constraints beyond an optional minimum
//! region size — exactly the gap EMP fills.

use emp_core::control::{SolveBudget, StopReason};
use emp_core::heterogeneity::{total_heterogeneity, DissimStat};
use emp_core::instance::EmpInstance;
use emp_core::solution::Solution;
use emp_graph::{connected_components, VisitScratch};
use emp_obs::{CounterKind, Recorder};

/// Tree-partition parameters.
#[derive(Clone, Copy, Debug)]
pub struct SkaterConfig {
    /// Target number of regions (the user-supplied spatial scale).
    pub k: usize,
    /// Minimum areas per region; splits violating it are skipped.
    pub min_region_size: usize,
}

impl Default for SkaterConfig {
    fn default() -> Self {
        SkaterConfig {
            k: 8,
            min_region_size: 1,
        }
    }
}

/// Tree-partition output.
#[derive(Clone, Debug)]
pub struct SkaterReport {
    /// The resulting partition (all areas assigned).
    pub solution: Solution,
    /// Splits actually performed (`p = components + splits`).
    pub splits: usize,
}

/// Runs the SKATER-style baseline. Multi-component graphs get a spanning
/// forest: each component starts as one region.
pub fn solve_skater(instance: &EmpInstance, config: &SkaterConfig) -> SkaterReport {
    solve_skater_observed(instance, config, &mut Recorder::noop())
}

/// [`solve_skater`] reporting telemetry through `rec`: `mst` and `split`
/// spans plus a `skater_splits` note with the number of cuts performed.
pub fn solve_skater_observed(
    instance: &EmpInstance,
    config: &SkaterConfig,
    rec: &mut Recorder,
) -> SkaterReport {
    solve_skater_budgeted_observed(instance, config, &SolveBudget::unlimited(), rec).0
}

/// [`solve_skater`] under a cooperative [`SolveBudget`]: the split loop
/// polls the budget once per cut. An interrupted run returns the regions
/// split so far — always a valid, fully-assigned, contiguous partition
/// (at worst the untouched connected components) — plus the interrupting
/// [`StopReason`]; no checkpointing (the baseline is cheap to re-run).
pub fn solve_skater_budgeted(
    instance: &EmpInstance,
    config: &SkaterConfig,
    budget: &SolveBudget,
) -> (SkaterReport, StopReason) {
    solve_skater_budgeted_observed(instance, config, budget, &mut Recorder::noop())
}

/// [`solve_skater_budgeted`] reporting telemetry through `rec`.
pub fn solve_skater_budgeted_observed(
    instance: &EmpInstance,
    config: &SkaterConfig,
    budget: &SolveBudget,
    rec: &mut Recorder,
) -> (SkaterReport, StopReason) {
    let n = instance.len();
    let graph = instance.graph();
    let dissim = instance.dissimilarity();
    assert!(config.k >= 1);
    assert!(config.min_region_size >= 1);

    // Phase 1: MST/forest via Kruskal over |d_i - d_j| weights.
    rec.span_begin("mst", None);
    let mut edges: Vec<(f64, u32, u32)> = graph
        .edges()
        .map(|(i, j)| ((dissim[i as usize] - dissim[j as usize]).abs(), i, j))
        .collect();
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut dsu = Dsu::new(n);
    // Tree adjacency.
    let mut tree: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (_, i, j) in edges {
        if dsu.union(i as usize, j as usize) {
            tree[i as usize].push(j);
            tree[j as usize].push(i);
        }
    }
    rec.span_end();

    // Initial regions: the connected components (each spanned by its tree).
    let comps = connected_components(graph);
    let mut regions: Vec<Vec<u32>> = comps.members;
    rec.counters()
        .add(CounterKind::RegionsCreated, regions.len() as u64);
    let mut splits = 0usize;

    // Phase 2: greedy best-cut splitting until k regions.
    rec.span_begin("split", None);
    let mut stop: Option<StopReason> = None;
    let mut visited = VisitScratch::new();
    while regions.len() < config.k {
        rec.counters().inc(CounterKind::CancelPolls);
        if let Some(reason) = budget.poll() {
            if reason == StopReason::DeadlineExceeded {
                rec.counters().inc(CounterKind::DeadlineExceeded);
            }
            stop = Some(reason);
            break;
        }
        let mut best: Option<(usize, u32, u32, f64)> = None; // (region, a, b, reduction)
        for (ri, members) in regions.iter().enumerate() {
            if members.len() < 2 * config.min_region_size {
                continue;
            }
            let before = region_h(dissim, members);
            // Member lookup for the tree walk.
            let mut sorted = members.clone();
            sorted.sort_unstable();
            for &a in members {
                for &b in &tree[a as usize] {
                    if a < b && sorted.binary_search(&b).is_ok() {
                        // Cutting (a, b) splits this subtree in two.
                        let side = subtree_side(&tree, &sorted, a, b, &mut visited);
                        if side.len() < config.min_region_size
                            || members.len() - side.len() < config.min_region_size
                        {
                            continue;
                        }
                        let other: Vec<u32> = members
                            .iter()
                            .copied()
                            .filter(|m| side.binary_search(m).is_err())
                            .collect();
                        let reduction = before - region_h(dissim, &side) - region_h(dissim, &other);
                        if best.is_none_or(|(_, _, _, r)| reduction > r) {
                            best = Some((ri, a, b, reduction));
                        }
                    }
                }
            }
        }
        let Some((ri, a, b, _)) = best else {
            break; // no admissible split left
        };
        let members = regions.swap_remove(ri);
        let mut sorted = members.clone();
        sorted.sort_unstable();
        let side = subtree_side(&tree, &sorted, a, b, &mut visited);
        let other: Vec<u32> = members
            .into_iter()
            .filter(|m| side.binary_search(m).is_err())
            .collect();
        regions.push(side);
        regions.push(other);
        splits += 1;
        rec.counters().inc(CounterKind::RegionsCreated);
    }
    rec.span_end();
    rec.note("skater_splits", splits as f64);

    regions.iter_mut().for_each(|m| m.sort_unstable());
    regions.sort_by_key(|m| m[0]);
    let mut assignment = vec![None; n];
    for (ri, members) in regions.iter().enumerate() {
        for &a in members {
            assignment[a as usize] = Some(ri as u32);
        }
    }
    let heterogeneity = total_heterogeneity(dissim, &regions);
    (
        SkaterReport {
            solution: Solution {
                regions,
                assignment,
                unassigned: Vec::new(),
                heterogeneity,
            },
            splits,
        },
        stop.unwrap_or(StopReason::Completed),
    )
}

/// Pairwise heterogeneity of one member list.
fn region_h(dissim: &[f64], members: &[u32]) -> f64 {
    let vals: Vec<f64> = members.iter().map(|&a| dissim[a as usize]).collect();
    DissimStat::from_values(&vals).pairwise()
}

/// The members reachable from `b` in the tree without crossing edge
/// `(a, b)`, restricted to `sorted` membership. Sorted ascending. `visited`
/// is an epoch-stamped scratch reused across calls (O(1) dedup per probe).
fn subtree_side(
    tree: &[Vec<u32>],
    sorted: &[u32],
    a: u32,
    b: u32,
    visited: &mut VisitScratch,
) -> Vec<u32> {
    let mut side = Vec::new();
    let mut stack = vec![b];
    visited.begin(tree.len());
    visited.mark(b);
    while let Some(v) = stack.pop() {
        side.push(v);
        for &w in &tree[v as usize] {
            if (v == b && w == a) || visited.is_marked(w) {
                continue;
            }
            if sorted.binary_search(&w).is_ok() {
                visited.mark(w);
                stack.push(w);
            }
        }
    }
    side.sort_unstable();
    side
}

/// Disjoint-set union for Kruskal.
struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            self.parent[x] = self.find(self.parent[x]);
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_core::attr::AttributeTable;
    use emp_core::constraint::ConstraintSet;
    use emp_core::validate::validate_solution;
    use emp_graph::subgraph::is_connected_subset;
    use emp_graph::ContiguityGraph;

    fn instance(dissim: Vec<f64>, w: usize, h: usize) -> EmpInstance {
        let graph = ContiguityGraph::lattice(w, h);
        let mut attrs = AttributeTable::new(w * h);
        attrs
            .push_column("D", dissim.iter().map(|d| d.abs()).collect())
            .unwrap();
        EmpInstance::from_parts(graph, attrs, dissim).unwrap()
    }

    #[test]
    fn splits_along_dissimilarity_boundary() {
        // Left half d=0, right half d=100 on a 6x4 lattice: the first cut
        // should separate the halves exactly.
        let dissim: Vec<f64> = (0..24)
            .map(|i| if i % 6 < 3 { 0.0 } else { 100.0 })
            .collect();
        let inst = instance(dissim, 6, 4);
        let report = solve_skater(
            &inst,
            &SkaterConfig {
                k: 2,
                min_region_size: 1,
            },
        );
        assert_eq!(report.solution.p(), 2);
        assert_eq!(report.splits, 1);
        assert_eq!(report.solution.heterogeneity, 0.0, "perfect split");
        for members in &report.solution.regions {
            assert_eq!(members.len(), 12);
            assert!(is_connected_subset(inst.graph(), members));
        }
    }

    #[test]
    fn produces_k_contiguous_regions() {
        let dissim: Vec<f64> = (0..36).map(|i| ((i * 7) % 23) as f64).collect();
        let inst = instance(dissim, 6, 6);
        for k in [1usize, 3, 6, 12] {
            let report = solve_skater(
                &inst,
                &SkaterConfig {
                    k,
                    min_region_size: 1,
                },
            );
            assert_eq!(report.solution.p(), k, "k = {k}");
            validate_solution(&inst, &ConstraintSet::new(), &report.solution).unwrap();
        }
    }

    #[test]
    fn min_region_size_limits_splitting() {
        let dissim: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let inst = instance(dissim, 4, 4);
        let report = solve_skater(
            &inst,
            &SkaterConfig {
                k: 16,
                min_region_size: 4,
            },
        );
        // 16 areas / min 4 per region -> at most 4 regions.
        assert!(report.solution.p() <= 4);
        for members in &report.solution.regions {
            assert!(members.len() >= 4);
        }
    }

    #[test]
    fn multi_component_starts_from_forest() {
        let graph = ContiguityGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let mut attrs = AttributeTable::new(6);
        attrs.push_column("D", vec![1.0; 6]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let report = solve_skater(
            &inst,
            &SkaterConfig {
                k: 2,
                min_region_size: 1,
            },
        );
        assert_eq!(report.solution.p(), 2);
        assert_eq!(report.splits, 0, "components already satisfy k");
    }

    #[test]
    fn budget_interrupts_split_loop() {
        let dissim: Vec<f64> = (0..36).map(|i| ((i * 7) % 23) as f64).collect();
        let inst = instance(dissim, 6, 6);
        let config = SkaterConfig {
            k: 12,
            min_region_size: 1,
        };
        // Cut after two splits: the partial partition (3 regions) is still a
        // valid fully-assigned contiguous partition.
        let (report, reason) = solve_skater_budgeted(&inst, &config, &SolveBudget::poll_limit(2));
        assert_eq!(reason, StopReason::IterationBudget);
        assert_eq!(report.splits, 2);
        assert_eq!(report.solution.p(), 3);
        assert!(report.solution.unassigned.is_empty());
        validate_solution(&inst, &ConstraintSet::new(), &report.solution).unwrap();

        // An ample budget completes with the same result as unbudgeted.
        let (full, reason) = solve_skater_budgeted(&inst, &config, &SolveBudget::poll_limit(1_000));
        assert_eq!(reason, StopReason::Completed);
        assert_eq!(full.solution, solve_skater(&inst, &config).solution);
    }

    #[test]
    fn heterogeneity_monotone_in_k() {
        let dissim: Vec<f64> = (0..25).map(|i| ((i * 13) % 31) as f64).collect();
        let inst = instance(dissim, 5, 5);
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let report = solve_skater(
                &inst,
                &SkaterConfig {
                    k,
                    min_region_size: 1,
                },
            );
            assert!(report.solution.heterogeneity <= last + 1e-9);
            last = report.solution.heterogeneity;
        }
    }
}
