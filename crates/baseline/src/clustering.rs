//! The *other* regionalization family from the paper's related work (§II):
//! two-phase clustering methods (Openshaw 1973/1995 style).
//!
//! Phase 1 clusters area centroids (optionally extended with attribute
//! features) with k-means; phase 2 imposes spatial contiguity by splitting
//! every cluster into its connected components. The result illustrates the
//! limitation EMP removes: the user must supply the number of clusters `k`
//! (the spatial scale), no user-defined constraints are honored, and the
//! contiguity repair typically inflates the region count past `k`.

use emp_core::heterogeneity::total_heterogeneity;
use emp_core::instance::EmpInstance;
use emp_core::solution::Solution;
use emp_graph::{ContiguityGraph, VisitScratch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// K-means parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusteringConfig {
    /// Number of clusters (the spatial scale the user must guess).
    pub k: usize,
    /// Lloyd-iteration cap.
    pub max_iterations: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            k: 8,
            max_iterations: 50,
            seed: 0xC1,
        }
    }
}

/// Clustering-baseline output.
#[derive(Clone, Debug)]
pub struct ClusteringReport {
    /// The contiguity-repaired partition (regions may exceed `k`).
    pub solution: Solution,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Number of raw clusters before the contiguity split.
    pub raw_clusters: usize,
}

/// Runs the two-phase clustering baseline over per-area feature rows
/// (typically centroid `x`, `y`; attribute columns may be appended).
/// All areas are assigned (the method has no notion of `U_0`).
pub fn solve_clustering(
    instance: &EmpInstance,
    features: &[Vec<f64>],
    config: &ClusteringConfig,
) -> ClusteringReport {
    let n = instance.len();
    assert_eq!(features.len(), n, "one feature row per area");
    assert!(config.k >= 1, "k must be positive");
    let dim = features.first().map_or(0, Vec::len);
    debug_assert!(features.iter().all(|f| f.len() == dim));

    // Normalize each feature dimension to [0, 1] so centroids and attributes
    // mix on equal footing.
    let normalized = normalize(features, dim);

    // Phase 1: Lloyd's k-means with random-point initialization.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let k = config.k.min(n.max(1));
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f64>> = indices[..k]
        .iter()
        .map(|&i| normalized[i].clone())
        .collect();
    let mut assignment = vec![0usize; n];
    let mut iterations = 0usize;
    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut changed = false;
        for (i, row) in normalized.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    dist2(row, a)
                        .partial_cmp(&dist2(row, b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        if !changed && iterations > 1 {
            break;
        }
        // Recompute centroids; empty clusters keep their previous position.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, row) in normalized.iter().enumerate() {
            let c = assignment[i];
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for (ctr, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *ctr = s / counts[c] as f64;
                }
            }
        }
    }

    // Phase 2: impose contiguity — each cluster splits into its connected
    // components within the contiguity graph.
    let regions = split_into_components(instance.graph(), &assignment, k);
    let raw_clusters = {
        let mut used: Vec<usize> = assignment.clone();
        used.sort_unstable();
        used.dedup();
        used.len()
    };

    let mut out_assignment = vec![None; n];
    for (ri, members) in regions.iter().enumerate() {
        for &a in members {
            out_assignment[a as usize] = Some(ri as u32);
        }
    }
    let heterogeneity = total_heterogeneity(instance.dissimilarity(), &regions);
    ClusteringReport {
        solution: Solution {
            regions,
            assignment: out_assignment,
            unassigned: Vec::new(),
            heterogeneity,
        },
        iterations,
        raw_clusters,
    }
}

/// Convenience: clusters on polygon centroids only.
pub fn solve_clustering_spatial(
    instance: &EmpInstance,
    xs: &[f64],
    ys: &[f64],
    config: &ClusteringConfig,
) -> ClusteringReport {
    let features: Vec<Vec<f64>> = xs.iter().zip(ys).map(|(&x, &y)| vec![x, y]).collect();
    solve_clustering(instance, &features, config)
}

fn normalize(features: &[Vec<f64>], dim: usize) -> Vec<Vec<f64>> {
    let mut mins = vec![f64::INFINITY; dim];
    let mut maxs = vec![f64::NEG_INFINITY; dim];
    for row in features {
        for d in 0..dim {
            mins[d] = mins[d].min(row[d]);
            maxs[d] = maxs[d].max(row[d]);
        }
    }
    features
        .iter()
        .map(|row| {
            (0..dim)
                .map(|d| {
                    let span = maxs[d] - mins[d];
                    if span > 0.0 {
                        (row[d] - mins[d]) / span
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Splits cluster labels into spatially connected regions (sorted members,
/// regions ordered by smallest member).
fn split_into_components(
    graph: &ContiguityGraph,
    assignment: &[usize],
    _k: usize,
) -> Vec<Vec<u32>> {
    let n = assignment.len();
    let mut visited = VisitScratch::new();
    visited.begin(n);
    let mut regions = Vec::new();
    let mut stack = Vec::new();
    for start in 0..n {
        if visited.is_marked(start as u32) {
            continue;
        }
        let label = assignment[start];
        let mut members = Vec::new();
        stack.push(start as u32);
        visited.mark(start as u32);
        while let Some(v) = stack.pop() {
            members.push(v);
            for &w in graph.neighbors(v) {
                if assignment[w as usize] == label && visited.mark(w) {
                    stack.push(w);
                }
            }
        }
        members.sort_unstable();
        regions.push(members);
    }
    regions.sort_by_key(|m| m[0]);
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use emp_core::attr::AttributeTable;
    use emp_core::constraint::ConstraintSet;
    use emp_core::validate::validate_solution;
    use emp_graph::subgraph::is_connected_subset;

    /// 6x6 lattice with centroid coordinates as features.
    fn setup() -> (EmpInstance, Vec<f64>, Vec<f64>) {
        let n = 36;
        let graph = ContiguityGraph::lattice(6, 6);
        let mut attrs = AttributeTable::new(n);
        attrs
            .push_column("POP", (0..n).map(|i| 100.0 + i as f64).collect())
            .unwrap();
        let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
        let xs: Vec<f64> = (0..n).map(|i| (i % 6) as f64).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i / 6) as f64).collect();
        (instance, xs, ys)
    }

    #[test]
    fn produces_contiguous_complete_partition() {
        let (instance, xs, ys) = setup();
        let report = solve_clustering_spatial(&instance, &xs, &ys, &ClusteringConfig::default());
        assert!(report.solution.unassigned.is_empty());
        assert!(report.solution.p() >= report.raw_clusters.min(8));
        for members in &report.solution.regions {
            assert!(is_connected_subset(instance.graph(), members));
        }
        // A constraint-free validation passes (coverage + contiguity +
        // heterogeneity bookkeeping).
        validate_solution(&instance, &ConstraintSet::new(), &report.solution).unwrap();
    }

    #[test]
    fn spatial_clusters_are_compactish() {
        let (instance, xs, ys) = setup();
        let cfg = ClusteringConfig {
            k: 4,
            ..Default::default()
        };
        let report = solve_clustering_spatial(&instance, &xs, &ys, &cfg);
        // Spatially coherent features: contiguity repair rarely splits, so
        // p stays near k.
        assert!(report.solution.p() <= 8, "p = {}", report.solution.p());
    }

    #[test]
    fn k_equals_one_gives_components() {
        let (instance, xs, ys) = setup();
        let cfg = ClusteringConfig {
            k: 1,
            ..Default::default()
        };
        let report = solve_clustering_spatial(&instance, &xs, &ys, &cfg);
        assert_eq!(report.solution.p(), 1); // single connected lattice
    }

    #[test]
    fn deterministic_given_seed() {
        let (instance, xs, ys) = setup();
        let a = solve_clustering_spatial(&instance, &xs, &ys, &ClusteringConfig::default());
        let b = solve_clustering_spatial(&instance, &xs, &ys, &ClusteringConfig::default());
        assert_eq!(a.solution, b.solution);
    }

    #[test]
    fn attribute_features_pull_clusters_apart() {
        // Two attribute blobs on one lattice: clustering on the attribute
        // separates them even where space alone would not.
        let n = 36;
        let graph = ContiguityGraph::lattice(6, 6);
        let mut attrs = AttributeTable::new(n);
        let vals: Vec<f64> = (0..n)
            .map(|i| if i % 6 < 3 { 10.0 } else { 1000.0 })
            .collect();
        attrs.push_column("POP", vals.clone()).unwrap();
        let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![vals[i]]).collect();
        let cfg = ClusteringConfig {
            k: 2,
            ..Default::default()
        };
        let report = solve_clustering(&instance, &features, &cfg);
        // The two attribute halves are each spatially connected columns, so
        // exactly two regions emerge.
        assert_eq!(report.solution.p(), 2);
    }

    #[test]
    fn contiguity_repair_inflates_fragmented_clusters() {
        // Features that interleave spatially (checkerboard parity) force the
        // repair phase to split clusters into many regions — the weakness
        // the paper's §II points out.
        let n = 36;
        let graph = ContiguityGraph::lattice(6, 6);
        let mut attrs = AttributeTable::new(n);
        attrs.push_column("POP", vec![1.0; n]).unwrap();
        let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let (x, y) = (i % 6, i / 6);
                vec![((x + y) % 2) as f64 * 100.0]
            })
            .collect();
        let cfg = ClusteringConfig {
            k: 2,
            ..Default::default()
        };
        let report = solve_clustering(&instance, &features, &cfg);
        assert_eq!(report.raw_clusters, 2);
        // A 4-connected checkerboard has no same-color adjacency: every cell
        // becomes its own region.
        assert_eq!(report.solution.p(), 36);
    }
}
