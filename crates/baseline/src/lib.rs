//! # emp-baseline — the classic max-p-regions heuristic
//!
//! The EMP paper's Table IV compares FaCT against the state of the art for
//! the original max-p-regions problem (`MP` rows): a single `SUM(attr) ≥ t`
//! threshold, all areas assigned, heuristic construction plus tabu search
//! (Duque, Anselin & Rey 2012; Wei, Rey & Knaap 2020). This crate implements
//! that baseline from scratch:
//!
//! * greedy growing-phase construction — seed a region, absorb unassigned
//!   neighbors until the threshold is met, repeat; leftover areas become
//!   enclaves assigned to neighboring regions afterwards;
//! * multiple construction iterations keeping the best `p`;
//! * the same tabu local search as FaCT (the baseline's search phase is the
//!   standard move-based tabu over a fixed `p`).
//!
//! ```
//! use emp_baseline::{solve_mp, MpConfig};
//! use emp_core::prelude::*;
//! use emp_graph::ContiguityGraph;
//!
//! let graph = ContiguityGraph::lattice(4, 4);
//! let mut attrs = AttributeTable::new(16);
//! attrs.push_column("POP", vec![100.0; 16]).unwrap();
//! let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
//! let report = solve_mp(&instance, "POP", 250.0, &MpConfig::default()).unwrap();
//! assert!(report.solution.p() >= 1);
//! ```

#![warn(missing_docs)]

pub mod clustering;
pub mod mp_regions;
pub mod skater;

pub use clustering::{
    solve_clustering, solve_clustering_spatial, ClusteringConfig, ClusteringReport,
};
pub use mp_regions::{
    mp_feasibility, solve_mp, solve_mp_budgeted, solve_mp_budgeted_observed, solve_mp_observed,
    MpConfig, MpReport,
};
pub use skater::{
    solve_skater, solve_skater_budgeted, solve_skater_budgeted_observed, solve_skater_observed,
    SkaterConfig, SkaterReport,
};
