//! # emp-oracle — differential & metamorphic testing oracle for EMP
//!
//! The FaCT heuristic has no ground truth on real data, which makes its
//! bugs quiet: a wrong `p`, a stale heterogeneity, a constraint violation
//! that validation tolerance happens to hide. This crate turns the rest of
//! the workspace into an oracle for itself:
//!
//! * [`generator`] — seeded, dependency-free instance generation covering
//!   all five aggregate families, tight/infeasible bounds, multi-component
//!   maps, and degenerate attribute layouts;
//! * [`differential`] — FaCT vs the exact branch-and-bound (`p ≤ p*`,
//!   no false infeasibility) and vs classic MP-regions feasibility on the
//!   sum-threshold subset, plus full solution validation;
//! * [`metamorphic`] — four relations (area permutation, power-of-two
//!   attribute scaling, region relabeling, appended dummy component) whose
//!   transformed solutions must stay valid with predictable objectives;
//! * [`harness`] — the generate→solve→check loop with corpus persistence;
//! * [`repro`] — lossless JSON repro files under `results/corpus/`;
//! * [`minimize`] — greedy shrinking of failing cases.
//!
//! The `fuzz_check` binary in `emp-bench` drives [`harness`] in CI: replay
//! the committed corpus, then a fresh seeded sweep, both deterministic.
//!
//! ```
//! use emp_oracle::prelude::*;
//!
//! let case = generate_case(42);
//! let outcome = differential_check(&case, 200_000);
//! assert!(outcome.violations.is_empty());
//! ```

pub mod differential;
pub mod generator;
pub mod harness;
pub mod metamorphic;
pub mod minimize;
pub mod repro;

pub use differential::{differential_check, DiffOutcome, Violation};
pub use generator::{generate_case, OracleCase, SplitMix64};
pub use harness::{fuzz_sweep, replay_corpus, run_case, CaseReport, FuzzOptions, FuzzReport};
pub use metamorphic::{check_relation, Relation};
pub use minimize::{minimize, MinimizeOptions};
pub use repro::{case_from_json, case_to_json, load_case, load_corpus, save_case};

/// Convenient glob import for tests and binaries.
pub mod prelude {
    pub use crate::differential::{differential_check, DiffOutcome, Violation};
    pub use crate::generator::{generate_case, OracleCase, SplitMix64};
    pub use crate::harness::{
        fuzz_sweep, replay_corpus, run_case, CaseReport, FuzzOptions, FuzzReport,
    };
    pub use crate::metamorphic::{check_relation, Relation};
    pub use crate::minimize::{minimize, MinimizeOptions};
    pub use crate::repro::{load_case, load_corpus, save_case};
}
