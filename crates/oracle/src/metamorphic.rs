//! Metamorphic relations: instance transformations with known effects.
//!
//! A heuristic has no single "expected output", but transformed inputs have
//! provable relations to the original. Each relation here is an *instance
//! transformer* plus a *solution mapper*: the mapped base solution must
//! remain valid (and keep its `p`, feasibility, and — suitably transformed —
//! heterogeneity) on the transformed instance.
//!
//! | relation | transformer | mapper | invariant |
//! |---|---|---|---|
//! | `PermuteAreas` | relabel area ids by a random permutation | map region members through the permutation | validity, `p`, heterogeneity; hard infeasibility is preserved |
//! | `ScaleAttributes` | multiply all columns and non-COUNT bounds by a positive power of two | same regions | validity, `p`, unassigned count, `h' = k·h`; identical regions when local search is off (tabu uses absolute `1e-9` epsilons that are not scale-invariant) |
//! | `RelabelRegions` | none | rotate region order, rebuild `assignment` | validity, `p`, heterogeneity |
//! | `AppendDummyComponent` | add a disconnected 3-area path with zero attributes | same regions, dummies in `U_0` | validity, `p`, heterogeneity |
//!
//! Scaling by *powers of two* makes float comparisons exact: every
//! aggregate (SUM, MIN, MAX, AVG) and every pairwise dissimilarity scales
//! without rounding, so scale-equivariance checks need no tolerance.

use crate::differential::Violation;
use crate::generator::{OracleCase, SplitMix64};
use emp_core::constraint::{Aggregate, Constraint, ConstraintSet};
use emp_core::error::EmpError;
use emp_core::solution::Solution;
use emp_core::solver::solve;
use emp_core::validate::validate_solution;

/// The supported metamorphic relations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// Random area-id relabeling.
    PermuteAreas,
    /// Positive power-of-two attribute (and bound) scaling.
    ScaleAttributes,
    /// Region-order rotation (no instance change).
    RelabelRegions,
    /// Append a disconnected zero-attribute dummy component.
    AppendDummyComponent,
}

impl Relation {
    /// Every relation, in check order.
    pub const ALL: [Relation; 4] = [
        Relation::PermuteAreas,
        Relation::ScaleAttributes,
        Relation::RelabelRegions,
        Relation::AppendDummyComponent,
    ];

    /// Stable name used in violation kinds and reports.
    pub fn name(self) -> &'static str {
        match self {
            Relation::PermuteAreas => "permute-areas",
            Relation::ScaleAttributes => "scale-attributes",
            Relation::RelabelRegions => "relabel-regions",
            Relation::AppendDummyComponent => "append-dummy-component",
        }
    }
}

/// Checks one relation against a case. `base` is FaCT's solution on the
/// untransformed case (`None` when FaCT declared it hard-infeasible).
/// Returns all violations found (empty = relation holds).
pub fn check_relation(
    case: &OracleCase,
    base: Option<&Solution>,
    relation: Relation,
) -> Vec<Violation> {
    match relation {
        Relation::PermuteAreas => check_permute(case, base),
        Relation::ScaleAttributes => check_scale(case, base),
        Relation::RelabelRegions => check_relabel(case, base),
        Relation::AppendDummyComponent => check_dummy(case, base),
    }
}

fn violation(relation: Relation, details: impl Into<String>) -> Violation {
    Violation::new(format!("metamorphic-{}", relation.name()), details)
}

/// Relative heterogeneity agreement (permutations reorder float summation).
fn h_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

fn check_permute(case: &OracleCase, base: Option<&Solution>) -> Vec<Violation> {
    let rel = Relation::PermuteAreas;
    let mut rng = SplitMix64::new(case.seed ^ 0x9E12_57AE);
    let n = case.n;
    // Fisher–Yates permutation: perm[old] = new.
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.range(0, i));
    }

    let mut permuted = case.clone();
    permuted.name = format!("{}-perm", case.name);
    permuted.edges = case
        .edges
        .iter()
        .map(|&(a, b)| (perm[a as usize], perm[b as usize]))
        .collect();
    for (new_col, old_col) in permuted.attr_columns.iter_mut().zip(&case.attr_columns) {
        for (old_idx, &v) in old_col.iter().enumerate() {
            new_col[perm[old_idx] as usize] = v;
        }
    }

    let instance = match permuted.instance() {
        Ok(i) => i,
        Err(e) => {
            return vec![violation(
                rel,
                format!("permuted instance failed to build: {e}"),
            )]
        }
    };

    let Some(base) = base else {
        // Hard infeasibility is a property of the multiset of attribute
        // values and the component structure; a relabeling preserves both.
        return match solve(&instance, &case.constraints, &case.solve_config()) {
            Err(EmpError::Infeasible { .. }) => vec![],
            Ok(r) => vec![violation(
                rel,
                format!(
                    "base was infeasible but permuted instance solved with p = {}",
                    r.p()
                ),
            )],
            Err(e) => vec![violation(rel, format!("permuted solve error: {e}"))],
        };
    };

    let mapped_regions: Vec<Vec<u32>> = base
        .regions
        .iter()
        .map(|members| members.iter().map(|&a| perm[a as usize]).collect())
        .collect();
    let mapped = match Solution::from_regions(&instance, mapped_regions) {
        Ok(s) => s,
        Err(e) => return vec![violation(rel, format!("mapped solution invalid: {e}"))],
    };
    let mut out = Vec::new();
    if mapped.p() != base.p() {
        out.push(violation(
            rel,
            format!("p changed: {} -> {}", base.p(), mapped.p()),
        ));
    }
    if !h_close(mapped.heterogeneity, base.heterogeneity) {
        out.push(violation(
            rel,
            format!(
                "heterogeneity changed: {} -> {}",
                base.heterogeneity, mapped.heterogeneity
            ),
        ));
    }
    if let Err(problems) = validate_solution(&instance, &case.constraints, &mapped) {
        for p in problems {
            out.push(violation(rel, format!("mapped solution: {p}")));
        }
    }
    out
}

/// Scales every non-COUNT constraint bound by `k` (`±∞` scales to itself).
fn scale_constraints(set: &ConstraintSet, k: f64) -> Result<ConstraintSet, EmpError> {
    let mut out = ConstraintSet::new();
    for c in set.constraints() {
        if c.aggregate == Aggregate::Count {
            out.push(c.clone());
        } else {
            out.push(Constraint::new(
                c.aggregate,
                c.attribute.clone(),
                c.low * k,
                c.high * k,
            )?);
        }
    }
    Ok(out)
}

fn check_scale(case: &OracleCase, base: Option<&Solution>) -> Vec<Violation> {
    let rel = Relation::ScaleAttributes;
    let mut rng = SplitMix64::new(case.seed ^ 0x5CA1_EAB1);
    let k = [0.25, 0.5, 2.0, 4.0][rng.range(0, 3)];

    let mut scaled = case.clone();
    scaled.name = format!("{}-scale", case.name);
    for col in &mut scaled.attr_columns {
        for v in col.iter_mut() {
            *v *= k;
        }
    }
    scaled.constraints = match scale_constraints(&case.constraints, k) {
        Ok(s) => s,
        Err(e) => return vec![violation(rel, format!("scaled constraints invalid: {e}"))],
    };

    let instance = match scaled.instance() {
        Ok(i) => i,
        Err(e) => {
            return vec![violation(
                rel,
                format!("scaled instance failed to build: {e}"),
            )]
        }
    };

    let mut out = Vec::new();

    // Mapped-solution direction: the base regions must stay valid with
    // exactly k-scaled heterogeneity (power-of-two scaling is lossless).
    // The baseline is a *fresh* recompute on the original instance: the
    // solver's reported value is incrementally maintained and can differ
    // in the last ulp, which exact equality would flag as a fake bug.
    if let Some(base) = base {
        let base_fresh = match case.instance() {
            Ok(original) => emp_core::recompute_heterogeneity(&original, base),
            Err(e) => {
                return vec![violation(
                    rel,
                    format!("base instance failed to build: {e}"),
                )]
            }
        };
        match Solution::from_regions(&instance, base.regions.clone()) {
            Ok(mapped) => {
                if mapped.heterogeneity != k * base_fresh {
                    out.push(violation(
                        rel,
                        format!(
                            "heterogeneity not scale-equivariant: {base_fresh} * {k} != {}",
                            mapped.heterogeneity
                        ),
                    ));
                }
                if let Err(problems) = validate_solution(&instance, &scaled.constraints, &mapped) {
                    for p in problems {
                        out.push(violation(rel, format!("mapped solution: {p}")));
                    }
                }
            }
            Err(e) => out.push(violation(rel, format!("mapped solution invalid: {e}"))),
        }
    }

    // Re-solve direction: every solver decision compares quantities that
    // scale exactly by the power of two, so p, feasibility, and unassigned
    // count must be preserved. The tabu phase uses absolute 1e-9 epsilons
    // (aspiration/acceptance) that are not scale-invariant, so identical
    // region structure is asserted only when local search is off.
    match (
        solve(&instance, &scaled.constraints, &case.solve_config()),
        base,
    ) {
        (Ok(rescaled), Some(base)) => {
            if rescaled.p() != base.p() {
                out.push(violation(
                    rel,
                    format!("re-solve p changed: {} -> {}", base.p(), rescaled.p()),
                ));
            }
            if rescaled.solution.unassigned.len() != base.unassigned.len() {
                out.push(violation(
                    rel,
                    format!(
                        "re-solve unassigned changed: {} -> {}",
                        base.unassigned.len(),
                        rescaled.solution.unassigned.len()
                    ),
                ));
            }
            if !case.fact.local_search && rescaled.solution.regions != base.regions {
                out.push(violation(
                    rel,
                    "re-solve regions diverged without local search",
                ));
            }
        }
        (Err(EmpError::Infeasible { .. }), None) => {}
        (Ok(r), None) => out.push(violation(
            rel,
            format!(
                "base was infeasible but scaled instance solved with p = {}",
                r.p()
            ),
        )),
        (Err(e), Some(_)) => out.push(violation(rel, format!("scaled solve failed: {e}"))),
        (Err(e), None) => out.push(violation(rel, format!("scaled solve error: {e}"))),
    }
    out
}

fn check_relabel(case: &OracleCase, base: Option<&Solution>) -> Vec<Violation> {
    let rel = Relation::RelabelRegions;
    let Some(base) = base else { return vec![] };
    if base.p() < 2 {
        return vec![];
    }
    let instance = match case.instance() {
        Ok(i) => i,
        Err(e) => return vec![violation(rel, format!("instance failed to build: {e}"))],
    };
    // Rotate region order by one; the output contract does not require
    // canonical region numbering, only internal consistency.
    let mut regions = base.regions.clone();
    regions.rotate_left(1);
    let mut assignment = vec![None; case.n];
    for (ri, members) in regions.iter().enumerate() {
        for &a in members {
            assignment[a as usize] = Some(ri as u32);
        }
    }
    let rotated = Solution {
        regions,
        assignment,
        unassigned: base.unassigned.clone(),
        heterogeneity: base.heterogeneity,
    };
    match validate_solution(&instance, &case.constraints, &rotated) {
        Ok(()) => vec![],
        Err(problems) => problems
            .into_iter()
            .map(|p| violation(rel, format!("rotated solution: {p}")))
            .collect(),
    }
}

fn check_dummy(case: &OracleCase, base: Option<&Solution>) -> Vec<Violation> {
    let rel = Relation::AppendDummyComponent;
    let Some(base) = base else { return vec![] };

    let mut extended = case.clone();
    extended.name = format!("{}-dummy", case.name);
    let n = case.n as u32;
    extended.n = case.n + 3;
    extended.edges.push((n, n + 1));
    extended.edges.push((n + 1, n + 2));
    for col in &mut extended.attr_columns {
        col.extend([0.0, 0.0, 0.0]);
    }

    let instance = match extended.instance() {
        Ok(i) => i,
        Err(e) => {
            return vec![violation(
                rel,
                format!("extended instance failed to build: {e}"),
            )]
        }
    };

    // The base regions with all dummies in U_0: p and heterogeneity must be
    // untouched (U_0 contributes nothing to the objective). Compare against
    // a fresh recompute — the solver's reported value is incrementally
    // maintained and can differ in the last ulp.
    let base_fresh = match case.instance() {
        Ok(original) => emp_core::recompute_heterogeneity(&original, base),
        Err(e) => {
            return vec![violation(
                rel,
                format!("base instance failed to build: {e}"),
            )]
        }
    };
    let mapped = match Solution::from_regions(&instance, base.regions.clone()) {
        Ok(s) => s,
        Err(e) => return vec![violation(rel, format!("mapped solution invalid: {e}"))],
    };
    let mut out = Vec::new();
    if mapped.p() != base.p() {
        out.push(violation(
            rel,
            format!("p changed: {} -> {}", base.p(), mapped.p()),
        ));
    }
    if mapped.heterogeneity != base_fresh {
        out.push(violation(
            rel,
            format!(
                "heterogeneity changed: {base_fresh} -> {}",
                mapped.heterogeneity
            ),
        ));
    }
    if mapped.unassigned.len() != base.unassigned.len() + 3 {
        out.push(violation(
            rel,
            format!(
                "expected exactly 3 extra unassigned, got {}",
                mapped.unassigned.len()
            ),
        ));
    }
    if let Err(problems) = validate_solution(&instance, &case.constraints, &mapped) {
        for p in problems {
            out.push(violation(rel, format!("mapped solution: {p}")));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::differential_check;
    use crate::generator::generate_case;

    #[test]
    fn relations_hold_on_seed_battery() {
        for seed in 0..25u64 {
            let case = generate_case(seed);
            let out = differential_check(&case, 100_000);
            assert!(
                out.violations.is_empty(),
                "differential: {:?}",
                out.violations
            );
            for relation in Relation::ALL {
                let v = check_relation(&case, out.fact_solution.as_ref(), relation);
                assert!(
                    v.is_empty(),
                    "case {} relation {relation:?}: {v:?}",
                    case.name
                );
            }
        }
    }

    #[test]
    fn relation_names_are_stable() {
        let names: Vec<&str> = Relation::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "permute-areas",
                "scale-attributes",
                "relabel-regions",
                "append-dummy-component"
            ]
        );
    }
}
