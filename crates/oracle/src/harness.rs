//! Fuzz harness: generate → solve → differential check → metamorphic
//! relations, with corpus persistence for anything that fails.
//!
//! Everything here is deterministic given the seed range and options: the
//! generator has no global RNG, the solvers are seeded, and corpus replay
//! walks files in sorted name order. Two consecutive runs with the same
//! inputs produce identical reports (timing lives outside the report).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::differential::{differential_check, Violation};
use crate::generator::{generate_case, OracleCase};
use crate::metamorphic::{check_relation, Relation};
use crate::minimize::{minimize, MinimizeOptions};
use crate::repro::{load_corpus, save_case};
use emp_core::control::{SolveBudget, StopReason};
use emp_core::error::EmpError;
use emp_core::solver::solve_budgeted;
use emp_core::validate::validate_solution;

/// Harness tuning.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Node budget for the exact reference solver.
    pub exact_nodes: u64,
    /// Run the four metamorphic relations on each case.
    pub metamorphic: bool,
    /// Minimize failing cases before persisting them.
    pub minimize: bool,
    /// Where to persist failing cases (`None` = don't persist).
    pub corpus_dir: Option<PathBuf>,
    /// Wall-clock budget for a sweep (`None` = run every seed). When the
    /// budget trips, the sweep stops after the current case and the report
    /// notes the truncation — truncated runs are not byte-comparable.
    pub budget: Option<Duration>,
    /// Run the budget fuzz pass on each case: re-solve under a spread of
    /// tight [`SolveBudget`]s (including zero) and check every incumbent
    /// validates with a stop reason consistent with its checkpoint.
    pub budget_probes: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            exact_nodes: 200_000,
            metamorphic: true,
            minimize: true,
            corpus_dir: None,
            budget: None,
            budget_probes: true,
        }
    }
}

/// What one case produced.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// Case name (repro file stem).
    pub name: String,
    /// Generator seed (`0` for corpus files replayed from disk — the file
    /// carries its own seed, echoed here).
    pub seed: u64,
    /// FaCT's `p`, `None` when hard-infeasible.
    pub p_fact: Option<usize>,
    /// Exact `p*` when the search completed.
    pub p_exact: Option<usize>,
    /// Whether the FaCT-vs-exact comparison happened.
    pub compared: bool,
    /// Whether the MP-regions cross-check applied.
    pub mp_checked: bool,
    /// Stop reason of the first *violating* budget probe
    /// ([`StopReason::Completed`] when the budget pass found nothing or was
    /// disabled); persisted into the repro file so interruption bugs replay
    /// with their cut context.
    pub stop_reason: StopReason,
    /// Every violation from the differential pass and all relations.
    pub violations: Vec<Violation>,
}

/// Aggregate outcome of a sweep or replay.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Per-case reports, in execution order.
    pub cases: Vec<CaseReport>,
    /// Repro files written this run.
    pub saved: Vec<PathBuf>,
    /// Whether a wall-clock budget truncated the sweep.
    pub truncated: bool,
}

impl FuzzReport {
    /// Cases where the exact comparison completed.
    pub fn compared(&self) -> usize {
        self.cases.iter().filter(|c| c.compared).count()
    }

    /// Cases where the MP cross-check applied.
    pub fn mp_checked(&self) -> usize {
        self.cases.iter().filter(|c| c.mp_checked).count()
    }

    /// Total violations across all cases.
    pub fn violation_count(&self) -> usize {
        self.cases.iter().map(|c| c.violations.len()).sum()
    }

    /// One-line machine-grepable summary (stable across identical runs).
    pub fn summary_line(&self, label: &str) -> String {
        format!(
            "{label}: cases={} compared={} mp_checked={} violations={} saved={}{}",
            self.cases.len(),
            self.compared(),
            self.mp_checked(),
            self.violation_count(),
            self.saved.len(),
            if self.truncated { " truncated=yes" } else { "" },
        )
    }
}

/// Poll-count cut points for the budget fuzz pass. Small primes plus zero:
/// zero exercises the "no work done at all" incumbent, the rest land at
/// assorted construction/tabu iteration boundaries.
const BUDGET_PROBE_CUTS: [u64; 5] = [0, 1, 3, 7, 19];

/// Budget fuzz pass: re-solves the case under a spread of tight budgets and
/// checks the lifecycle contract — every interrupted solve must hand back a
/// `validate`-clean incumbent, and `stop_reason == Completed` exactly when
/// there is no checkpoint. Returns the violations plus the stop reason of
/// the first violating probe ([`StopReason::Completed`] when clean).
fn budget_probe(case: &OracleCase) -> (Vec<Violation>, StopReason) {
    let instance = match case.instance() {
        Ok(instance) => instance,
        // Generator/compile failures are the differential pass's problem.
        Err(_) => return (Vec::new(), StopReason::Completed),
    };
    let mut violations = Vec::new();
    let mut first_stop = StopReason::Completed;
    let mut record = |probe: &str, reason: StopReason, detail: String| {
        if violations.is_empty() {
            first_stop = reason;
        }
        violations.push(Violation::new("budget", format!("probe {probe}: {detail}")));
    };
    let budgets: Vec<(String, SolveBudget)> = BUDGET_PROBE_CUTS
        .iter()
        .map(|&k| (format!("poll_limit({k})"), SolveBudget::poll_limit(k)))
        .chain(std::iter::once((
            "deadline_ms(0)".to_string(),
            SolveBudget::deadline_ms(0),
        )))
        .collect();
    for (probe, budget) in &budgets {
        match solve_budgeted(&instance, &case.constraints, &case.solve_config(), budget) {
            Ok(outcome) => {
                if let Err(errors) =
                    validate_solution(&instance, &case.constraints, &outcome.report.solution)
                {
                    record(
                        probe,
                        outcome.stop_reason,
                        format!(
                            "incumbent fails validation under {:?}: {:?}",
                            outcome.stop_reason, errors
                        ),
                    );
                    continue;
                }
                let completed = outcome.stop_reason == StopReason::Completed;
                if completed == outcome.checkpoint.is_some() {
                    record(
                        probe,
                        outcome.stop_reason,
                        format!(
                            "stop reason {:?} inconsistent with checkpoint presence {}",
                            outcome.stop_reason,
                            outcome.checkpoint.is_some()
                        ),
                    );
                }
            }
            // Feasibility always runs to completion, so infeasibility under
            // a budget matches the unbudgeted verdict — not a violation.
            Err(EmpError::Infeasible { .. }) => {}
            Err(e) => {
                record(
                    probe,
                    StopReason::Completed,
                    format!("unexpected error {e}"),
                );
            }
        }
    }
    (violations, first_stop)
}

/// Runs the differential pass, (optionally) all metamorphic relations, and
/// (optionally) the budget fuzz pass on one case.
pub fn run_case(case: &OracleCase, options: &FuzzOptions) -> CaseReport {
    let outcome = differential_check(case, options.exact_nodes);
    let mut violations = outcome.violations.clone();
    if options.metamorphic {
        for relation in Relation::ALL {
            violations.extend(check_relation(
                case,
                outcome.fact_solution.as_ref(),
                relation,
            ));
        }
    }
    let mut stop_reason = StopReason::Completed;
    if options.budget_probes {
        let (budget_violations, first_stop) = budget_probe(case);
        stop_reason = first_stop;
        violations.extend(budget_violations);
    }
    CaseReport {
        name: case.name.clone(),
        seed: case.seed,
        p_fact: outcome.p_fact,
        p_exact: outcome.p_exact,
        compared: outcome.compared,
        mp_checked: outcome.mp_checked,
        stop_reason,
        violations,
    }
}

/// Re-checks a case and reports whether it still fails — the minimizer's
/// predicate. Metamorphic relations are included so relation-only failures
/// minimize too.
fn case_fails(case: &OracleCase, options: &FuzzOptions) -> bool {
    !run_case(case, options).violations.is_empty()
}

/// Persists a failing case (after optional minimization). Returns the repro
/// path, or `None` when no corpus directory is configured.
fn persist_failure(
    case: &OracleCase,
    violations: &[Violation],
    options: &FuzzOptions,
) -> Option<PathBuf> {
    let dir = options.corpus_dir.as_deref()?;
    let mut to_save = case.clone();
    if options.minimize {
        let (min, _probes) = minimize(
            case,
            &|candidate| case_fails(candidate, options),
            MinimizeOptions::default(),
        );
        // Guard against a flaky predicate: only keep the minimized form if
        // it still fails on a final re-check.
        if case_fails(&min, options) {
            to_save = min;
        }
    }
    let recheck = run_case(&to_save, options);
    let saved_violations = if recheck.violations.is_empty() {
        violations
    } else {
        &recheck.violations
    };
    save_case(dir, &to_save, saved_violations, recheck.stop_reason).ok()
}

/// Sweeps `seeds` through the full oracle. Failing cases are minimized and
/// persisted into the corpus directory when one is configured.
pub fn fuzz_sweep<I: IntoIterator<Item = u64>>(seeds: I, options: &FuzzOptions) -> FuzzReport {
    let started = Instant::now();
    let mut report = FuzzReport::default();
    for seed in seeds {
        if let Some(budget) = options.budget {
            if started.elapsed() > budget {
                report.truncated = true;
                break;
            }
        }
        let case = generate_case(seed);
        let case_report = run_case(&case, options);
        if !case_report.violations.is_empty() {
            if let Some(path) = persist_failure(&case, &case_report.violations, options) {
                report.saved.push(path);
            }
        }
        report.cases.push(case_report);
    }
    report
}

/// Replays every repro in `dir` (sorted by file name). Corpus cases are
/// expected to keep failing until the underlying bug is fixed, at which
/// point the file is deleted by hand; replay itself only reports.
pub fn replay_corpus(dir: &Path, options: &FuzzOptions) -> Result<FuzzReport, String> {
    let mut report = FuzzReport::default();
    for (_path, case) in load_corpus(dir)? {
        report.cases.push(run_case(&case, options));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> FuzzOptions {
        FuzzOptions {
            exact_nodes: 100_000,
            metamorphic: true,
            minimize: false,
            corpus_dir: None,
            budget: None,
            budget_probes: false,
        }
    }

    #[test]
    fn sweep_is_deterministic_and_clean() {
        let options = quick_options();
        let a = fuzz_sweep(0..20u64, &options);
        let b = fuzz_sweep(0..20u64, &options);
        assert_eq!(a.violation_count(), 0, "violations: {:#?}", a.cases);
        assert_eq!(format!("{:?}", a.cases), format!("{:?}", b.cases));
        assert_eq!(a.summary_line("sweep"), b.summary_line("sweep"));
        assert!(a.compared() >= 10, "only {} compared", a.compared());
    }

    #[test]
    fn failing_cases_are_persisted_and_replayable() {
        // Sabotage the oracle by shrinking the exact node budget to zero
        // nodes... that truncates rather than fails, so instead persist a
        // hand-made failure: replay machinery is what's under test.
        let dir = std::env::temp_dir().join("emp-oracle-harness-test");
        let _ = std::fs::remove_dir_all(&dir);
        let case = generate_case(2);
        save_case(
            &dir,
            &case,
            &[Violation::new("synthetic", "planted for replay test")],
            StopReason::Completed,
        )
        .unwrap();
        let options = quick_options();
        let replayed = replay_corpus(&dir, &options).unwrap();
        assert_eq!(replayed.cases.len(), 1);
        assert_eq!(replayed.cases[0].name, case.name);
        // The planted case is not a real bug, so replay finds no violations.
        assert_eq!(replayed.violation_count(), 0);
        let again = replay_corpus(&dir, &options).unwrap();
        assert_eq!(
            format!("{:?}", replayed.cases),
            format!("{:?}", again.cases)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_corpus_directory_is_empty_not_error() {
        let report = replay_corpus(
            Path::new("/nonexistent/emp-oracle-nowhere"),
            &quick_options(),
        )
        .unwrap();
        assert!(report.cases.is_empty());
    }

    #[test]
    fn budget_probes_hold_across_seeds() {
        // The lifecycle contract: every budgeted solve, however tight the
        // budget (including zero polls and an already-expired deadline),
        // hands back a validate-clean incumbent with a stop reason that
        // matches its checkpoint. A clean sweep also reports Completed as
        // every case's persisted stop reason.
        let options = FuzzOptions {
            budget_probes: true,
            metamorphic: false,
            ..quick_options()
        };
        let report = fuzz_sweep(0..25u64, &options);
        assert_eq!(
            report.violation_count(),
            0,
            "budget violations: {:#?}",
            report
                .cases
                .iter()
                .filter(|c| !c.violations.is_empty())
                .collect::<Vec<_>>()
        );
        assert!(report
            .cases
            .iter()
            .all(|c| c.stop_reason == StopReason::Completed));
    }

    #[test]
    fn budget_truncation_is_flagged() {
        let options = FuzzOptions {
            budget: Some(Duration::from_secs(0)),
            ..quick_options()
        };
        let report = fuzz_sweep(0..50u64, &options);
        assert!(report.truncated);
        assert!(report.cases.len() < 50);
    }
}
