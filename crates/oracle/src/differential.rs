//! Differential oracles: FaCT vs the exact solver, FaCT vs MP-regions.
//!
//! The paper validates FaCT against a Gurobi MIP and the classic MP-regions
//! heuristic (§VII); this module is the reproduction's version of that
//! study, run continuously on seeded instances:
//!
//! * **Exact bound** — `emp-exact` in `p`-only mode gives the provably
//!   optimal `p*`; any FaCT result with `p > p*` is a bug, as is FaCT
//!   declaring hard infeasibility when `p* > 0`.
//! * **Self-consistency** — every FaCT solution must pass
//!   [`emp_core::validate::validate_solution`] (coverage, contiguity,
//!   constraints, heterogeneity recompute).
//! * **MP cross-check** — on single-component, sum-threshold-only cases the
//!   classic MP-regions feasibility verdict must agree with FaCT's.

use crate::generator::OracleCase;
use emp_baseline::mp_feasibility;
use emp_core::constraint::Aggregate;
use emp_core::error::EmpError;
use emp_core::solution::Solution;
use emp_core::solver::solve;
use emp_core::validate::{recompute_heterogeneity, validate_solution};
use emp_exact::{exact_solve, ExactConfig};
use emp_graph::connected_components;

/// One oracle violation: a machine-readable kind plus human-readable
/// details. Persisted into repro files.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Stable violation category (e.g. `p-exceeds-exact`).
    pub kind: String,
    /// What exactly went wrong.
    pub details: String,
}

impl Violation {
    /// Creates a violation.
    pub fn new(kind: impl Into<String>, details: impl Into<String>) -> Self {
        Violation {
            kind: kind.into(),
            details: details.into(),
        }
    }
}

/// Everything the differential pass learned about a case.
#[derive(Clone, Debug, Default)]
pub struct DiffOutcome {
    /// FaCT's `p`; `None` when FaCT declared the case hard-infeasible.
    pub p_fact: Option<usize>,
    /// The exact optimal `p*`; `None` when the node budget truncated the
    /// search (no comparison is made then).
    pub p_exact: Option<usize>,
    /// Nodes the exact search expanded.
    pub exact_nodes: u64,
    /// Whether the `p_fact <= p_exact` comparison actually happened.
    pub compared: bool,
    /// Whether the MP-regions feasibility cross-check applied to this case.
    pub mp_checked: bool,
    /// FaCT's solution, reused by the metamorphic relations.
    pub fact_solution: Option<Solution>,
    /// Oracle violations found.
    pub violations: Vec<Violation>,
}

/// Runs the full differential pass on one case: FaCT solve + validation,
/// exact `p*` comparison under `exact_nodes` budget, and the MP-regions
/// feasibility cross-check where applicable.
pub fn differential_check(case: &OracleCase, exact_nodes: u64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let instance = match case.instance() {
        Ok(i) => i,
        Err(e) => {
            out.violations
                .push(Violation::new("instance-build", format!("{e}")));
            return out;
        }
    };

    // FaCT under test.
    match solve(&instance, &case.constraints, &case.solve_config()) {
        Ok(report) => {
            if let Err(problems) = validate_solution(&instance, &case.constraints, &report.solution)
            {
                for p in problems {
                    out.violations.push(Violation::new("validate", p));
                }
            }
            let fresh = recompute_heterogeneity(&instance, &report.solution);
            let tol = 1e-6 * fresh.abs().max(1.0);
            if (fresh - report.solution.heterogeneity).abs() > tol {
                out.violations.push(Violation::new(
                    "heterogeneity-recompute",
                    format!(
                        "reported {} vs fresh {fresh}",
                        report.solution.heterogeneity
                    ),
                ));
            }
            out.p_fact = Some(report.p());
            out.fact_solution = Some(report.solution);
        }
        Err(EmpError::Infeasible { .. }) => out.p_fact = None,
        Err(e) => {
            out.violations
                .push(Violation::new("fact-error", format!("{e}")));
            return out;
        }
    }

    // Exact ground truth (p-only mode: only p* matters here).
    match exact_solve(
        &instance,
        &case.constraints,
        &ExactConfig::p_only(exact_nodes),
    ) {
        Ok(report) => {
            out.exact_nodes = report.nodes;
            if report.complete {
                let p_star = report.solution.p();
                out.p_exact = Some(p_star);
                if let Some(p_fact) = out.p_fact {
                    out.compared = true;
                    if p_fact > p_star {
                        out.violations.push(Violation::new(
                            "p-exceeds-exact",
                            format!("FaCT p = {p_fact} > exact p* = {p_star}"),
                        ));
                    }
                } else {
                    out.compared = true;
                    if p_star > 0 {
                        out.violations.push(Violation::new(
                            "false-infeasible",
                            format!("FaCT declared infeasible but exact p* = {p_star}"),
                        ));
                    }
                }
            }
        }
        Err(e) => {
            // Oversized instances are a generator bug, not a solver bug.
            out.violations
                .push(Violation::new("exact-error", format!("{e}")));
        }
    }

    // MP-regions cross-check: classic max-p feasibility (total >= threshold)
    // is only a valid oracle on connected maps with a single
    // sum-lower-bound constraint and non-negative attributes.
    if let [c] = case.constraints.constraints() {
        let single_sum = c.aggregate == Aggregate::Sum && c.has_lower() && !c.has_upper();
        if single_sum {
            if let Ok(graph) = case.graph() {
                let connected = connected_components(&graph).count() == 1;
                let non_negative = case
                    .attr_columns
                    .iter()
                    .all(|col| col.iter().all(|&v| v >= 0.0));
                if connected && non_negative {
                    out.mp_checked = true;
                    match mp_feasibility(&instance, &c.attribute, c.low) {
                        Ok(_) => {
                            // Total reaches the threshold: the whole map is
                            // one valid region, so FaCT must not declare
                            // hard infeasibility.
                            if out.p_fact.is_none() {
                                out.violations.push(Violation::new(
                                    "mp-disagree",
                                    "MP-regions feasible but FaCT declared infeasible".to_string(),
                                ));
                            }
                            if out.p_exact == Some(0) {
                                out.violations.push(Violation::new(
                                    "mp-disagree-exact",
                                    "MP-regions feasible but exact p* = 0".to_string(),
                                ));
                            }
                        }
                        Err(EmpError::Infeasible { .. }) => {
                            // Total below threshold with non-negative values:
                            // no subset can reach the sum, so any p >= 1
                            // from FaCT or the exact solver is a bug.
                            if matches!(out.p_fact, Some(p) if p >= 1) {
                                out.violations.push(Violation::new(
                                    "mp-disagree",
                                    format!(
                                        "MP-regions infeasible but FaCT found p = {}",
                                        out.p_fact.unwrap()
                                    ),
                                ));
                            }
                            if matches!(out.p_exact, Some(p) if p >= 1) {
                                out.violations.push(Violation::new(
                                    "mp-disagree-exact",
                                    format!(
                                        "MP-regions infeasible but exact p* = {}",
                                        out.p_exact.unwrap()
                                    ),
                                ));
                            }
                        }
                        Err(e) => out
                            .violations
                            .push(Violation::new("mp-error", format!("{e}"))),
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_case;

    #[test]
    fn differential_on_seed_battery_is_clean() {
        let mut compared = 0;
        for seed in 0..30u64 {
            let case = generate_case(seed);
            let out = differential_check(&case, 200_000);
            assert!(
                out.violations.is_empty(),
                "case {} violations: {:?}",
                case.name,
                out.violations
            );
            if out.compared {
                compared += 1;
            }
        }
        assert!(
            compared >= 15,
            "only {compared} exact comparisons completed"
        );
    }

    #[test]
    fn mp_cross_check_applies_to_sum_only_cases() {
        let mut checked = 0;
        for seed in 0..120u64 {
            let case = generate_case(seed);
            let out = differential_check(&case, 100_000);
            assert!(out.violations.is_empty(), "{:?}", out.violations);
            if out.mp_checked {
                checked += 1;
            }
        }
        assert!(checked >= 3, "only {checked} MP cross-checks applied");
    }
}
