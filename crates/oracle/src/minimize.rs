//! Greedy repro minimizer.
//!
//! Given a failing case and a "does it still fail?" predicate, repeatedly
//! tries single removals — first whole constraints, then individual areas —
//! keeping any removal that preserves the failure. The result is a local
//! minimum: no single constraint or area can be dropped without losing the
//! bug. A probe cap bounds total solver invocations, so minimization never
//! dominates a fuzz run.

use crate::generator::OracleCase;

/// Minimizer tuning.
#[derive(Clone, Copy, Debug)]
pub struct MinimizeOptions {
    /// Maximum number of candidate probes (each probe re-runs the oracle).
    pub max_probes: usize,
}

impl Default for MinimizeOptions {
    fn default() -> Self {
        MinimizeOptions { max_probes: 200 }
    }
}

/// Removes constraint `idx` from a copy of `case`.
fn without_constraint(case: &OracleCase, idx: usize) -> OracleCase {
    let mut out = case.clone();
    let kept: Vec<_> = case
        .constraints
        .constraints()
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != idx)
        .map(|(_, c)| c.clone())
        .collect();
    out.constraints = emp_core::constraint::ConstraintSet::from_constraints(kept);
    out
}

/// Removes area `area` from a copy of `case`, compacting ids above it.
fn without_area(case: &OracleCase, area: u32) -> OracleCase {
    let mut out = case.clone();
    out.n = case.n - 1;
    out.edges = case
        .edges
        .iter()
        .filter(|&&(a, b)| a != area && b != area)
        .map(|&(a, b)| {
            let shift = |v: u32| if v > area { v - 1 } else { v };
            (shift(a), shift(b))
        })
        .collect();
    for col in &mut out.attr_columns {
        col.remove(area as usize);
    }
    out
}

/// Greedily shrinks `case` while `still_fails` holds. Returns the minimized
/// case (renamed `<name>-min` when anything was removed) and the number of
/// probes spent.
pub fn minimize(
    case: &OracleCase,
    still_fails: &dyn Fn(&OracleCase) -> bool,
    options: MinimizeOptions,
) -> (OracleCase, usize) {
    let mut current = case.clone();
    let mut probes = 0usize;
    let mut shrunk = false;

    loop {
        let mut improved = false;

        // Pass 1: drop whole constraints (cheapest big win; keep >= 1 so the
        // case stays a meaningful regionalization problem).
        let mut ci = 0;
        while current.constraints.len() > 1 && ci < current.constraints.len() {
            if probes >= options.max_probes {
                break;
            }
            let candidate = without_constraint(&current, ci);
            probes += 1;
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                shrunk = true;
                // Same index now names the next constraint.
            } else {
                ci += 1;
            }
        }

        // Pass 2: drop areas, highest id first (cheaper reindexing churn).
        let mut area = current.n as u32;
        while area > 0 && current.n > 2 {
            area -= 1;
            if probes >= options.max_probes {
                break;
            }
            let candidate = without_area(&current, area);
            if candidate.instance().is_err() {
                continue;
            }
            probes += 1;
            if still_fails(&candidate) {
                current = candidate;
                improved = true;
                shrunk = true;
            }
        }

        if !improved || probes >= options.max_probes {
            break;
        }
    }

    if shrunk && !current.name.ends_with("-min") {
        current.name = format!("{}-min", current.name);
    }
    (current, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_case;

    #[test]
    fn minimizer_shrinks_against_a_synthetic_predicate() {
        // Pretend the "bug" is: a SUM constraint exists and n >= 5. The
        // minimizer should strip everything else down to that core.
        let case = generate_case(5);
        let fails = |c: &OracleCase| {
            c.n >= 5
                && c.constraints
                    .constraints()
                    .iter()
                    .any(|k| k.aggregate == emp_core::constraint::Aggregate::Sum)
        };
        if !fails(&case) {
            return; // seed does not exhibit the synthetic bug; nothing to test
        }
        let (min, probes) = minimize(&case, &fails, MinimizeOptions::default());
        assert!(fails(&min), "minimization lost the failure");
        assert!(min.n <= case.n);
        assert!(min.constraints.len() <= case.constraints.len());
        assert!(probes <= MinimizeOptions::default().max_probes);
        assert_eq!(min.n, 5, "area pass should reach the floor");
        min.instance().expect("minimized case still compiles");
    }

    #[test]
    fn probe_cap_is_respected() {
        let case = generate_case(9);
        let mut count = 0usize;
        let counter = std::cell::Cell::new(0usize);
        let fails = |_: &OracleCase| {
            counter.set(counter.get() + 1);
            true // always fails: worst case for probe volume
        };
        let (_, probes) = minimize(&case, &fails, MinimizeOptions { max_probes: 7 });
        count += counter.get();
        assert!(probes <= 7, "probes = {probes}");
        assert_eq!(count, probes);
    }
}
