//! Seeded instance generator for the fuzz harness.
//!
//! Every case is a pure function of its seed: graph shape (paths, cycles,
//! lattices, multi-component layouts, tessellation islands, random connected
//! graphs), attribute layout (calibrated census fields or the degenerate
//! layouts from `emp-data`), enriched-constraint combination (all five
//! aggregates, tight and infeasible bounds), and FaCT configuration are all
//! drawn from one internal SplitMix64 stream — no external RNG crate, so
//! the corpus replays identically everywhere.

use emp_core::attr::AttributeTable;
use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::error::EmpError;
use emp_core::instance::EmpInstance;
use emp_core::solver::FactConfig;
use emp_data::TessellationSpec;
use emp_data::{census_attributes, degenerate_attributes, Dataset, DegenerateKind};
use emp_graph::ContiguityGraph;

/// Deterministic 64-bit PRNG (SplitMix64). Small, fast, and dependency-free
/// so repro files replay identically regardless of `rand` versions.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A self-contained fuzz case: raw instance parts (kept separate from the
/// compiled [`EmpInstance`] so the case serializes to a JSON repro file
/// without any derive machinery), the constraint set, and the exact FaCT
/// configuration to replay.
#[derive(Clone, Debug)]
pub struct OracleCase {
    /// Stable case name (`case-<seed in hex>`, `-min` suffix after
    /// minimization).
    pub name: String,
    /// Generator seed this case was derived from.
    pub seed: u64,
    /// Number of areas.
    pub n: usize,
    /// Contiguity edges (undirected, deduplicated).
    pub edges: Vec<(u32, u32)>,
    /// Attribute column names, in table order.
    pub attr_names: Vec<String>,
    /// Attribute columns, parallel to `attr_names`.
    pub attr_columns: Vec<Vec<f64>>,
    /// Name of the dissimilarity attribute.
    pub dissim_attr: String,
    /// The enriched constraint set under test.
    pub constraints: ConstraintSet,
    /// FaCT configuration (seed included) for the solve under test.
    pub fact: FactConfig,
}

impl OracleCase {
    /// The [`FactConfig`] to actually solve with: the case's persisted
    /// config, with the tabu worker count overridden by `EMP_JOBS` when it
    /// is set to a positive integer. The sharded evaluator is move-for-move
    /// identical to the serial path (`DESIGN.md` §12), so the override
    /// cannot change any oracle verdict — running the whole fuzz sweep
    /// under `EMP_JOBS=2` and diffing against a serial run is itself a
    /// determinism check (CI does exactly that).
    pub fn solve_config(&self) -> FactConfig {
        let mut fact = self.fact.clone();
        if let Some(jobs) = std::env::var("EMP_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j >= 1)
        {
            fact.jobs = jobs;
        }
        fact
    }

    /// Builds the contiguity graph.
    pub fn graph(&self) -> Result<ContiguityGraph, EmpError> {
        ContiguityGraph::from_edges(self.n, &self.edges).map_err(|e| EmpError::Infeasible {
            reasons: vec![format!("bad contiguity graph: {e:?}")],
        })
    }

    /// Compiles the case into a solvable instance.
    pub fn instance(&self) -> Result<EmpInstance, EmpError> {
        let graph = self.graph()?;
        let mut attrs = AttributeTable::new(self.n);
        for (name, col) in self.attr_names.iter().zip(&self.attr_columns) {
            attrs.push_column(name, col.clone())?;
        }
        EmpInstance::new(graph, attrs, &self.dissim_attr)
    }
}

/// Generates the fuzz case for `seed`. Deterministic: the same seed always
/// yields byte-identical cases.
pub fn generate_case(seed: u64) -> OracleCase {
    let mut rng = SplitMix64::new(seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(1));

    // Differential-friendly sizes most of the time, larger FaCT-only
    // instances (the exact solver's node budget will truncate) sometimes.
    let n_target = if rng.chance(0.7) {
        rng.range(6, 14)
    } else {
        rng.range(15, 40)
    };

    let (graph, attrs) = build_graph_and_attributes(&mut rng, n_target, seed);
    let n = graph.len();
    let edges: Vec<(u32, u32)> = graph.edges().collect();
    let attr_names: Vec<String> = attrs.names().to_vec();
    let attr_columns: Vec<Vec<f64>> = (0..attrs.columns())
        .map(|c| attrs.column(c).to_vec())
        .collect();

    let constraints = build_constraints(&mut rng, &attrs);

    let fact = FactConfig {
        construction_iterations: rng.range(1, 3),
        incremental_tabu: rng.chance(0.5),
        local_search: rng.chance(0.85),
        max_tabu_iterations: Some(200),
        parallel: false,
        ..FactConfig::seeded(seed ^ 0xFAC7)
    };

    OracleCase {
        name: format!("case-{seed:08x}"),
        seed,
        n,
        edges,
        attr_names,
        attr_columns,
        dissim_attr: emp_data::DISSIMILARITY_ATTR.to_string(),
        constraints,
        fact,
    }
}

/// Picks a graph shape and matching attribute table. The actual area count
/// may deviate slightly from `n_target` (lattice rounding).
fn build_graph_and_attributes(
    rng: &mut SplitMix64,
    n_target: usize,
    seed: u64,
) -> (ContiguityGraph, AttributeTable) {
    // Tessellation path: exercises the emp-data pipeline end to end,
    // including multi-component island layouts.
    if rng.chance(0.15) {
        let n = n_target.clamp(6, 24);
        let islands = if rng.chance(0.4) { rng.range(2, 3) } else { 1 };
        let ds = Dataset::generate("fuzz", &TessellationSpec::islands(n, islands, seed));
        return (ds.graph, ds.attributes);
    }

    let shape = rng.range(0, 4);
    let graph = match shape {
        // Path.
        0 => ContiguityGraph::lattice(n_target, 1),
        // Lattice.
        1 => {
            let w = rng.range(2, 5);
            let h = (n_target / w).max(2);
            ContiguityGraph::lattice(w, h)
        }
        // Two disconnected components: a lattice and a path.
        2 => {
            let w = rng.range(2, 3);
            let h = (n_target / (2 * w)).max(2);
            let first = w * h;
            let second = (n_target - first.min(n_target)).max(2);
            let n = first + second;
            let mut edges = Vec::new();
            for y in 0..h {
                for x in 0..w {
                    let v = (y * w + x) as u32;
                    if x + 1 < w {
                        edges.push((v, v + 1));
                    }
                    if y + 1 < h {
                        edges.push((v, v + w as u32));
                    }
                }
            }
            for i in 0..second - 1 {
                edges.push(((first + i) as u32, (first + i + 1) as u32));
            }
            ContiguityGraph::from_edges(n, &edges).expect("valid multi-component graph")
        }
        // Lattice plus isolated areas (degree-0 vertices must go to U_0
        // unless a region can be a singleton).
        3 => {
            let isolated = rng.range(1, 2);
            let w = rng.range(2, 4);
            let h = ((n_target - isolated) / w).max(2);
            let base = ContiguityGraph::lattice(w, h);
            let edges: Vec<(u32, u32)> = base.edges().collect();
            ContiguityGraph::from_edges(w * h + isolated, &edges).expect("valid padded graph")
        }
        // Random connected graph: spanning tree plus extra edges.
        _ => {
            let n = n_target;
            let mut edges = Vec::new();
            for i in 1..n {
                let parent = rng.range(0, i - 1) as u32;
                edges.push((parent, i as u32));
            }
            for _ in 0..n / 3 {
                let a = rng.range(0, n - 1) as u32;
                let b = rng.range(0, n - 1) as u32;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            ContiguityGraph::from_edges(n, &edges).expect("valid random graph")
        }
    };

    let attrs = match rng.range(0, 5) {
        0 | 1 => census_attributes(&graph, seed),
        2 => degenerate_attributes(&graph, seed, DegenerateKind::Constant(100.0)),
        3 => degenerate_attributes(&graph, seed, DegenerateKind::Zeros),
        4 => degenerate_attributes(
            &graph,
            seed,
            DegenerateKind::TwoLevel {
                low: 1.0,
                high: 500.0,
                period: rng.range(2, 6),
            },
        ),
        _ => degenerate_attributes(&graph, seed, DegenerateKind::Spiky),
    };
    (graph, attrs)
}

/// Sorted copy of a column for percentile picks.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Draws a constraint combination: 1–3 constraints over the five aggregate
/// families, mixing loose, tight, and deliberately infeasible bounds.
/// ~15% of cases instead use a single `SUM >= threshold` so the MP-regions
/// cross-check applies.
fn build_constraints(rng: &mut SplitMix64, attrs: &AttributeTable) -> ConstraintSet {
    let names = attrs.names().to_vec();
    let pick_attr = |rng: &mut SplitMix64| names[rng.range(0, names.len() - 1)].clone();

    // MP-comparable subset: one sum-threshold constraint.
    if rng.chance(0.15) {
        let attr = pick_attr(rng);
        let col = attrs.column_by_name(&attr).expect("attr exists");
        let total: f64 = col.iter().sum();
        let frac = [0.1, 0.3, 0.6, 1.5][rng.range(0, 3)];
        let low = (total * frac).max(1.0);
        let c = Constraint::sum(attr, low, f64::INFINITY).expect("valid sum range");
        return ConstraintSet::new().with(c);
    }

    let count = rng.range(1, 3);
    let mut set = ConstraintSet::new();
    for _ in 0..count {
        let attr = pick_attr(rng);
        let col = attrs.column_by_name(&attr).expect("attr exists");
        let mut sorted = col.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite attributes"));
        let total: f64 = col.iter().sum();
        let n = col.len() as f64;

        let c = match rng.range(0, 4) {
            // SUM: loose / tight window / infeasible lower bound.
            0 => {
                let frac = [0.1, 0.25, 0.5, 1.5][rng.range(0, 3)];
                let low = (total * frac).max(1.0);
                let high = match rng.range(0, 2) {
                    0 => f64::INFINITY,
                    1 => low * 2.5,
                    _ => low * 1.2, // tight window
                };
                Constraint::sum(attr, low, high.max(low))
            }
            // COUNT: exact counts are the tightest form.
            1 => {
                let low = rng.range(1, 3) as f64;
                let high = match rng.range(0, 2) {
                    0 => f64::INFINITY,
                    1 => low, // COUNT == low exactly
                    _ => low + 2.0,
                };
                Constraint::count(low, high)
            }
            // MIN: lower bounds force low-valued areas into U_0.
            2 => match rng.range(0, 2) {
                0 => Constraint::min(attr, percentile(&sorted, 0.2), f64::INFINITY),
                1 => Constraint::min(attr, f64::NEG_INFINITY, percentile(&sorted, 0.8)),
                _ => Constraint::min(attr, percentile(&sorted, 0.1), percentile(&sorted, 0.9)),
            },
            // MAX: upper bounds exclude high-valued areas.
            3 => match rng.range(0, 2) {
                0 => Constraint::max(attr, percentile(&sorted, 0.6), f64::INFINITY),
                1 => Constraint::max(attr, f64::NEG_INFINITY, percentile(&sorted, 0.95)),
                _ => {
                    // Infeasible: MAX must exceed the largest value present.
                    let top = percentile(&sorted, 1.0);
                    Constraint::max(attr, top + 1.0, f64::INFINITY)
                }
            },
            // AVG: windows, sometimes impossibly above the maximum.
            _ => match rng.range(0, 2) {
                0 => Constraint::avg(attr, percentile(&sorted, 0.3), percentile(&sorted, 0.7)),
                1 => Constraint::avg(attr, percentile(&sorted, 0.45), percentile(&sorted, 0.55)),
                _ => {
                    let top = percentile(&sorted, 1.0).max(total / n);
                    Constraint::avg(attr, top + 1.0, top + 2.0)
                }
            },
        };
        match c {
            Ok(c) => set.push(c),
            // Degenerate columns can produce inverted percentile ranges
            // (all-equal values); skip those draws.
            Err(_) => continue,
        }
    }
    if set.is_empty() {
        // Ensure at least one constraint so the case is never trivial.
        set.push(Constraint::count(1.0, f64::INFINITY).expect("valid count range"));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let a = generate_case(seed);
            let b = generate_case(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert!(a.n >= 6 && a.n <= 42, "n = {}", a.n);
            assert!(!a.constraints.is_empty());
            a.instance().expect("generated case compiles");
        }
    }

    #[test]
    fn seeds_cover_shapes_and_constraint_families() {
        let mut multi_component = 0;
        let mut families = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let case = generate_case(seed);
            let graph = case.graph().unwrap();
            if emp_graph::connected_components(&graph).count() > 1 {
                multi_component += 1;
            }
            for c in case.constraints.constraints() {
                families.insert(c.aggregate);
            }
        }
        assert!(
            multi_component >= 5,
            "only {multi_component} multi-component cases"
        );
        assert_eq!(families.len(), 5, "families seen: {families:?}");
    }

    #[test]
    fn splitmix_is_stable() {
        let mut rng = SplitMix64::new(7);
        let a = rng.next_u64();
        let mut rng2 = SplitMix64::new(7);
        assert_eq!(a, rng2.next_u64());
        for _ in 0..100 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            let r = rng.range(3, 9);
            assert!((3..=9).contains(&r));
        }
    }
}
