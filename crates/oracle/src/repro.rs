//! JSON repro files: persisting failing cases and replaying the corpus.
//!
//! Repro files are hand-rolled `serde_json::Value` trees (the workspace has
//! no derive machinery). Two encoding rules keep them lossless:
//!
//! * seeds are decimal **strings** — a JSON number is an `f64` and loses
//!   precision past 2⁵³;
//! * infinite constraint bounds are the strings `"inf"` / `"-inf"` — JSON
//!   has no infinity literal, and `serde_json` silently turns non-finite
//!   numbers into `null`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::differential::Violation;
use crate::generator::OracleCase;
use emp_core::constraint::{Aggregate, Constraint, ConstraintSet};
use emp_core::control::StopReason;
use emp_core::solver::FactConfig;
use serde_json::{Map, Value};

/// Repro file format version, bumped on incompatible layout changes.
pub const FORMAT_VERSION: f64 = 1.0;

fn bound_to_value(x: f64) -> Value {
    if x == f64::INFINITY {
        Value::from("inf")
    } else if x == f64::NEG_INFINITY {
        Value::from("-inf")
    } else {
        Value::from(x)
    }
}

fn bound_from_value(v: &Value) -> Result<f64, String> {
    match v.as_str() {
        Some("inf") => Ok(f64::INFINITY),
        Some("-inf") => Ok(f64::NEG_INFINITY),
        Some(other) => Err(format!("unknown bound token {other:?}")),
        None => v
            .as_f64()
            .ok_or_else(|| format!("bound is not a number: {v:?}")),
    }
}

fn aggregate_from_name(name: &str) -> Result<Aggregate, String> {
    match name {
        "MIN" => Ok(Aggregate::Min),
        "MAX" => Ok(Aggregate::Max),
        "AVG" => Ok(Aggregate::Avg),
        "SUM" => Ok(Aggregate::Sum),
        "COUNT" => Ok(Aggregate::Count),
        other => Err(format!("unknown aggregate {other:?}")),
    }
}

/// Serializes a case (plus the violations that made it worth keeping) into
/// a JSON value. `stop_reason` records the budget-probe cut context under
/// which the case first failed ([`StopReason::Completed`] for failures on
/// the unbudgeted path); older readers ignore the key.
pub fn case_to_json(case: &OracleCase, violations: &[Violation], stop_reason: StopReason) -> Value {
    let mut root = Map::new();
    root.insert("format".to_string(), Value::from(FORMAT_VERSION));
    root.insert("name".to_string(), Value::from(case.name.clone()));
    root.insert("seed".to_string(), Value::from(case.seed.to_string()));
    root.insert("stop_reason".to_string(), Value::from(stop_reason.name()));
    root.insert("n".to_string(), Value::from(case.n));
    root.insert(
        "edges".to_string(),
        Value::from(
            case.edges
                .iter()
                .map(|&(a, b)| Value::from(vec![Value::from(a as usize), Value::from(b as usize)]))
                .collect::<Vec<Value>>(),
        ),
    );
    root.insert(
        "attr_names".to_string(),
        Value::from(
            case.attr_names
                .iter()
                .map(|s| Value::from(s.clone()))
                .collect::<Vec<Value>>(),
        ),
    );
    root.insert(
        "attr_columns".to_string(),
        Value::from(
            case.attr_columns
                .iter()
                .map(|col| Value::from(col.iter().map(|&v| Value::from(v)).collect::<Vec<Value>>()))
                .collect::<Vec<Value>>(),
        ),
    );
    root.insert(
        "dissim_attr".to_string(),
        Value::from(case.dissim_attr.clone()),
    );
    root.insert(
        "constraints".to_string(),
        Value::from(
            case.constraints
                .constraints()
                .iter()
                .map(|c| {
                    let mut m = Map::new();
                    m.insert("aggregate".to_string(), Value::from(c.aggregate.keyword()));
                    m.insert("attribute".to_string(), Value::from(c.attribute.clone()));
                    m.insert("low".to_string(), bound_to_value(c.low));
                    m.insert("high".to_string(), bound_to_value(c.high));
                    Value::Object(m)
                })
                .collect::<Vec<Value>>(),
        ),
    );
    let f = &case.fact;
    let mut fact = Map::new();
    fact.insert(
        "construction_iterations".to_string(),
        Value::from(f.construction_iterations),
    );
    fact.insert("merge_limit".to_string(), Value::from(f.merge_limit));
    fact.insert("tabu_tenure".to_string(), Value::from(f.tabu_tenure));
    fact.insert(
        "max_no_improve".to_string(),
        f.max_no_improve.map_or(Value::Null, Value::from),
    );
    fact.insert(
        "max_tabu_iterations".to_string(),
        f.max_tabu_iterations.map_or(Value::Null, Value::from),
    );
    fact.insert("local_search".to_string(), Value::Bool(f.local_search));
    fact.insert(
        "incremental_tabu".to_string(),
        Value::Bool(f.incremental_tabu),
    );
    fact.insert("seed".to_string(), Value::from(f.seed.to_string()));
    fact.insert("parallel".to_string(), Value::Bool(f.parallel));
    fact.insert("jobs".to_string(), Value::from(f.jobs));
    root.insert("fact".to_string(), Value::Object(fact));
    root.insert(
        "violations".to_string(),
        Value::from(
            violations
                .iter()
                .map(|v| {
                    let mut m = Map::new();
                    m.insert("kind".to_string(), Value::from(v.kind.clone()));
                    m.insert("details".to_string(), Value::from(v.details.clone()));
                    Value::Object(m)
                })
                .collect::<Vec<Value>>(),
        ),
    );
    Value::Object(root)
}

fn get<'a>(obj: &'a Map<String, Value>, key: &str) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing key {key:?}"))
}

fn as_usize(v: &Value, key: &str) -> Result<usize, String> {
    v.as_f64()
        .map(|f| f as usize)
        .ok_or_else(|| format!("{key} is not a number"))
}

fn as_string(v: &Value, key: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{key} is not a string"))
}

fn as_seed(v: &Value, key: &str) -> Result<u64, String> {
    as_string(v, key)?
        .parse::<u64>()
        .map_err(|e| format!("{key} is not a u64 string: {e}"))
}

fn as_bool(v: &Value, key: &str) -> Result<bool, String> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("{key} is not a bool")),
    }
}

fn as_opt_usize(v: &Value, key: &str) -> Result<Option<usize>, String> {
    match v {
        Value::Null => Ok(None),
        other => as_usize(other, key).map(Some),
    }
}

/// Deserializes a case from a JSON value (the `violations` key, if present,
/// is ignored — a replay recomputes them).
pub fn case_from_json(value: &Value) -> Result<OracleCase, String> {
    let root = value.as_object().ok_or("repro root is not an object")?;

    let edges = get(root, "edges")?
        .as_array()
        .ok_or("edges is not an array")?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("edge is not a pair")?;
            Ok((
                as_usize(&pair[0], "edge")? as u32,
                as_usize(&pair[1], "edge")? as u32,
            ))
        })
        .collect::<Result<Vec<(u32, u32)>, String>>()?;

    let attr_names = get(root, "attr_names")?
        .as_array()
        .ok_or("attr_names is not an array")?
        .iter()
        .map(|v| as_string(v, "attr_name"))
        .collect::<Result<Vec<String>, String>>()?;

    let attr_columns = get(root, "attr_columns")?
        .as_array()
        .ok_or("attr_columns is not an array")?
        .iter()
        .map(|col| {
            col.as_array()
                .ok_or_else(|| "attr column is not an array".to_string())?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| "attr value is not a number".to_string())
                })
                .collect::<Result<Vec<f64>, String>>()
        })
        .collect::<Result<Vec<Vec<f64>>, String>>()?;

    let mut constraints = ConstraintSet::new();
    for c in get(root, "constraints")?
        .as_array()
        .ok_or("constraints is not an array")?
    {
        let c = c.as_object().ok_or("constraint is not an object")?;
        let aggregate = aggregate_from_name(&as_string(get(c, "aggregate")?, "aggregate")?)?;
        let attribute = as_string(get(c, "attribute")?, "attribute")?;
        let low = bound_from_value(get(c, "low")?)?;
        let high = bound_from_value(get(c, "high")?)?;
        constraints.push(
            Constraint::new(aggregate, attribute, low, high)
                .map_err(|e| format!("invalid constraint: {e}"))?,
        );
    }

    let f = get(root, "fact")?
        .as_object()
        .ok_or("fact is not an object")?;
    let fact = FactConfig {
        construction_iterations: as_usize(
            get(f, "construction_iterations")?,
            "construction_iterations",
        )?,
        merge_limit: as_usize(get(f, "merge_limit")?, "merge_limit")?,
        tabu_tenure: as_usize(get(f, "tabu_tenure")?, "tabu_tenure")?,
        max_no_improve: as_opt_usize(get(f, "max_no_improve")?, "max_no_improve")?,
        max_tabu_iterations: as_opt_usize(get(f, "max_tabu_iterations")?, "max_tabu_iterations")?,
        local_search: as_bool(get(f, "local_search")?, "local_search")?,
        incremental_tabu: as_bool(get(f, "incremental_tabu")?, "incremental_tabu")?,
        seed: as_seed(get(f, "seed")?, "fact.seed")?,
        parallel: as_bool(get(f, "parallel")?, "parallel")?,
        // Absent in cases saved before the sharded tabu evaluator existed:
        // those always ran the serial local search, i.e. jobs = 1.
        jobs: match f.get("jobs") {
            Some(v) => as_usize(v, "jobs")?,
            None => 1,
        },
    };

    Ok(OracleCase {
        name: as_string(get(root, "name")?, "name")?,
        seed: as_seed(get(root, "seed")?, "seed")?,
        n: as_usize(get(root, "n")?, "n")?,
        edges,
        attr_names,
        attr_columns,
        dissim_attr: as_string(get(root, "dissim_attr")?, "dissim_attr")?,
        constraints,
        fact,
    })
}

/// Writes `<dir>/<case name>.json` and returns its path.
pub fn save_case(
    dir: &Path,
    case: &OracleCase,
    violations: &[Violation],
    stop_reason: StopReason,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", case.name));
    let text = serde_json::to_string_pretty(&case_to_json(case, violations, stop_reason))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, text)?;
    Ok(path)
}

/// Loads one repro file.
pub fn load_case(path: &Path) -> Result<OracleCase, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("{}: bad JSON: {e}", path.display()))?;
    case_from_json(&value)
}

/// Loads every `*.json` repro in `dir`, sorted by file name so replay order
/// is stable across filesystems. A missing directory is an empty corpus.
pub fn load_corpus(dir: &Path) -> Result<Vec<(PathBuf, OracleCase)>, String> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| load_case(&p).map(|case| (p, case)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_case;

    #[test]
    fn json_round_trip_is_lossless() {
        for seed in [0u64, 3, 17, u64::MAX - 5] {
            let case = generate_case(seed);
            let json = case_to_json(
                &case,
                &[Violation::new("demo", "details")],
                StopReason::DeadlineExceeded,
            );
            assert_eq!(
                json.get("stop_reason").and_then(Value::as_str),
                Some("deadline_exceeded"),
                "seed {seed}"
            );
            let text = serde_json::to_string(&json).unwrap();
            let back = case_from_json(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(format!("{case:?}"), format!("{back:?}"), "seed {seed}");
        }
    }

    #[test]
    fn infinite_bounds_survive_the_trip() {
        assert_eq!(
            bound_from_value(&bound_to_value(f64::INFINITY)).unwrap(),
            f64::INFINITY
        );
        assert_eq!(
            bound_from_value(&bound_to_value(f64::NEG_INFINITY)).unwrap(),
            f64::NEG_INFINITY
        );
        assert_eq!(bound_from_value(&bound_to_value(12.5)).unwrap(), 12.5);
        assert!(bound_from_value(&Value::from("oops")).is_err());
    }

    #[test]
    fn corpus_io_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("emp-oracle-repro-test");
        let _ = fs::remove_dir_all(&dir);
        let a = generate_case(11);
        let b = generate_case(12);
        save_case(&dir, &b, &[], StopReason::Completed).unwrap();
        save_case(&dir, &a, &[Violation::new("k", "d")], StopReason::Cancelled).unwrap();
        let corpus = load_corpus(&dir).unwrap();
        assert_eq!(corpus.len(), 2);
        // Sorted by file name, not insertion order.
        assert_eq!(corpus[0].1.name, a.name);
        assert_eq!(corpus[1].1.name, b.name);
        assert_eq!(format!("{:?}", corpus[0].1), format!("{a:?}"));
        let _ = fs::remove_dir_all(&dir);
    }
}
