//! Polygons (one exterior ring, zero or more holes) and multi-polygons.

use crate::bbox::BBox;
use crate::error::GeoError;
use crate::point::Point;
use crate::ring::{PointLocation, Ring};
use crate::segment::Segment;

/// A polygon with an exterior ring and optional interior rings (holes).
///
/// Constructors normalize winding: exterior counter-clockwise, holes
/// clockwise (the convention used by GeoJSON/OGC writers).
#[derive(Clone, PartialEq, Debug)]
pub struct Polygon {
    exterior: Ring,
    holes: Vec<Ring>,
}

impl Polygon {
    /// Creates a polygon from an exterior ring and holes, normalizing winding.
    pub fn with_holes(mut exterior: Ring, mut holes: Vec<Ring>) -> Self {
        if !exterior.is_ccw() {
            exterior.reverse();
        }
        for h in &mut holes {
            if h.is_ccw() {
                h.reverse();
            }
        }
        Polygon { exterior, holes }
    }

    /// Creates a hole-free polygon.
    pub fn new(exterior: Ring) -> Self {
        Polygon::with_holes(exterior, Vec::new())
    }

    /// Convenience: a hole-free polygon from raw coordinates.
    pub fn from_coords(coords: Vec<(f64, f64)>) -> Result<Self, GeoError> {
        let ring = Ring::new(coords.into_iter().map(Point::from).collect())?;
        Ok(Polygon::new(ring))
    }

    /// Axis-aligned rectangle polygon.
    pub fn rect(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Polygon::new(
            Ring::new(vec![
                Point::new(min_x, min_y),
                Point::new(max_x, min_y),
                Point::new(max_x, max_y),
                Point::new(min_x, max_y),
            ])
            .expect("rectangle ring is valid"),
        )
    }

    /// The exterior ring.
    #[inline]
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior rings (holes).
    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Area (exterior minus holes).
    pub fn area(&self) -> f64 {
        let holes: f64 = self.holes.iter().map(|h| h.area()).sum();
        (self.exterior.area() - holes).max(0.0)
    }

    /// Perimeter of the exterior plus all hole boundaries.
    pub fn perimeter(&self) -> f64 {
        self.exterior.perimeter() + self.holes.iter().map(|h| h.perimeter()).sum::<f64>()
    }

    /// Bounding box (that of the exterior ring).
    pub fn bbox(&self) -> BBox {
        self.exterior.bbox()
    }

    /// Area-weighted centroid accounting for holes.
    pub fn centroid(&self) -> Point {
        let ext_a = self.exterior.area();
        let mut cx = self.exterior.centroid().x * ext_a;
        let mut cy = self.exterior.centroid().y * ext_a;
        let mut a = ext_a;
        for h in &self.holes {
            let ha = h.area();
            let hc = h.centroid();
            cx -= hc.x * ha;
            cy -= hc.y * ha;
            a -= ha;
        }
        if a.abs() < 1e-300 {
            return self.exterior.centroid();
        }
        Point::new(cx / a, cy / a)
    }

    /// Whether `p` is inside the polygon (holes excluded; boundaries count as
    /// inside for the exterior and as inside for hole boundaries as well,
    /// matching the closed-set convention).
    pub fn contains(&self, p: Point) -> bool {
        match self.exterior.locate(p) {
            PointLocation::Outside => false,
            PointLocation::Boundary => true,
            PointLocation::Inside => !self
                .holes
                .iter()
                .any(|h| h.locate(p) == PointLocation::Inside),
        }
    }

    /// All boundary edges: exterior plus holes.
    pub fn all_edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.exterior
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// All boundary vertices: exterior plus holes.
    pub fn all_vertices(&self) -> impl Iterator<Item = Point> + '_ {
        self.exterior
            .vertices()
            .iter()
            .copied()
            .chain(self.holes.iter().flat_map(|h| h.vertices().iter().copied()))
    }

    /// Total vertex count across all rings.
    pub fn vertex_count(&self) -> usize {
        self.exterior.len() + self.holes.iter().map(|h| h.len()).sum::<usize>()
    }
}

/// One or more polygons treated as a single (possibly disconnected) area.
///
/// Census areas occasionally consist of several disjoint parts (e.g. islands),
/// which is why EMP datasets can have multiple connected components.
#[derive(Clone, PartialEq, Debug)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multi-polygon; at least one part is required.
    pub fn new(polygons: Vec<Polygon>) -> Result<Self, GeoError> {
        if polygons.is_empty() {
            return Err(GeoError::EmptyMultiPolygon);
        }
        Ok(MultiPolygon { polygons })
    }

    /// The constituent polygons.
    #[inline]
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Total area.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(|p| p.area()).sum()
    }

    /// Union bounding box.
    pub fn bbox(&self) -> BBox {
        self.polygons
            .iter()
            .fold(BBox::EMPTY, |acc, p| acc.union(&p.bbox()))
    }

    /// Area-weighted centroid of all parts.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for p in &self.polygons {
            let pa = p.area();
            let c = p.centroid();
            cx += c.x * pa;
            cy += c.y * pa;
            a += pa;
        }
        if a.abs() < 1e-300 {
            return self.polygons[0].centroid();
        }
        Point::new(cx / a, cy / a)
    }

    /// Whether any part contains `p`.
    pub fn contains(&self, p: Point) -> bool {
        self.polygons.iter().any(|poly| poly.contains(p))
    }

    /// All boundary edges across parts.
    pub fn all_edges(&self) -> impl Iterator<Item = Segment> + '_ {
        self.polygons.iter().flat_map(|p| p.all_edges())
    }

    /// All boundary vertices across parts.
    pub fn all_vertices(&self) -> impl Iterator<Item = Point> + '_ {
        self.polygons.iter().flat_map(|p| p.all_vertices())
    }
}

impl From<Polygon> for MultiPolygon {
    fn from(p: Polygon) -> Self {
        MultiPolygon { polygons: vec![p] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn square_with_hole() -> Polygon {
        let ext = Ring::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        let hole = Ring::new(vec![p(1.0, 1.0), p(2.0, 1.0), p(2.0, 2.0), p(1.0, 2.0)]).unwrap();
        Polygon::with_holes(ext, vec![hole])
    }

    #[test]
    fn winding_is_normalized() {
        let mut ext = Ring::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        ext.reverse(); // now CW
        let poly = Polygon::new(ext);
        assert!(poly.exterior().is_ccw());
        let hole_ccw = Ring::new(vec![p(1.0, 1.0), p(2.0, 1.0), p(2.0, 2.0), p(1.0, 2.0)]).unwrap();
        let ext2 = Ring::new(vec![p(0.0, 0.0), p(4.0, 0.0), p(4.0, 4.0), p(0.0, 4.0)]).unwrap();
        let poly2 = Polygon::with_holes(ext2, vec![hole_ccw]);
        assert!(!poly2.holes()[0].is_ccw());
    }

    #[test]
    fn area_subtracts_holes() {
        let poly = square_with_hole();
        assert!((poly.area() - 15.0).abs() < 1e-12);
        assert!((poly.perimeter() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn containment_respects_holes() {
        let poly = square_with_hole();
        assert!(poly.contains(p(3.0, 3.0)));
        assert!(!poly.contains(p(1.5, 1.5))); // in the hole
        assert!(poly.contains(p(0.0, 2.0))); // exterior boundary
        assert!(!poly.contains(p(5.0, 5.0)));
    }

    #[test]
    fn centroid_with_hole_shifts_away() {
        let poly = square_with_hole();
        let c = poly.centroid();
        // The hole is in the lower-left, so the centroid moves up-right of (2,2).
        assert!(c.x > 2.0 && c.y > 2.0);
    }

    #[test]
    fn rect_constructor() {
        let r = Polygon::rect(1.0, 2.0, 3.0, 5.0);
        assert!((r.area() - 6.0).abs() < 1e-12);
        assert_eq!(r.bbox(), BBox::new(1.0, 2.0, 3.0, 5.0));
    }

    #[test]
    fn multipolygon_aggregates() {
        let a = Polygon::rect(0.0, 0.0, 1.0, 1.0);
        let b = Polygon::rect(2.0, 0.0, 4.0, 1.0);
        let mp = MultiPolygon::new(vec![a, b]).unwrap();
        assert!((mp.area() - 3.0).abs() < 1e-12);
        assert_eq!(mp.bbox(), BBox::new(0.0, 0.0, 4.0, 1.0));
        assert!(mp.contains(p(0.5, 0.5)));
        assert!(mp.contains(p(3.0, 0.5)));
        assert!(!mp.contains(p(1.5, 0.5)));
        // Area-weighted centroid: (0.5*1 + 3*2)/3 = 6.5/3
        assert!((mp.centroid().x - 6.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn multipolygon_rejects_empty() {
        assert!(MultiPolygon::new(vec![]).is_err());
    }

    #[test]
    fn vertex_and_edge_iterators() {
        let poly = square_with_hole();
        assert_eq!(poly.vertex_count(), 8);
        assert_eq!(poly.all_edges().count(), 8);
        assert_eq!(poly.all_vertices().count(), 8);
    }
}
