//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box. Empty boxes are represented with inverted
/// bounds so that `union` behaves as the identity.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BBox {
    /// Minimum x coordinate.
    pub min_x: f64,
    /// Minimum y coordinate.
    pub min_y: f64,
    /// Maximum x coordinate.
    pub max_x: f64,
    /// Maximum y coordinate.
    pub max_y: f64,
}

impl BBox {
    /// An empty box (`union` identity).
    pub const EMPTY: BBox = BBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a box from explicit bounds.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        BBox {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Box covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        BBox::new(p.x, p.y, p.x, p.y)
    }

    /// Smallest box covering all points in the iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = BBox::EMPTY;
        for p in points {
            b.expand(p);
        }
        b
    }

    /// Whether the box covers no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Grows the box to cover `p`.
    #[inline]
    pub fn expand(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Smallest box covering both operands.
    #[inline]
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Whether the two boxes share at least one point (boundary contact counts).
    #[inline]
    pub fn intersects(&self, other: &BBox) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// Whether `p` lies inside or on the boundary of the box.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Whether `other` lies fully inside `self` (boundaries may touch).
    #[inline]
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        !other.is_empty()
            && other.min_x >= self.min_x
            && other.max_x <= self.max_x
            && other.min_y >= self.min_y
            && other.max_y <= self.max_y
    }

    /// Box width (0 for empty boxes).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Box height (0 for empty boxes).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Center point; meaningless for empty boxes.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Returns the box expanded by `margin` on every side.
    #[inline]
    pub fn inflate(&self, margin: f64) -> BBox {
        BBox {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_box_behaviour() {
        let e = BBox::EMPTY;
        assert!(e.is_empty());
        assert!(!e.intersects(&BBox::new(0.0, 0.0, 1.0, 1.0)));
        let b = BBox::new(0.0, 0.0, 1.0, 2.0);
        assert_eq!(e.union(&b), b);
    }

    #[test]
    fn from_points_covers_all() {
        let b = BBox::from_points([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ]);
        assert_eq!(b, BBox::new(-2.0, 0.5, 3.0, 5.0));
        assert_eq!(b.width(), 5.0);
        assert_eq!(b.height(), 4.5);
        assert_eq!(b.center(), Point::new(0.5, 2.75));
    }

    #[test]
    fn intersection_cases() {
        let a = BBox::new(0.0, 0.0, 2.0, 2.0);
        let b = BBox::new(1.0, 1.0, 3.0, 3.0);
        let c = BBox::new(2.0, 2.0, 3.0, 3.0); // corner touch
        let d = BBox::new(5.0, 5.0, 6.0, 6.0);
        assert!(a.intersects(&b));
        assert!(a.intersects(&c));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn containment() {
        let a = BBox::new(0.0, 0.0, 4.0, 4.0);
        assert!(a.contains_point(Point::new(0.0, 4.0)));
        assert!(!a.contains_point(Point::new(-0.1, 2.0)));
        assert!(a.contains_bbox(&BBox::new(1.0, 1.0, 3.0, 4.0)));
        assert!(!a.contains_bbox(&BBox::new(1.0, 1.0, 5.0, 3.0)));
        assert!(!a.contains_bbox(&BBox::EMPTY));
    }

    #[test]
    fn inflate_grows_every_side() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0).inflate(0.5);
        assert_eq!(a, BBox::new(-0.5, -0.5, 1.5, 1.5));
    }
}
