//! Minimal WKT (Well-Known Text) reader/writer for the geometry types used in
//! regionalization datasets: `POINT`, `POLYGON`, and `MULTIPOLYGON`.

use crate::error::GeoError;
use crate::point::Point;
use crate::polygon::{MultiPolygon, Polygon};
use crate::ring::Ring;
use std::fmt::Write as _;

/// Any geometry parsable from WKT by this module.
#[derive(Clone, PartialEq, Debug)]
pub enum WktGeometry {
    /// A single point.
    Point(Point),
    /// A polygon with optional holes.
    Polygon(Polygon),
    /// A multi-polygon.
    MultiPolygon(MultiPolygon),
}

/// Parses a WKT string into a geometry.
pub fn parse_wkt(input: &str) -> Result<WktGeometry, GeoError> {
    let mut p = Parser::new(input);
    let geom = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters"));
    }
    Ok(geom)
}

/// Serializes a polygon to WKT.
pub fn polygon_to_wkt(poly: &Polygon) -> String {
    let mut out = String::with_capacity(poly.vertex_count() * 16 + 16);
    out.push_str("POLYGON ");
    write_polygon_body(&mut out, poly);
    out
}

/// Serializes a multi-polygon to WKT.
pub fn multipolygon_to_wkt(mp: &MultiPolygon) -> String {
    let mut out = String::from("MULTIPOLYGON (");
    for (i, poly) in mp.polygons().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_polygon_body(&mut out, poly);
    }
    out.push(')');
    out
}

/// Serializes a point to WKT.
pub fn point_to_wkt(p: Point) -> String {
    format!("POINT ({} {})", fmt_coord(p.x), fmt_coord(p.y))
}

fn fmt_coord(v: f64) -> String {
    // Shortest representation that round-trips.
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
        // Integral values keep a decimal point for WKT readability; parsing
        // accepts both forms.
        s.truncate(s.len()); // no-op; kept explicit
    }
    s
}

fn write_ring(out: &mut String, ring: &Ring) {
    out.push('(');
    for (i, v) in ring.vertices().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{} {}", fmt_coord(v.x), fmt_coord(v.y));
    }
    // WKT rings repeat the first vertex.
    let first = ring.vertices()[0];
    let _ = write!(out, ", {} {}", fmt_coord(first.x), fmt_coord(first.y));
    out.push(')');
}

fn write_polygon_body(out: &mut String, poly: &Polygon) {
    out.push('(');
    write_ring(out, poly.exterior());
    for h in poly.holes() {
        out.push_str(", ");
        write_ring(out, h);
    }
    out.push(')');
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> GeoError {
        GeoError::WktParse {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, ch: u8) -> Result<(), GeoError> {
        self.skip_ws();
        if self.pos < self.bytes.len() && self.bytes[self.pos] == ch {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", ch as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    fn number(&mut self) -> Result<f64, GeoError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|_| self.error("invalid number"))
    }

    fn coordinate(&mut self) -> Result<Point, GeoError> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    fn ring(&mut self) -> Result<Ring, GeoError> {
        self.expect(b'(')?;
        let mut pts = Vec::new();
        loop {
            pts.push(self.coordinate()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')' in ring")),
            }
        }
        Ring::new(pts)
    }

    fn polygon_body(&mut self) -> Result<Polygon, GeoError> {
        self.expect(b'(')?;
        let exterior = self.ring()?;
        let mut holes = Vec::new();
        loop {
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    holes.push(self.ring()?);
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ')' in polygon")),
            }
        }
        Ok(Polygon::with_holes(exterior, holes))
    }

    fn parse_geometry(&mut self) -> Result<WktGeometry, GeoError> {
        let kw = self.keyword();
        match kw.as_str() {
            "POINT" => {
                self.expect(b'(')?;
                let p = self.coordinate()?;
                self.expect(b')')?;
                Ok(WktGeometry::Point(p))
            }
            "POLYGON" => Ok(WktGeometry::Polygon(self.polygon_body()?)),
            "MULTIPOLYGON" => {
                self.expect(b'(')?;
                let mut polys = Vec::new();
                loop {
                    polys.push(self.polygon_body()?);
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.error("expected ',' or ')' in multipolygon")),
                    }
                }
                Ok(WktGeometry::MultiPolygon(MultiPolygon::new(polys)?))
            }
            other => Err(self.error(&format!("unsupported geometry type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_point() {
        match parse_wkt("POINT (1.5 -2)").unwrap() {
            WktGeometry::Point(p) => assert_eq!(p, Point::new(1.5, -2.0)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_polygon_with_hole() {
        let wkt = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))";
        match parse_wkt(wkt).unwrap() {
            WktGeometry::Polygon(p) => {
                assert_eq!(p.holes().len(), 1);
                assert!((p.area() - 15.0).abs() < 1e-12);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_multipolygon() {
        let wkt = "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 0, 3 0, 3 1, 2 1, 2 0)))";
        match parse_wkt(wkt).unwrap() {
            WktGeometry::MultiPolygon(mp) => {
                assert_eq!(mp.polygons().len(), 2);
                assert!((mp.area() - 2.0).abs() < 1e-12);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_polygon() {
        let poly = Polygon::rect(0.0, 0.0, 2.0, 3.0);
        let wkt = polygon_to_wkt(&poly);
        match parse_wkt(&wkt).unwrap() {
            WktGeometry::Polygon(p) => assert!((p.area() - 6.0).abs() < 1e-12),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_multipolygon() {
        let mp = MultiPolygon::new(vec![
            Polygon::rect(0.0, 0.0, 1.0, 1.0),
            Polygon::rect(5.0, 5.0, 7.0, 6.0),
        ])
        .unwrap();
        let wkt = multipolygon_to_wkt(&mp);
        match parse_wkt(&wkt).unwrap() {
            WktGeometry::MultiPolygon(m) => assert!((m.area() - mp.area()).abs() < 1e-12),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_point() {
        let wkt = point_to_wkt(Point::new(-1.25, 3.0));
        match parse_wkt(&wkt).unwrap() {
            WktGeometry::Point(p) => assert_eq!(p, Point::new(-1.25, 3.0)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn errors_report_offsets() {
        let err = parse_wkt("POLYGON [0 0]").unwrap_err();
        assert!(matches!(err, GeoError::WktParse { .. }));
        assert!(parse_wkt("CIRCLE (0 0, 1)").is_err());
        assert!(parse_wkt("POINT (1 2) junk").is_err());
        assert!(parse_wkt("POINT (1)").is_err());
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse_wkt("point(0 0)").is_ok());
        assert!(parse_wkt("Polygon((0 0,1 0,1 1,0 1,0 0))").is_ok());
    }
}
