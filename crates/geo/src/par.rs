//! Deterministic fork-join helpers for the data pipeline.
//!
//! Tessellation generation and contiguity detection are embarrassingly
//! parallel, but the pipeline promises **byte-identical output** regardless
//! of thread count: every helper here splits work into contiguous index
//! chunks, runs them on scoped threads, and reassembles results in chunk
//! order. Nothing in the output depends on scheduling.
//!
//! The worker count comes from the `EMP_JOBS` environment variable (set by
//! `repro --jobs N` and `trace_check --jobs N`) and defaults to the host's
//! available parallelism. Library callers that need an explicit count (tests,
//! the `*_jobs` contiguity variants) pass one instead.

use std::ops::Range;

/// Effective worker count: `EMP_JOBS` when set to a positive integer,
/// otherwise the host's available parallelism. Never returns 0.
///
/// An unset, empty, unparseable, or zero `EMP_JOBS` falls back to the host
/// default — CLI entry points validate the flag/env loudly; the library
/// stays permissive.
pub fn effective_jobs() -> usize {
    std::env::var("EMP_JOBS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(host_parallelism)
}

/// The host's available parallelism (1 when it cannot be determined).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `0..n` into at most `jobs` contiguous chunks of at least
/// `min_chunk` items, maps each chunk on a scoped thread, and concatenates
/// the per-chunk outputs **in chunk order** — so the result is identical to
/// `f(0..n)` whenever `f` is a pure per-index map.
///
/// Falls back to a single inline call when the split would yield one chunk
/// (small `n`, `jobs <= 1`), keeping the sequential path allocation-free.
pub fn parallel_chunks<T, F>(n: usize, min_chunk: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let chunks = chunk_count(n, min_chunk, jobs);
    if chunks <= 1 {
        return f(0..n);
    }
    let bounds = chunk_bounds(n, chunks);
    let mut parts: Vec<Vec<T>> = std::thread::scope(|scope| {
        // Fan-out: all handles must exist before the first join, or the
        // map chain would run serially.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = bounds
            .iter()
            .map(|range| {
                let range = range.clone();
                let f = &f;
                scope.spawn(move || f(range))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_chunks worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for part in &mut parts {
        out.append(part);
    }
    out
}

/// Number of chunks `parallel_chunks` will use.
fn chunk_count(n: usize, min_chunk: usize, jobs: usize) -> usize {
    if n == 0 || jobs <= 1 {
        return 1;
    }
    let by_size = n.div_ceil(min_chunk.max(1));
    jobs.min(by_size).max(1)
}

/// Contiguous near-equal ranges covering `0..n`.
pub(crate) fn chunk_bounds(n: usize, chunks: usize) -> Vec<Range<usize>> {
    let base = n / chunks;
    let extra = n % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        bounds.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_map_equals_sequential() {
        let f = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
        let seq = f(0..1000);
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(parallel_chunks(1000, 10, jobs, f), seq, "jobs={jobs}");
        }
        // min_chunk larger than n collapses to one inline chunk.
        assert_eq!(parallel_chunks(5, 100, 8, f), f(0..5));
        assert!(parallel_chunks(0, 1, 4, f).is_empty());
    }

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for chunks in 1..=5usize {
                let bounds = chunk_bounds(n, chunks);
                assert_eq!(bounds.len(), chunks);
                let mut expect = 0;
                for b in &bounds {
                    assert_eq!(b.start, expect);
                    expect = b.end;
                }
                assert_eq!(expect, n);
            }
        }
    }

    #[test]
    fn effective_jobs_is_positive() {
        assert!(effective_jobs() >= 1);
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn variable_sized_chunk_outputs_concatenate_in_order() {
        // Each chunk emits a variable number of items; order must hold.
        let f = |r: Range<usize>| r.flat_map(|i| vec![i; i % 3]).collect::<Vec<_>>();
        assert_eq!(parallel_chunks(200, 5, 7, f), f(0..200));
    }
}
