//! dBASE III (`.dbf`) attribute tables — the sidecar of every shapefile.
//!
//! Census attribute tables ship as numeric `.dbf` columns joined to the
//! `.shp` geometry by record order. The subset implemented is numeric
//! (`N`/`F`) fields, which covers the paper's attributes (`TOTALPOP`,
//! `POP16UP`, `EMPLOYED`, `HOUSEHOLDS`).

use crate::error::GeoError;
use bytes::{Buf, BufMut};

/// dBASE III without memo.
const DBF_VERSION: u8 = 0x03;
/// Field-descriptor terminator.
const HEADER_TERMINATOR: u8 = 0x0D;
/// End-of-file marker.
const EOF_MARKER: u8 = 0x1A;

/// A numeric attribute table read from / written to `.dbf`.
#[derive(Clone, Debug, PartialEq)]
pub struct DbfTable {
    /// Column names (max 10 ASCII characters each, the dBASE limit).
    pub names: Vec<String>,
    /// Column-major values; all columns have the same length.
    pub columns: Vec<Vec<f64>>,
}

impl DbfTable {
    /// Number of records.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }
}

fn err(message: impl Into<String>) -> GeoError {
    GeoError::Io {
        message: format!("dbf: {}", message.into()),
    }
}

/// Field width used on write (fits census magnitudes with 3 decimals).
const FIELD_WIDTH: u8 = 19;
/// Decimal places used on write.
const FIELD_DECIMALS: u8 = 3;

/// Serializes a numeric table to `.dbf` bytes.
///
/// Errors when a name is empty, exceeds 10 bytes, or is not ASCII.
pub fn write_dbf(table: &DbfTable) -> Result<Vec<u8>, GeoError> {
    for (name, col) in table.names.iter().zip(&table.columns) {
        if name.is_empty() || name.len() > 10 || !name.is_ascii() {
            return Err(err(format!("bad field name '{name}' (1-10 ASCII chars)")));
        }
        if col.len() != table.rows() {
            return Err(err("ragged columns"));
        }
    }
    if table.names.len() != table.columns.len() {
        return Err(err("names/columns length mismatch"));
    }
    let n_fields = table.names.len();
    let header_size = 32 + 32 * n_fields + 1;
    let record_size = 1 + n_fields * FIELD_WIDTH as usize;
    let rows = table.rows();

    let mut out = Vec::with_capacity(header_size + rows * record_size + 1);
    out.put_u8(DBF_VERSION);
    out.put_u8(26); // last-update date YY (arbitrary fixed date: 1926-01-01
    out.put_u8(1); // keeps output deterministic)
    out.put_u8(1);
    out.put_u32_le(rows as u32);
    out.put_u16_le(header_size as u16);
    out.put_u16_le(record_size as u16);
    out.extend_from_slice(&[0u8; 20]);

    for name in &table.names {
        let mut name_bytes = [0u8; 11];
        name_bytes[..name.len()].copy_from_slice(name.as_bytes());
        out.extend_from_slice(&name_bytes);
        out.put_u8(b'N'); // numeric
        out.extend_from_slice(&[0u8; 4]);
        out.put_u8(FIELD_WIDTH);
        out.put_u8(FIELD_DECIMALS);
        out.extend_from_slice(&[0u8; 14]);
    }
    out.put_u8(HEADER_TERMINATOR);

    for row in 0..rows {
        out.put_u8(b' '); // not deleted
        for col in &table.columns {
            let text = format!(
                "{:>width$.prec$}",
                col[row],
                width = FIELD_WIDTH as usize,
                prec = FIELD_DECIMALS as usize
            );
            // Overflowing values would corrupt the fixed layout; reject.
            if text.len() != FIELD_WIDTH as usize {
                return Err(err(format!("value {} too wide for field", col[row])));
            }
            out.extend_from_slice(text.as_bytes());
        }
    }
    out.put_u8(EOF_MARKER);
    Ok(out)
}

/// Parses numeric columns from `.dbf` bytes; non-numeric fields are skipped.
pub fn read_dbf(data: &[u8]) -> Result<DbfTable, GeoError> {
    if data.len() < 33 {
        return Err(err("file shorter than minimal header"));
    }
    let mut cur = data;
    let version = cur.get_u8();
    if version & 0x07 != DBF_VERSION {
        return Err(err(format!("unsupported version byte {version:#x}")));
    }
    cur.advance(3); // date
    let rows = cur.get_u32_le() as usize;
    let header_size = cur.get_u16_le() as usize;
    let record_size = cur.get_u16_le() as usize;
    cur.advance(20);

    if header_size < 33 || header_size > data.len() {
        return Err(err("bad header size"));
    }
    // Field descriptors until the 0x0D terminator.
    struct Field {
        name: String,
        ftype: u8,
        width: usize,
    }
    let mut fields = Vec::new();
    let n_descriptors = (header_size - 32 - 1) / 32;
    for _ in 0..n_descriptors {
        if cur.remaining() < 32 {
            return Err(err("truncated field descriptor"));
        }
        let mut name_bytes = [0u8; 11];
        cur.copy_to_slice(&mut name_bytes);
        let name_end = name_bytes.iter().position(|&b| b == 0).unwrap_or(11);
        let name = String::from_utf8_lossy(&name_bytes[..name_end]).into_owned();
        let ftype = cur.get_u8();
        cur.advance(4);
        let width = cur.get_u8() as usize;
        cur.advance(1 + 14);
        fields.push(Field { name, ftype, width });
    }
    if cur.remaining() < 1 || cur.get_u8() != HEADER_TERMINATOR {
        return Err(err("missing header terminator"));
    }

    let expected_record = 1 + fields.iter().map(|f| f.width).sum::<usize>();
    if expected_record != record_size {
        return Err(err(format!(
            "record size {record_size} != field widths {expected_record}"
        )));
    }
    let body = &data[header_size..];
    if body.len() < rows * record_size {
        return Err(err("truncated records"));
    }

    let numeric: Vec<usize> = fields
        .iter()
        .enumerate()
        .filter(|(_, f)| matches!(f.ftype, b'N' | b'F'))
        .map(|(i, _)| i)
        .collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(rows); numeric.len()];
    for row in 0..rows {
        let rec = &body[row * record_size..(row + 1) * record_size];
        if rec[0] == b'*' {
            return Err(err(format!(
                "record {row} is deleted; compact the file first"
            )));
        }
        let mut offset = 1usize;
        let mut out_idx = 0usize;
        for (fi, f) in fields.iter().enumerate() {
            let raw = &rec[offset..offset + f.width];
            offset += f.width;
            if !numeric.contains(&fi) {
                continue;
            }
            let text = std::str::from_utf8(raw)
                .map_err(|_| err(format!("record {row}: non-UTF8 numeric field")))?
                .trim();
            let value: f64 = if text.is_empty() {
                0.0
            } else {
                text.parse()
                    .map_err(|_| err(format!("record {row}: bad number '{text}'")))?
            };
            columns[out_idx].push(value);
            out_idx += 1;
        }
    }
    Ok(DbfTable {
        names: numeric.iter().map(|&i| fields[i].name.clone()).collect(),
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DbfTable {
        DbfTable {
            names: vec!["TOTALPOP".into(), "EMPLOYED".into()],
            columns: vec![vec![4100.5, 2000.0, 0.0], vec![1800.25, 900.0, 12.125]],
        }
    }

    #[test]
    fn roundtrip() {
        let t = table();
        let bytes = write_dbf(&t).unwrap();
        let back = read_dbf(&bytes).unwrap();
        assert_eq!(back.names, t.names);
        assert_eq!(back.rows(), 3);
        for (a, b) in t
            .columns
            .iter()
            .flatten()
            .zip(back.columns.iter().flatten())
        {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn write_is_deterministic() {
        assert_eq!(write_dbf(&table()).unwrap(), write_dbf(&table()).unwrap());
    }

    #[test]
    fn rejects_bad_names() {
        let mut t = table();
        t.names[0] = "WAY_TOO_LONG_NAME".into();
        assert!(write_dbf(&t).is_err());
        t.names[0] = "".into();
        assert!(write_dbf(&t).is_err());
    }

    #[test]
    fn rejects_ragged_and_mismatched() {
        let t = DbfTable {
            names: vec!["A".into(), "B".into()],
            columns: vec![vec![1.0], vec![1.0, 2.0]],
        };
        assert!(write_dbf(&t).is_err());
        let t = DbfTable {
            names: vec!["A".into()],
            columns: vec![],
        };
        assert!(write_dbf(&t).is_err());
    }

    #[test]
    fn rejects_corrupted_files() {
        assert!(read_dbf(&[]).is_err());
        let bytes = write_dbf(&table()).unwrap();
        assert!(read_dbf(&bytes[..40]).is_err());
        let mut bad = bytes;
        bad[0] = 0x08; // unsupported version
        assert!(read_dbf(&bad).is_err());
    }

    #[test]
    fn empty_table_roundtrips() {
        let t = DbfTable {
            names: vec!["X".into()],
            columns: vec![vec![]],
        };
        let bytes = write_dbf(&t).unwrap();
        let back = read_dbf(&bytes).unwrap();
        assert_eq!(back.rows(), 0);
        assert_eq!(back.names, vec!["X".to_string()]);
    }
}
