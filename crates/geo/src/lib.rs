//! # emp-geo — planar geometry substrate for EMP regionalization
//!
//! The EMP paper (Kang & Magdy, ICDE 2022) operates on census-tract polygons
//! whose spatial contiguity drives the regionalization graph. This crate
//! provides the geometry layer from scratch:
//!
//! * [`Point`], [`BBox`], [`Segment`], [`Ring`], [`Polygon`], [`MultiPolygon`]
//!   primitives with robust-enough planar predicates;
//! * rook/queen [`contiguity`] detection (hashed fast path and a geometric
//!   fallback for T-junction tessellations);
//! * a uniform [`grid::GridIndex`] for candidate pruning;
//! * deterministic fork-join helpers ([`par`]) driving the multithreaded
//!   contiguity paths and `emp-data` tessellation generation;
//! * [`wkt`], [`geojson`], and ESRI [`shapefile`] + [`dbf`] I/O.
//!
//! ```
//! use emp_geo::{Polygon, MultiPolygon, contiguity::{contiguity_hashed, ContiguityKind}};
//!
//! let areas: Vec<MultiPolygon> = vec![
//!     Polygon::rect(0.0, 0.0, 1.0, 1.0).into(),
//!     Polygon::rect(1.0, 0.0, 2.0, 1.0).into(),
//! ];
//! let edges = contiguity_hashed(&areas, ContiguityKind::Rook);
//! assert_eq!(edges, vec![(0, 1)]);
//! ```

#![warn(missing_docs)]

pub mod bbox;
pub mod contiguity;
pub mod dbf;
pub mod error;
pub mod geojson;
pub mod grid;
pub mod par;
pub mod point;
pub mod polygon;
pub mod ring;
pub mod segment;
pub mod shapefile;
pub mod wkt;

pub use bbox::BBox;
pub use error::GeoError;
pub use point::Point;
pub use polygon::{MultiPolygon, Polygon};
pub use ring::{PointLocation, Ring};
pub use segment::Segment;
