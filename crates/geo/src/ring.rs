//! Linear rings: closed, simple polylines forming polygon boundaries.

use crate::bbox::BBox;
use crate::error::GeoError;
use crate::point::Point;
use crate::segment::{orientation, Orientation, Segment};

/// A closed ring of vertices. The closing edge from the last vertex back to
/// the first is implicit; the vertex list must not repeat the first vertex at
/// the end (constructors normalize this).
#[derive(Clone, PartialEq, Debug)]
pub struct Ring {
    vertices: Vec<Point>,
}

impl Ring {
    /// Creates a ring, normalizing an explicitly closed vertex list and
    /// validating that at least three distinct vertices remain.
    pub fn new(mut vertices: Vec<Point>) -> Result<Self, GeoError> {
        if vertices.len() >= 2 {
            let first = vertices[0];
            let last = *vertices.last().expect("non-empty");
            if first == last {
                vertices.pop();
            }
        }
        if vertices.len() < 3 {
            return Err(GeoError::DegenerateRing {
                vertices: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeoError::NonFiniteCoordinate);
        }
        Ok(Ring { vertices })
    }

    /// Vertices of the ring (first vertex not repeated at the end).
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (equals number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Rings are never empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the ring's edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for counter-clockwise winding).
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.cross(b);
        }
        acc * 0.5
    }

    /// Absolute area.
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Whether vertices wind counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Reverses the winding direction in place.
    pub fn reverse(&mut self) {
        self.vertices.reverse();
    }

    /// Area centroid of the ring (assumes non-self-intersecting boundary).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p0 = self.vertices[i];
            let p1 = self.vertices[(i + 1) % n];
            let w = p0.cross(p1);
            cx += (p0.x + p1.x) * w;
            cy += (p0.y + p1.y) * w;
            a += w;
        }
        if a.abs() < 1e-300 {
            // Degenerate (zero-area) ring: fall back to the vertex mean.
            let inv = 1.0 / n as f64;
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
            return sum * inv;
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// Bounding box of the ring.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied())
    }

    /// Whether `p` is strictly inside, on the boundary of, or outside the
    /// ring, via the even-odd crossing rule.
    pub fn locate(&self, p: Point) -> PointLocation {
        let n = self.vertices.len();
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if Segment::new(a, b).contains_point(p) {
                return PointLocation::Boundary;
            }
            // Ray cast towards +x; half-open rule on y avoids double counting.
            if (a.y > p.y) != (b.y > p.y) {
                let t = (p.y - a.y) / (b.y - a.y);
                let x = a.x + t * (b.x - a.x);
                if x > p.x {
                    inside = !inside;
                }
            }
        }
        if inside {
            PointLocation::Inside
        } else {
            PointLocation::Outside
        }
    }

    /// Whether `p` is inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.locate(p) != PointLocation::Outside
    }

    /// Checks that no two non-adjacent edges intersect (O(n²); intended for
    /// validation and tests, not hot paths).
    pub fn is_simple(&self) -> bool {
        let edges: Vec<Segment> = self.edges().collect();
        let n = edges.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let adjacent = j == i + 1 || (i == 0 && j == n - 1);
                if adjacent {
                    // Adjacent edges must meet only at the shared vertex, i.e.
                    // must not be collinear and overlapping.
                    let (e1, e2) = (&edges[i], &edges[j]);
                    if orientation(e1.a, e1.b, e2.b) == Orientation::Collinear
                        && e1.contains_point(e2.b)
                        && e2.b != e1.b
                        && e2.b != e1.a
                    {
                        return false;
                    }
                    continue;
                }
                if edges[i].intersects(&edges[j]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Result of a point-in-ring query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PointLocation {
    /// Strictly inside the ring.
    Inside,
    /// On the ring boundary (within tolerance).
    Boundary,
    /// Strictly outside the ring.
    Outside,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn unit_square() -> Ring {
        Ring::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0), p(0.0, 1.0)]).unwrap()
    }

    #[test]
    fn construction_normalizes_closed_lists() {
        let r = Ring::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(0.0, 0.0)]).unwrap();
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn construction_rejects_degenerate() {
        assert!(Ring::new(vec![p(0.0, 0.0), p(1.0, 0.0)]).is_err());
        assert!(Ring::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(1.0, 0.0)]).is_ok());
        assert!(Ring::new(vec![p(0.0, 0.0), p(1.0, f64::NAN), p(1.0, 1.0)]).is_err());
    }

    #[test]
    fn area_and_winding() {
        let r = unit_square();
        assert!((r.signed_area() - 1.0).abs() < 1e-12);
        assert!(r.is_ccw());
        let mut rev = r.clone();
        rev.reverse();
        assert!((rev.signed_area() + 1.0).abs() < 1e-12);
        assert!(!rev.is_ccw());
        assert_eq!(rev.area(), r.area());
    }

    #[test]
    fn perimeter_and_centroid() {
        let r = unit_square();
        assert!((r.perimeter() - 4.0).abs() < 1e-12);
        assert!(r.centroid().dist(p(0.5, 0.5)) < 1e-12);
    }

    #[test]
    fn point_location() {
        let r = unit_square();
        assert_eq!(r.locate(p(0.5, 0.5)), PointLocation::Inside);
        assert_eq!(r.locate(p(1.0, 0.5)), PointLocation::Boundary);
        assert_eq!(r.locate(p(0.0, 0.0)), PointLocation::Boundary);
        assert_eq!(r.locate(p(1.5, 0.5)), PointLocation::Outside);
        assert!(r.contains(p(0.25, 0.75)));
        assert!(!r.contains(p(-0.1, 0.5)));
    }

    #[test]
    fn point_location_concave() {
        // L-shaped ring.
        let r = Ring::new(vec![
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(2.0, 1.0),
            p(1.0, 1.0),
            p(1.0, 2.0),
            p(0.0, 2.0),
        ])
        .unwrap();
        assert_eq!(r.locate(p(0.5, 1.5)), PointLocation::Inside);
        assert_eq!(r.locate(p(1.5, 1.5)), PointLocation::Outside);
        assert_eq!(r.locate(p(1.5, 0.5)), PointLocation::Inside);
        assert!((r.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn simplicity() {
        assert!(unit_square().is_simple());
        // Bow-tie: self-intersecting.
        let bowtie = Ring::new(vec![p(0.0, 0.0), p(1.0, 1.0), p(1.0, 0.0), p(0.0, 1.0)]).unwrap();
        assert!(!bowtie.is_simple());
    }

    #[test]
    fn edges_include_closing_edge() {
        let r = unit_square();
        let edges: Vec<Segment> = r.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].b, p(0.0, 0.0));
    }

    #[test]
    fn centroid_degenerate_zero_area_falls_back_to_mean() {
        let r = Ring::new(vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)]).unwrap();
        let c = r.centroid();
        assert!(c.dist(p(1.0, 0.0)) < 1e-12);
    }
}
