//! A uniform spatial grid index over bounding boxes.
//!
//! Contiguity detection and point-lookup over tens of thousands of polygons
//! needs candidate pruning; a uniform grid is simple, cache-friendly, and
//! well-suited to census tessellations whose areas have similar sizes.

use crate::bbox::BBox;
use crate::point::Point;
use std::collections::HashMap;

/// Spatial hash grid mapping cells to the ids of bboxes overlapping them.
#[derive(Debug)]
pub struct GridIndex {
    cell: f64,
    cells: HashMap<(i64, i64), Vec<u32>>,
    bboxes: Vec<BBox>,
}

impl GridIndex {
    /// Builds an index over `bboxes`, choosing a cell size near the average
    /// box diagonal (a good default for similarly-sized areas).
    pub fn build(bboxes: Vec<BBox>) -> Self {
        let n = bboxes.len().max(1);
        let avg: f64 = bboxes
            .iter()
            .map(|b| (b.width() + b.height()) * 0.5)
            .sum::<f64>()
            / n as f64;
        let cell = if avg > 0.0 { avg * 2.0 } else { 1.0 };
        Self::build_with_cell(bboxes, cell)
    }

    /// Builds an index with an explicit cell size.
    pub fn build_with_cell(bboxes: Vec<BBox>, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
        for (id, b) in bboxes.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            let (x0, y0) = cell_of(b.min_x, b.min_y, cell);
            let (x1, y1) = cell_of(b.max_x, b.max_y, cell);
            for cx in x0..=x1 {
                for cy in y0..=y1 {
                    cells.entry((cx, cy)).or_default().push(id as u32);
                }
            }
        }
        GridIndex {
            cell,
            cells,
            bboxes,
        }
    }

    /// Number of indexed boxes.
    pub fn len(&self) -> usize {
        self.bboxes.len()
    }

    /// Whether the index holds no boxes.
    pub fn is_empty(&self) -> bool {
        self.bboxes.is_empty()
    }

    /// Ids of boxes whose bbox intersects `query` (deduplicated, sorted).
    pub fn query_bbox(&self, query: &BBox) -> Vec<u32> {
        if query.is_empty() {
            return Vec::new();
        }
        let (x0, y0) = cell_of(query.min_x, query.min_y, self.cell);
        let (x1, y1) = cell_of(query.max_x, query.max_y, self.cell);
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(ids) = self.cells.get(&(cx, cy)) {
                    for &id in ids {
                        if self.bboxes[id as usize].intersects(query) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids of boxes containing point `p` (deduplicated, sorted).
    pub fn query_point(&self, p: Point) -> Vec<u32> {
        self.query_bbox(&BBox::from_point(p))
    }

    /// All candidate id pairs `(i, j)` with `i < j` whose bboxes intersect.
    ///
    /// Used as the pruning step for contiguity detection.
    pub fn candidate_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for ids in self.cells.values() {
            for (k, &i) in ids.iter().enumerate() {
                for &j in &ids[k + 1..] {
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    if self.bboxes[a as usize].intersects(&self.bboxes[b as usize]) {
                        pairs.push((a, b));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

#[inline]
fn cell_of(x: f64, y: f64, cell: f64) -> (i64, i64) {
    ((x / cell).floor() as i64, (y / cell).floor() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes() -> Vec<BBox> {
        vec![
            BBox::new(0.0, 0.0, 1.0, 1.0),
            BBox::new(0.5, 0.5, 1.5, 1.5),
            BBox::new(10.0, 10.0, 11.0, 11.0),
        ]
    }

    #[test]
    fn query_bbox_finds_overlapping() {
        let idx = GridIndex::build(boxes());
        let hits = idx.query_bbox(&BBox::new(0.9, 0.9, 1.1, 1.1));
        assert_eq!(hits, vec![0, 1]);
        let hits = idx.query_bbox(&BBox::new(10.5, 10.5, 10.6, 10.6));
        assert_eq!(hits, vec![2]);
        assert!(idx.query_bbox(&BBox::new(5.0, 5.0, 6.0, 6.0)).is_empty());
        assert!(idx.query_bbox(&BBox::EMPTY).is_empty());
    }

    #[test]
    fn query_point_hits_containing_boxes() {
        let idx = GridIndex::build(boxes());
        assert_eq!(idx.query_point(Point::new(0.75, 0.75)), vec![0, 1]);
        assert_eq!(idx.query_point(Point::new(0.1, 0.1)), vec![0]);
        assert!(idx.query_point(Point::new(50.0, 50.0)).is_empty());
    }

    #[test]
    fn candidate_pairs_prune_far_boxes() {
        let idx = GridIndex::build(boxes());
        let pairs = idx.candidate_pairs();
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::build(vec![]);
        assert!(idx.is_empty());
        assert!(idx.candidate_pairs().is_empty());
    }

    #[test]
    fn touching_boxes_are_candidates() {
        let idx = GridIndex::build(vec![
            BBox::new(0.0, 0.0, 1.0, 1.0),
            BBox::new(1.0, 0.0, 2.0, 1.0), // shares an edge
        ]);
        assert_eq!(idx.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn many_grid_boxes_pairs_match_bruteforce() {
        // 10x10 lattice of unit boxes: each box touches its 8 surrounding
        // boxes (corner contact counts for bbox intersection).
        let mut bs = Vec::new();
        for y in 0..10 {
            for x in 0..10 {
                bs.push(BBox::new(
                    x as f64,
                    y as f64,
                    x as f64 + 1.0,
                    y as f64 + 1.0,
                ));
            }
        }
        let idx = GridIndex::build(bs.clone());
        let pairs = idx.candidate_pairs();
        let mut brute = Vec::new();
        for i in 0..bs.len() {
            for j in (i + 1)..bs.len() {
                if bs[i].intersects(&bs[j]) {
                    brute.push((i as u32, j as u32));
                }
            }
        }
        assert_eq!(pairs, brute);
    }
}
