//! ESRI Shapefile (`.shp`) reading and writing for polygon layers.
//!
//! The paper's datasets are census-tract shapefiles from the US Census
//! Bureau / SCAG portals, so a real EMP pipeline must speak this format.
//! The subset implemented is what those layers use: shape type 5 (Polygon)
//! with multiple parts, where outer rings wind clockwise and holes
//! counter-clockwise (the ESRI convention). Null shapes (type 0) are
//! accepted on read and skipped-as-empty on write. The companion `.dbf`
//! attribute table lives in [`crate::dbf`].

use crate::error::GeoError;
use crate::point::Point;
use crate::polygon::{MultiPolygon, Polygon};
use crate::ring::{PointLocation, Ring};
use bytes::{Buf, BufMut};

/// Shapefile magic number ("file code").
const FILE_CODE: i32 = 9994;
/// Shapefile format version.
const VERSION: i32 = 1000;
/// Polygon shape type.
const SHAPE_POLYGON: i32 = 5;
/// Null shape type.
const SHAPE_NULL: i32 = 0;

fn err(message: impl Into<String>) -> GeoError {
    GeoError::Io {
        message: format!("shapefile: {}", message.into()),
    }
}

/// Reads a polygon shapefile from its raw bytes. Every record must be a
/// Polygon (or Null, which yields no geometry — an error here since EMP
/// areas need geometry).
pub fn read_shp(data: &[u8]) -> Result<Vec<MultiPolygon>, GeoError> {
    if data.len() < 100 {
        return Err(err("file shorter than the 100-byte header"));
    }
    let mut header = &data[..100];
    let file_code = header.get_i32();
    if file_code != FILE_CODE {
        return Err(err(format!("bad file code {file_code}")));
    }
    header.advance(20); // unused
    let file_len_words = header.get_i32() as usize;
    if file_len_words * 2 != data.len() {
        return Err(err(format!(
            "header says {} bytes, file has {}",
            file_len_words * 2,
            data.len()
        )));
    }
    let version = header.get_i32_le();
    if version != VERSION {
        return Err(err(format!("unsupported version {version}")));
    }
    let shape_type = header.get_i32_le();
    if shape_type != SHAPE_POLYGON {
        return Err(err(format!(
            "unsupported shape type {shape_type} (want Polygon = 5)"
        )));
    }

    let mut body = &data[100..];
    let mut shapes = Vec::new();
    let mut expected_recno = 1i32;
    while body.remaining() >= 8 {
        let recno = body.get_i32();
        let content_words = body.get_i32() as usize;
        if recno != expected_recno {
            return Err(err(format!("record {expected_recno} has number {recno}")));
        }
        expected_recno += 1;
        let content_len = content_words * 2;
        if body.remaining() < content_len {
            return Err(err(format!("record {recno} truncated")));
        }
        let mut content = &body[..content_len];
        body.advance(content_len);
        let stype = content.get_i32_le();
        match stype {
            SHAPE_NULL => {
                return Err(err(format!(
                    "record {recno} is a null shape; EMP areas need geometry"
                )));
            }
            SHAPE_POLYGON => shapes.push(read_polygon_record(&mut content, recno)?),
            other => {
                return Err(err(format!(
                    "record {recno}: unsupported shape type {other}"
                )))
            }
        }
    }
    if body.has_remaining() {
        return Err(err("trailing bytes after the last record"));
    }
    Ok(shapes)
}

fn read_polygon_record(content: &mut &[u8], recno: i32) -> Result<MultiPolygon, GeoError> {
    if content.remaining() < 32 + 8 {
        return Err(err(format!("record {recno}: polygon content too short")));
    }
    content.advance(32); // bbox, recomputed on demand
    let num_parts = content.get_i32_le();
    let num_points = content.get_i32_le();
    if num_parts <= 0 || num_points <= 0 {
        return Err(err(format!("record {recno}: empty polygon")));
    }
    let (num_parts, num_points) = (num_parts as usize, num_points as usize);
    if content.remaining() < num_parts * 4 + num_points * 16 {
        return Err(err(format!("record {recno}: truncated parts/points")));
    }
    let mut part_starts = Vec::with_capacity(num_parts);
    for _ in 0..num_parts {
        part_starts.push(content.get_i32_le() as usize);
    }
    let mut points = Vec::with_capacity(num_points);
    for _ in 0..num_points {
        let x = content.get_f64_le();
        let y = content.get_f64_le();
        points.push(Point::new(x, y));
    }
    // Slice the point array into rings.
    let mut rings = Vec::with_capacity(num_parts);
    for (i, &start) in part_starts.iter().enumerate() {
        let end = part_starts.get(i + 1).copied().unwrap_or(num_points);
        if start >= end || end > num_points {
            return Err(err(format!(
                "record {recno}: bad part bounds {start}..{end}"
            )));
        }
        // ESRI rings repeat the first point; Ring::new normalizes that.
        rings.push(Ring::new(points[start..end].to_vec())?);
    }
    assemble_polygons(rings, recno)
}

/// Groups rings into polygons: ESRI outer rings wind clockwise, holes
/// counter-clockwise; each hole belongs to the outer ring containing it.
fn assemble_polygons(rings: Vec<Ring>, recno: i32) -> Result<MultiPolygon, GeoError> {
    let mut outers: Vec<(Ring, Vec<Ring>)> = Vec::new();
    let mut holes: Vec<Ring> = Vec::new();
    for ring in rings {
        if ring.is_ccw() {
            holes.push(ring);
        } else {
            outers.push((ring, Vec::new()));
        }
    }
    if outers.is_empty() {
        return Err(err(format!("record {recno}: no outer (clockwise) ring")));
    }
    'hole: for hole in holes {
        let probe = hole.vertices()[0];
        for (outer, outer_holes) in &mut outers {
            if outer.locate(probe) != PointLocation::Outside {
                outer_holes.push(hole);
                continue 'hole;
            }
        }
        return Err(err(format!(
            "record {recno}: hole not contained in any outer ring"
        )));
    }
    MultiPolygon::new(
        outers
            .into_iter()
            .map(|(outer, hs)| Polygon::with_holes(outer, hs))
            .collect(),
    )
}

/// Writes a polygon shapefile. Returns the `.shp` bytes; the index file
/// (`.shx`) is returned alongside since most GIS tools require it.
pub fn write_shp(shapes: &[MultiPolygon]) -> (Vec<u8>, Vec<u8>) {
    let mut records: Vec<Vec<u8>> = Vec::with_capacity(shapes.len());
    let mut global_bbox = crate::bbox::BBox::EMPTY;
    for mp in shapes {
        global_bbox = global_bbox.union(&mp.bbox());
        records.push(polygon_record_content(mp));
    }

    let total_len: usize = 100 + records.iter().map(|r| 8 + r.len()).sum::<usize>();
    let mut shp = Vec::with_capacity(total_len);
    write_header(&mut shp, total_len, &global_bbox);
    let mut shx = Vec::with_capacity(100 + records.len() * 8);
    write_header(&mut shx, 100 + records.len() * 8, &global_bbox);

    let mut offset_words = 50usize; // header = 50 16-bit words
    for (i, content) in records.iter().enumerate() {
        shx.put_i32(offset_words as i32);
        shx.put_i32((content.len() / 2) as i32);
        shp.put_i32((i + 1) as i32);
        shp.put_i32((content.len() / 2) as i32);
        shp.extend_from_slice(content);
        offset_words += 4 + content.len() / 2;
    }
    (shp, shx)
}

fn write_header(out: &mut Vec<u8>, file_len_bytes: usize, bbox: &crate::bbox::BBox) {
    out.put_i32(FILE_CODE);
    out.extend_from_slice(&[0u8; 20]);
    out.put_i32((file_len_bytes / 2) as i32);
    out.put_i32_le(VERSION);
    out.put_i32_le(SHAPE_POLYGON);
    let (x0, y0, x1, y1) = if bbox.is_empty() {
        (0.0, 0.0, 0.0, 0.0)
    } else {
        (bbox.min_x, bbox.min_y, bbox.max_x, bbox.max_y)
    };
    out.put_f64_le(x0);
    out.put_f64_le(y0);
    out.put_f64_le(x1);
    out.put_f64_le(y1);
    out.extend_from_slice(&[0u8; 32]); // Z/M ranges unused
}

fn polygon_record_content(mp: &MultiPolygon) -> Vec<u8> {
    // Collect rings in ESRI winding: outers clockwise, holes CCW.
    let mut rings: Vec<Vec<Point>> = Vec::new();
    for poly in mp.polygons() {
        let mut outer: Vec<Point> = poly.exterior().vertices().to_vec();
        // Internal representation is CCW exterior; ESRI wants CW.
        outer.reverse();
        rings.push(close_ring(outer));
        for hole in poly.holes() {
            let mut h: Vec<Point> = hole.vertices().to_vec();
            // Internal holes are CW; ESRI wants CCW.
            h.reverse();
            rings.push(close_ring(h));
        }
    }
    let num_points: usize = rings.iter().map(Vec::len).sum();
    let bbox = mp.bbox();

    let mut out = Vec::with_capacity(44 + rings.len() * 4 + num_points * 16);
    out.put_i32_le(SHAPE_POLYGON);
    out.put_f64_le(bbox.min_x);
    out.put_f64_le(bbox.min_y);
    out.put_f64_le(bbox.max_x);
    out.put_f64_le(bbox.max_y);
    out.put_i32_le(rings.len() as i32);
    out.put_i32_le(num_points as i32);
    let mut start = 0usize;
    for ring in &rings {
        out.put_i32_le(start as i32);
        start += ring.len();
    }
    for ring in &rings {
        for p in ring {
            out.put_f64_le(p.x);
            out.put_f64_le(p.y);
        }
    }
    out
}

fn close_ring(mut pts: Vec<Point>) -> Vec<Point> {
    if let Some(&first) = pts.first() {
        pts.push(first);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shapes() -> Vec<MultiPolygon> {
        let plain: MultiPolygon = Polygon::rect(0.0, 0.0, 2.0, 1.0).into();
        let holed = {
            let ext = Ring::new(vec![
                Point::new(10.0, 10.0),
                Point::new(14.0, 10.0),
                Point::new(14.0, 14.0),
                Point::new(10.0, 14.0),
            ])
            .unwrap();
            let hole = Ring::new(vec![
                Point::new(11.0, 11.0),
                Point::new(12.0, 11.0),
                Point::new(12.0, 12.0),
                Point::new(11.0, 12.0),
            ])
            .unwrap();
            Polygon::with_holes(ext, vec![hole]).into()
        };
        let multi = MultiPolygon::new(vec![
            Polygon::rect(20.0, 0.0, 21.0, 1.0),
            Polygon::rect(23.0, 0.0, 24.0, 1.0),
        ])
        .unwrap();
        vec![plain, holed, multi]
    }

    #[test]
    fn roundtrip_preserves_geometry() {
        let original = shapes();
        let (shp, shx) = write_shp(&original);
        assert!(shx.len() == 100 + original.len() * 8);
        let back = read_shp(&shp).unwrap();
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            assert!((a.area() - b.area()).abs() < 1e-9, "area mismatch");
            assert_eq!(a.polygons().len(), b.polygons().len());
            assert_eq!(a.polygons()[0].holes().len(), b.polygons()[0].holes().len());
        }
        // Hole survived: the holed shape has area 16 - 1 = 15.
        assert!((back[1].area() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn esri_winding_is_emitted() {
        let (shp, _) = write_shp(&shapes()[..1]);
        // Parse the raw first ring and check clockwise winding (negative
        // shoelace sum).
        let content = &shp[108..]; // header + record header
        let mut c = content;
        assert_eq!(c.get_i32_le(), SHAPE_POLYGON);
        c.advance(32);
        let parts = c.get_i32_le();
        let points = c.get_i32_le();
        assert_eq!(parts, 1);
        assert_eq!(points, 5); // closed ring
        c.advance(4);
        let mut pts = Vec::new();
        for _ in 0..points {
            pts.push(Point::new(c.get_f64_le(), c.get_f64_le()));
        }
        let shoelace: f64 = pts.windows(2).map(|w| w[0].cross(w[1])).sum();
        assert!(shoelace < 0.0, "outer ring must be clockwise");
    }

    #[test]
    fn rejects_corrupted_input() {
        assert!(read_shp(&[]).is_err());
        assert!(read_shp(&[0u8; 100]).is_err()); // bad file code
        let (mut shp, _) = write_shp(&shapes());
        // Flip the declared length.
        shp[27] = shp[27].wrapping_add(1);
        assert!(read_shp(&shp).is_err());
        // Truncate a record.
        let (shp, _) = write_shp(&shapes());
        assert!(read_shp(&shp[..shp.len() - 10]).is_err());
    }

    #[test]
    fn rejects_non_polygon_layers() {
        let (mut shp, _) = write_shp(&shapes());
        shp[32] = 1; // shape type -> Point (LE byte 0 of i32 at offset 32)
        assert!(read_shp(&shp).is_err());
    }

    #[test]
    fn reads_tessellation_scale_layer() {
        // A bigger synthetic layer exercises multi-record paths.
        let polys: Vec<MultiPolygon> = (0..200)
            .map(|i| {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                Polygon::rect(x, y, x + 1.0, y + 1.0).into()
            })
            .collect();
        let (shp, _) = write_shp(&polys);
        let back = read_shp(&shp).unwrap();
        assert_eq!(back.len(), 200);
        assert!((back.iter().map(|p| p.area()).sum::<f64>() - 200.0).abs() < 1e-9);
    }
}
