//! Planar points and basic vector arithmetic.
//!
//! All geometry in this crate is planar (projected coordinates). Census-tract
//! shapefiles are typically consumed in a projected CRS before contiguity
//! analysis, so a planar model matches the paper's pipeline.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or 2-vector) in the plane.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Dot product with another vector.
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean distance to another point.
    #[inline]
    pub fn dist2(self, other: Point) -> f64 {
        let d = self - other;
        d.dot(d)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Midpoint of the segment between `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Whether both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Lexicographic comparison `(x, then y)`; total order for finite points.
    #[inline]
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

/// A point key quantized to a fixed grid, usable as a hash-map key.
///
/// Contiguity detection hashes polygon vertices/edges; floating-point
/// coordinates coming from file round-trips may differ in the last ulp, so we
/// snap to a quantum (default `1e-9` of a coordinate unit) before hashing.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QuantizedPoint {
    /// Quantized x coordinate.
    pub qx: i64,
    /// Quantized y coordinate.
    pub qy: i64,
}

/// Default quantum used by [`QuantizedPoint::quantize`].
pub const DEFAULT_QUANTUM: f64 = 1e-9;

impl QuantizedPoint {
    /// Quantizes `p` with the given positive quantum.
    #[inline]
    pub fn with_quantum(p: Point, quantum: f64) -> Self {
        debug_assert!(quantum > 0.0);
        QuantizedPoint {
            qx: (p.x / quantum).round() as i64,
            qy: (p.y / quantum).round() as i64,
        }
    }

    /// Quantizes `p` with [`DEFAULT_QUANTUM`].
    #[inline]
    pub fn quantize(p: Point) -> Self {
        Self::with_quantum(p, DEFAULT_QUANTUM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn conversions() {
        let p: Point = (2.0, 3.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 3.0));
    }

    #[test]
    fn quantized_points_snap_nearby_coordinates() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(1.0 + 1e-12, 2.0 - 1e-12);
        assert_eq!(QuantizedPoint::quantize(a), QuantizedPoint::quantize(b));
        let c = Point::new(1.0001, 2.0);
        assert_ne!(QuantizedPoint::quantize(a), QuantizedPoint::quantize(c));
    }

    #[test]
    fn lex_cmp_orders_by_x_then_y() {
        use std::cmp::Ordering;
        let a = Point::new(0.0, 5.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(a.lex_cmp(b), Ordering::Less);
        assert_eq!(b.lex_cmp(a), Ordering::Greater);
        assert_eq!(a.lex_cmp(a), Ordering::Equal);
        let c = Point::new(0.0, 6.0);
        assert_eq!(a.lex_cmp(c), Ordering::Less);
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
