//! GeoJSON reading/writing for area datasets.
//!
//! The supported subset is what regionalization pipelines exchange: a
//! `FeatureCollection` of `Polygon`/`MultiPolygon` features with numeric
//! properties (the spatially extensive attributes and the dissimilarity
//! attribute).

use crate::error::GeoError;
use crate::point::Point;
use crate::polygon::{MultiPolygon, Polygon};
use crate::ring::Ring;
use serde_json::{json, Map, Value};
use std::collections::BTreeMap;

/// One area read from GeoJSON: geometry plus numeric properties.
#[derive(Clone, Debug, PartialEq)]
pub struct AreaFeature {
    /// The area's (multi-)polygon geometry.
    pub geometry: MultiPolygon,
    /// Numeric properties, sorted by name for deterministic iteration.
    pub properties: BTreeMap<String, f64>,
}

/// Parses a GeoJSON `FeatureCollection` string into area features.
///
/// Non-numeric properties are ignored; `Polygon` and `MultiPolygon`
/// geometries are accepted, everything else is an error.
pub fn read_feature_collection(text: &str) -> Result<Vec<AreaFeature>, GeoError> {
    let doc: Value = serde_json::from_str(text).map_err(|e| GeoError::GeoJson {
        message: format!("invalid JSON: {e}"),
    })?;
    let obj = doc
        .as_object()
        .ok_or_else(|| err("root is not an object"))?;
    if obj.get("type").and_then(Value::as_str) != Some("FeatureCollection") {
        return Err(err("root type must be FeatureCollection"));
    }
    let features = obj
        .get("features")
        .and_then(Value::as_array)
        .ok_or_else(|| err("missing features array"))?;

    let mut out = Vec::with_capacity(features.len());
    for (idx, f) in features.iter().enumerate() {
        let fo = f
            .as_object()
            .ok_or_else(|| err(&format!("feature {idx} is not an object")))?;
        let geom = fo
            .get("geometry")
            .ok_or_else(|| err(&format!("feature {idx} has no geometry")))?;
        let geometry = parse_geometry(geom).map_err(|e| err(&format!("feature {idx}: {e}")))?;
        let mut properties = BTreeMap::new();
        if let Some(props) = fo.get("properties").and_then(Value::as_object) {
            for (k, v) in props {
                if let Some(num) = v.as_f64() {
                    properties.insert(k.clone(), num);
                }
            }
        }
        out.push(AreaFeature {
            geometry,
            properties,
        });
    }
    Ok(out)
}

/// Serializes area features to a GeoJSON `FeatureCollection` string.
pub fn write_feature_collection(features: &[AreaFeature]) -> String {
    let feats: Vec<Value> = features
        .iter()
        .map(|f| {
            let props: Map<String, Value> = f
                .properties
                .iter()
                .map(|(k, v)| (k.clone(), json!(v)))
                .collect();
            json!({
                "type": "Feature",
                "geometry": geometry_to_value(&f.geometry),
                "properties": Value::Object(props),
            })
        })
        .collect();
    let doc = json!({ "type": "FeatureCollection", "features": feats });
    serde_json::to_string(&doc).expect("GeoJSON value serializes")
}

fn err(message: &str) -> GeoError {
    GeoError::GeoJson {
        message: message.to_string(),
    }
}

fn parse_position(v: &Value) -> Result<Point, GeoError> {
    let arr = v
        .as_array()
        .ok_or_else(|| err("position is not an array"))?;
    if arr.len() < 2 {
        return Err(err("position needs 2 coordinates"));
    }
    let x = arr[0].as_f64().ok_or_else(|| err("x not a number"))?;
    let y = arr[1].as_f64().ok_or_else(|| err("y not a number"))?;
    Ok(Point::new(x, y))
}

fn parse_ring(v: &Value) -> Result<Ring, GeoError> {
    let arr = v.as_array().ok_or_else(|| err("ring is not an array"))?;
    let pts = arr
        .iter()
        .map(parse_position)
        .collect::<Result<Vec<_>, _>>()?;
    Ring::new(pts)
}

fn parse_polygon_coords(v: &Value) -> Result<Polygon, GeoError> {
    let rings = v
        .as_array()
        .ok_or_else(|| err("polygon coords not an array"))?;
    if rings.is_empty() {
        return Err(err("polygon needs an exterior ring"));
    }
    let exterior = parse_ring(&rings[0])?;
    let holes = rings[1..]
        .iter()
        .map(parse_ring)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Polygon::with_holes(exterior, holes))
}

fn parse_geometry(v: &Value) -> Result<MultiPolygon, GeoError> {
    let obj = v
        .as_object()
        .ok_or_else(|| err("geometry is not an object"))?;
    let gtype = obj
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| err("geometry missing type"))?;
    let coords = obj
        .get("coordinates")
        .ok_or_else(|| err("geometry missing coordinates"))?;
    match gtype {
        "Polygon" => Ok(parse_polygon_coords(coords)?.into()),
        "MultiPolygon" => {
            let parts = coords
                .as_array()
                .ok_or_else(|| err("multipolygon coords not an array"))?;
            let polys = parts
                .iter()
                .map(parse_polygon_coords)
                .collect::<Result<Vec<_>, _>>()?;
            MultiPolygon::new(polys)
        }
        other => Err(err(&format!("unsupported geometry type '{other}'"))),
    }
}

fn ring_to_value(r: &Ring) -> Value {
    let mut coords: Vec<Value> = r.vertices().iter().map(|p| json!([p.x, p.y])).collect();
    // GeoJSON rings repeat the first position.
    let first = r.vertices()[0];
    coords.push(json!([first.x, first.y]));
    Value::Array(coords)
}

fn polygon_to_value(p: &Polygon) -> Value {
    let mut rings = vec![ring_to_value(p.exterior())];
    rings.extend(p.holes().iter().map(ring_to_value));
    Value::Array(rings)
}

fn geometry_to_value(mp: &MultiPolygon) -> Value {
    if mp.polygons().len() == 1 {
        json!({
            "type": "Polygon",
            "coordinates": polygon_to_value(&mp.polygons()[0]),
        })
    } else {
        json!({
            "type": "MultiPolygon",
            "coordinates": Value::Array(mp.polygons().iter().map(polygon_to_value).collect()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<AreaFeature> {
        let mut props = BTreeMap::new();
        props.insert("TOTALPOP".to_string(), 4200.0);
        props.insert("EMPLOYED".to_string(), 1800.5);
        vec![
            AreaFeature {
                geometry: Polygon::rect(0.0, 0.0, 1.0, 1.0).into(),
                properties: props,
            },
            AreaFeature {
                geometry: MultiPolygon::new(vec![
                    Polygon::rect(2.0, 0.0, 3.0, 1.0),
                    Polygon::rect(4.0, 0.0, 5.0, 1.0),
                ])
                .unwrap(),
                properties: BTreeMap::new(),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let features = sample();
        let text = write_feature_collection(&features);
        let back = read_feature_collection(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].properties["TOTALPOP"], 4200.0);
        assert!((back[0].geometry.area() - 1.0).abs() < 1e-12);
        assert_eq!(back[1].geometry.polygons().len(), 2);
    }

    #[test]
    fn parses_handwritten_geojson() {
        let text = r#"{
          "type": "FeatureCollection",
          "features": [{
            "type": "Feature",
            "geometry": {
              "type": "Polygon",
              "coordinates": [[[0,0],[2,0],[2,2],[0,2],[0,0]]]
            },
            "properties": {"POP": 10, "NAME": "tract-1"}
          }]
        }"#;
        let features = read_feature_collection(text).unwrap();
        assert_eq!(features.len(), 1);
        assert!((features[0].geometry.area() - 4.0).abs() < 1e-12);
        // Numeric kept, string ignored.
        assert_eq!(features[0].properties.len(), 1);
        assert_eq!(features[0].properties["POP"], 10.0);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(read_feature_collection("not json").is_err());
        assert!(read_feature_collection("{\"type\": \"Feature\"}").is_err());
        assert!(read_feature_collection(
            r#"{"type":"FeatureCollection","features":[{"type":"Feature","geometry":{"type":"Point","coordinates":[0,0]},"properties":{}}]}"#
        )
        .is_err());
    }

    #[test]
    fn polygon_with_hole_roundtrips() {
        let ext = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 2.0),
        ])
        .unwrap();
        let f = AreaFeature {
            geometry: Polygon::with_holes(ext, vec![hole]).into(),
            properties: BTreeMap::new(),
        };
        let text = write_feature_collection(std::slice::from_ref(&f));
        let back = read_feature_collection(&text).unwrap();
        assert!((back[0].geometry.area() - 15.0).abs() < 1e-12);
    }
}
