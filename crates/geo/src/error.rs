//! Error type for geometry construction and I/O.

use std::fmt;

/// Errors produced by geometry constructors, parsers, and writers.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A ring needs at least three distinct vertices.
    DegenerateRing {
        /// Number of distinct vertices supplied.
        vertices: usize,
    },
    /// NaN or infinite coordinate encountered.
    NonFiniteCoordinate,
    /// A multi-polygon needs at least one part.
    EmptyMultiPolygon,
    /// WKT text failed to parse.
    WktParse {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// GeoJSON document failed to parse or had an unexpected shape.
    GeoJson {
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure (message-only to keep the error `Clone`).
    Io {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::DegenerateRing { vertices } => {
                write!(f, "ring needs >= 3 distinct vertices, got {vertices}")
            }
            GeoError::NonFiniteCoordinate => write!(f, "non-finite coordinate"),
            GeoError::EmptyMultiPolygon => write!(f, "multi-polygon needs >= 1 part"),
            GeoError::WktParse { offset, message } => {
                write!(f, "WKT parse error at byte {offset}: {message}")
            }
            GeoError::GeoJson { message } => write!(f, "GeoJSON error: {message}"),
            GeoError::Io { message } => write!(f, "I/O error: {message}"),
        }
    }
}

impl std::error::Error for GeoError {}

impl From<std::io::Error> for GeoError {
    fn from(e: std::io::Error) -> Self {
        GeoError::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeoError::DegenerateRing { vertices: 2 };
        assert!(e.to_string().contains("3 distinct"));
        let e = GeoError::WktParse {
            offset: 7,
            message: "expected '('".into(),
        };
        assert!(e.to_string().contains("byte 7"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GeoError = io.into();
        assert!(matches!(e, GeoError::Io { .. }));
    }
}
