//! Line segments and the planar predicates built on them.

use crate::bbox::BBox;
use crate::point::Point;

/// Tolerance used by the orientation / on-segment predicates.
pub const EPS: f64 = 1e-12;

/// Orientation of the ordered point triple `(a, b, c)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Orientation {
    /// Negative signed area.
    Clockwise,
    /// Positive signed area.
    CounterClockwise,
    /// Zero signed area within tolerance.
    Collinear,
}

/// Computes the orientation of the triple `(a, b, c)`.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let v = (b - a).cross(c - a);
    // Scale tolerance with magnitude so large coordinates stay robust.
    let scale = (b - a).norm() * (c - a).norm();
    let tol = EPS * scale.max(1.0);
    if v > tol {
        Orientation::CounterClockwise
    } else if v < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// A directed line segment.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from endpoints.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Bounding box of the segment.
    #[inline]
    pub fn bbox(&self) -> BBox {
        BBox::from_points([self.a, self.b])
    }

    /// Whether `p` lies on the (closed) segment, within tolerance.
    pub fn contains_point(&self, p: Point) -> bool {
        if orientation(self.a, self.b, p) != Orientation::Collinear {
            return false;
        }
        let d = self.b - self.a;
        let t = (p - self.a).dot(d);
        -EPS <= t && t <= d.dot(d) + EPS
    }

    /// Whether two closed segments intersect (shared endpoints count).
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orientation(self.a, self.b, other.a);
        let o2 = orientation(self.a, self.b, other.b);
        let o3 = orientation(other.a, other.b, self.a);
        let o4 = orientation(other.a, other.b, self.b);

        if o1 != o2 && o3 != o4 && o1 != Orientation::Collinear && o2 != Orientation::Collinear {
            return true;
        }
        // Collinear / endpoint cases.
        (o1 == Orientation::Collinear && self.contains_point(other.a))
            || (o2 == Orientation::Collinear && self.contains_point(other.b))
            || (o3 == Orientation::Collinear && other.contains_point(self.a))
            || (o4 == Orientation::Collinear && other.contains_point(self.b))
    }

    /// Intersection point of two properly crossing segments, if any.
    ///
    /// Returns `None` for parallel/collinear pairs and for pairs that do not
    /// cross within both segments' extents.
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        if denom.abs() < EPS {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
            Some(self.a + r * t)
        } else {
            None
        }
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orientation_basic() {
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn contains_point_on_and_off() {
        let s = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        assert!(s.contains_point(p(1.0, 1.0)));
        assert!(s.contains_point(p(0.0, 0.0)));
        assert!(s.contains_point(p(2.0, 2.0)));
        assert!(!s.contains_point(p(3.0, 3.0)));
        assert!(!s.contains_point(p(1.0, 1.5)));
    }

    #[test]
    fn proper_crossing() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        let s2 = Segment::new(p(0.0, 2.0), p(2.0, 0.0));
        assert!(s1.intersects(&s2));
        let ip = s1.intersection(&s2).unwrap();
        assert!(ip.dist(p(1.0, 1.0)) < 1e-9);
    }

    #[test]
    fn disjoint_segments() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert!(!s1.intersects(&s2));
        assert!(s1.intersection(&s2).is_none());
    }

    #[test]
    fn shared_endpoint_counts_as_intersection() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(2.0, 1.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(3.0, 0.0));
        assert!(s1.intersects(&s2));
        // Parallel non-crossing has no unique intersection point.
        assert!(s1.intersection(&s2).is_none());
    }

    #[test]
    fn length_and_midpoint() {
        let s = Segment::new(p(0.0, 0.0), p(3.0, 4.0));
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), p(1.5, 2.0));
        assert_eq!(s.bbox(), BBox::new(0.0, 0.0, 3.0, 4.0));
    }
}
