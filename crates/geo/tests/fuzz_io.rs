//! Robustness tests: the parsers must reject arbitrary garbage with errors,
//! never panic, and round-trip arbitrary valid geometry.

use emp_geo::dbf::{read_dbf, write_dbf, DbfTable};
use emp_geo::geojson::read_feature_collection;
use emp_geo::shapefile::{read_shp, write_shp};
use emp_geo::wkt::parse_wkt;
use emp_geo::{MultiPolygon, Point, Polygon, Ring};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wkt_parser_never_panics(input in ".{0,200}") {
        let _ = parse_wkt(&input);
    }

    #[test]
    fn wkt_parser_handles_near_valid_input(
        xs in prop::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 0..12),
        junk in "[A-Za-z(), .0-9-]{0,30}",
    ) {
        let coords: Vec<String> = xs.iter().map(|(x, y)| format!("{x} {y}")).collect();
        let text = format!("POLYGON (({})){junk}", coords.join(", "));
        let _ = parse_wkt(&text);
    }

    #[test]
    fn geojson_reader_never_panics(input in ".{0,300}") {
        let _ = read_feature_collection(&input);
    }

    #[test]
    fn shp_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = read_shp(&data);
    }

    #[test]
    fn shp_reader_survives_bit_flips(
        flip_at in 0usize..500,
        flip_bit in 0u8..8,
    ) {
        let shapes: Vec<MultiPolygon> = vec![
            Polygon::rect(0.0, 0.0, 2.0, 1.0).into(),
            Polygon::rect(3.0, 0.0, 4.0, 2.0).into(),
        ];
        let (mut shp, _) = write_shp(&shapes);
        let idx = flip_at % shp.len();
        shp[idx] ^= 1 << flip_bit;
        // Must not panic; may legitimately succeed if the flip hits padding.
        let _ = read_shp(&shp);
    }

    #[test]
    fn dbf_reader_never_panics(data in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = read_dbf(&data);
    }

    #[test]
    fn dbf_roundtrips_arbitrary_numeric_tables(
        rows in prop::collection::vec((0.0f64..1e9, 0.0f64..1e4), 0..30),
    ) {
        let table = DbfTable {
            names: vec!["POP".into(), "EMP".into()],
            columns: vec![
                rows.iter().map(|r| (r.0 * 1000.0).round() / 1000.0).collect(),
                rows.iter().map(|r| (r.1 * 1000.0).round() / 1000.0).collect(),
            ],
        };
        let bytes = write_dbf(&table).unwrap();
        let back = read_dbf(&bytes).unwrap();
        prop_assert_eq!(back.rows(), table.rows());
        for (a, b) in table.columns.iter().flatten().zip(back.columns.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn shp_roundtrips_random_rectangles(
        rects in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.1f64..10.0, 0.1f64..10.0), 1..25),
    ) {
        let shapes: Vec<MultiPolygon> = rects
            .iter()
            .map(|&(x, y, w, h)| Polygon::rect(x, y, x + w, y + h).into())
            .collect();
        let (shp, shx) = write_shp(&shapes);
        prop_assert_eq!(shx.len(), 100 + shapes.len() * 8);
        let back = read_shp(&shp).unwrap();
        prop_assert_eq!(back.len(), shapes.len());
        for (a, b) in shapes.iter().zip(&back) {
            prop_assert!((a.area() - b.area()).abs() < 1e-9);
        }
    }

    #[test]
    fn shp_dbf_roundtrip_preserves_coords_order_and_fields(
        rects in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0.1f64..10.0, 0.1f64..10.0), 1..20),
    ) {
        // Shapefile + DBF round-trip as a paired dataset: ring coordinates
        // are stored as IEEE f64 (bit-exact), record order must be
        // preserved, and integer field values survive the fixed-precision
        // numeric text encoding exactly.
        let shapes: Vec<MultiPolygon> = rects
            .iter()
            .map(|&(x, y, w, h)| Polygon::rect(x, y, x + w, y + h).into())
            .collect();
        let (shp, _) = write_shp(&shapes);
        let back = read_shp(&shp).unwrap();
        prop_assert_eq!(back.len(), shapes.len());
        // Winding may be normalized to the ESRI convention on write, so
        // compare bit-exact vertex sets and bboxes rather than vertex order.
        let ring_key = |r: &Ring| {
            let mut v: Vec<(u64, u64)> =
                r.vertices().iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
            v.sort_unstable();
            v
        };
        for (orig, rt) in shapes.iter().zip(&back) {
            let (a, b) = (orig.bbox(), rt.bbox());
            prop_assert_eq!(
                (a.min_x, a.min_y, a.max_x, a.max_y),
                (b.min_x, b.min_y, b.max_x, b.max_y)
            );
            prop_assert_eq!(orig.polygons().len(), rt.polygons().len());
            for (po, pr) in orig.polygons().iter().zip(rt.polygons()) {
                prop_assert_eq!(ring_key(po.exterior()), ring_key(pr.exterior()));
                prop_assert_eq!(po.holes().len(), pr.holes().len());
            }
        }
        // Parallel attribute table: IDX pins record order, POP holds
        // integers that must round-trip exactly through the text encoding.
        let idx: Vec<f64> = (0..shapes.len()).map(|i| i as f64).collect();
        let pop: Vec<f64> = rects.iter().map(|r| (r.0 * 1e6).trunc()).collect();
        let table = DbfTable {
            names: vec!["IDX".into(), "POP".into()],
            columns: vec![idx.clone(), pop.clone()],
        };
        let bytes = write_dbf(&table).unwrap();
        let dbf = read_dbf(&bytes).unwrap();
        prop_assert_eq!(dbf.names, table.names);
        prop_assert_eq!(dbf.rows(), shapes.len());
        prop_assert_eq!(dbf.columns[0].clone(), idx);
        prop_assert_eq!(dbf.columns[1].clone(), pop);
    }

    #[test]
    fn ring_area_is_invariant_under_rotation(
        pts in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..12),
        shift in 0usize..12,
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        if let Ok(ring) = Ring::new(points.clone()) {
            let mut rotated = points.clone();
            rotated.rotate_left(shift % points.len());
            if let Ok(ring2) = Ring::new(rotated) {
                // Same cyclic sequence -> same unsigned area.
                prop_assert!((ring.area() - ring2.area()).abs() < 1e-6 * ring.area().max(1.0));
            }
        }
    }
}
