//! Property tests for the flight-recorder ring: against an unbounded
//! reference recording, the ring's surviving tail must be *exactly* the
//! last `K` events (overwrite-oldest, wraparound included), and the
//! repaired dump must stay a well-formed replayable trace whatever prefix
//! was lost.

use emp_obs::ring::TRUNCATED_SPAN;
use emp_obs::{replay, BufferSink, Counters, Event, EventSink, JsonlWriter, RingSink, SpanInfo};
use proptest::prelude::*;

const NAMES: [&str; 5] = ["solve", "tabu", "construct_iter", "grow", "adjust"];

/// One sink call; a recorded stream is an arbitrary interleaving of these.
#[derive(Clone, Debug)]
enum Op {
    Span { name: usize, depth: usize },
    Trajectory { iteration: u64, milli_h: u32 },
    Note { name: usize, value: i32 },
    TraceEnd,
}

/// Weighted op mix: mostly span closes (the repair-relevant case), some
/// trajectory points and notes, the occasional `trace_end`.
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0u64..10,
        0usize..NAMES.len(),
        0usize..4,
        0u32..1_000_000,
        -1000i32..1000,
    )
        .prop_map(|(kind, name, depth, milli_h, value)| match kind {
            0..=3 => Op::Span { name, depth },
            4..=6 => Op::Trajectory {
                iteration: u64::from(milli_h),
                milli_h,
            },
            7..=8 => Op::Note { name, value },
            _ => Op::TraceEnd,
        })
}

/// Drives one op stream into any sink — the same call sequence the solver
/// would make.
fn apply(ops: &[Op], sink: &mut dyn EventSink) {
    for op in ops {
        match op {
            Op::Span { name, depth } => {
                let counters = Counters::new();
                sink.span_close(&SpanInfo {
                    name: NAMES[*name],
                    index: None,
                    depth: *depth,
                    wall_s: 0.0,
                    counters: &counters,
                    allocs: 0,
                    alloc_bytes: 0,
                });
            }
            Op::Trajectory { iteration, milli_h } => {
                sink.trajectory_point(*iteration, f64::from(*milli_h) / 1000.0);
            }
            Op::Note { name, value } => sink.note(NAMES[*name], f64::from(*value)),
            Op::TraceEnd => sink.trace_end(),
        }
    }
}

/// Canonical byte rendering for event-sequence equality (the `Event` enum
/// is compared through the JSONL lines `trace_report` actually reads).
fn jsonl(events: &[Event]) -> String {
    let mut writer = JsonlWriter::new(Vec::new());
    replay(events, &mut writer);
    String::from_utf8(writer.into_inner()).expect("utf8")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tail_is_exactly_the_last_k_reference_events(
        ops in prop::collection::vec(op_strategy(), 0..120),
        cap in 1usize..40,
    ) {
        let reference = BufferSink::new();
        let handle = reference.handle();
        let mut reference: Box<dyn EventSink + Send> = Box::new(reference);
        apply(&ops, reference.as_mut());
        let mut ring = RingSink::new(cap);
        apply(&ops, &mut ring);

        let all = handle.lock().expect("reference events").clone();
        prop_assert_eq!(all.len(), ops.len(), "buffer records every op");
        prop_assert_eq!(ring.total_events(), ops.len() as u64);
        prop_assert_eq!(
            ring.dropped_events(),
            ops.len().saturating_sub(cap) as u64
        );

        let expected = &all[all.len() - all.len().min(cap)..];
        prop_assert_eq!(jsonl(&ring.tail_events()), jsonl(expected));
    }

    #[test]
    fn dump_is_repaired_terminated_and_preserves_the_tail(
        ops in prop::collection::vec(op_strategy(), 0..120),
        cap in 1usize..40,
    ) {
        let mut ring = RingSink::new(cap);
        apply(&ops, &mut ring);
        let tail = ring.tail_events();
        let dump = ring.dump_events();

        // Terminated, and truncation is advertised iff events were lost.
        prop_assert!(matches!(dump.last(), Some(Event::TraceEnd)));
        let dropped = ring.dropped_events();
        match &dump[0] {
            Event::Note { key, value } if key == "flight_recorder_dropped" => {
                prop_assert!(dropped > 0);
                prop_assert_eq!(*value, dropped as f64);
            }
            _ => prop_assert!(dropped == 0, "lost events must be advertised"),
        }

        // The surviving tail is embedded verbatim (the repair only wraps
        // it; it never rewrites recorded events).
        prop_assert!(jsonl(&dump).contains(&jsonl(&tail)));

        // Replaying the reader's pending-stack rule over the dump leaves
        // no orphans: every deep close finds a parent close later on.
        let mut pending: Vec<usize> = Vec::new();
        for event in &dump {
            if let Event::Span(s) = event {
                while pending.last().is_some_and(|&d| d == s.depth + 1) {
                    pending.pop();
                }
                if s.depth > 0 {
                    pending.push(s.depth);
                }
            }
        }
        prop_assert!(pending.is_empty(), "dump left orphan spans: {pending:?}");

        // Synthetic closes only ever appear when something was truncated.
        let synthetic = dump
            .iter()
            .any(|e| matches!(e, Event::Span(s) if s.name == TRUNCATED_SPAN));
        let tail_has_deep_spans = tail
            .iter()
            .any(|e| matches!(e, Event::Span(s) if s.depth > 0));
        prop_assert!(!synthetic || tail_has_deep_spans);
    }
}
