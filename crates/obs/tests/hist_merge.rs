//! Property tests for the log-bucketed histogram's merge semantics: the
//! contract that makes per-worker accumulation + join-time merge sound.

use emp_obs::hist::{bucket_index, HIST_BUCKETS};
use emp_obs::Histogram;
use proptest::prelude::*;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Values spanning the full bucket range: small integers, mid-range, and
/// near-top magnitudes (shifted so every bucket index is reachable).
fn value_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..64, 0u64..1024), 1..40).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(shift, low)| (1u64 << shift.min(62)).wrapping_add(low))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merged_bucket_counts_are_exactly_additive(
        a in value_strategy(),
        b in value_strategy(),
    ) {
        let (ha, hb) = (build(&a), build(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        for i in 0..HIST_BUCKETS {
            prop_assert_eq!(merged.bucket(i), ha.bucket(i) + hb.bucket(i));
        }
        prop_assert_eq!(merged.count(), ha.count() + hb.count());
        prop_assert_eq!(merged.sum(), ha.sum().saturating_add(hb.sum()));
        prop_assert_eq!(merged.min(), ha.min().min(hb.min()));
        prop_assert_eq!(merged.max(), ha.max().max(hb.max()));
    }

    #[test]
    fn merged_quantiles_bracket_per_input_quantiles(
        a in value_strategy(),
        b in value_strategy(),
        q_mil in 1u64..1000,
    ) {
        // For any quantile q, merging cannot push the estimate outside the
        // envelope of the two inputs' estimates: the merged distribution is
        // a mixture, so its q-quantile lies between the per-input ones.
        let q = q_mil as f64 / 1000.0;
        let (ha, hb) = (build(&a), build(&b));
        let mut merged = ha.clone();
        merged.merge(&hb);
        let qa = ha.quantile(q).expect("non-empty");
        let qb = hb.quantile(q).expect("non-empty");
        let qm = merged.quantile(q).expect("non-empty");
        prop_assert!(
            qa.min(qb) <= qm && qm <= qa.max(qb),
            "q={q}: merged {qm} outside [{}, {}]", qa.min(qb), qa.max(qb),
        );
    }

    #[test]
    fn merge_is_commutative(a in value_strategy(), b in value_strategy()) {
        let (ha, hb) = (build(&a), build(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn recording_equals_merging_singletons(values in value_strategy()) {
        // h(v1..vn) == merge of n singleton histograms: accumulation order
        // and grouping are irrelevant, which is what lets workers keep
        // private histograms and merge at join.
        let direct = build(&values);
        let mut merged = Histogram::new();
        for &v in &values {
            merged.merge(&build(&[v]));
        }
        prop_assert_eq!(direct, merged);
    }
}

#[test]
fn top_bucket_saturates_instead_of_overflowing() {
    // Epoch-style overflow: huge values land in the saturating top bucket,
    // and the sum saturates at u64::MAX rather than wrapping.
    let mut h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    h.record(1u64 << 62); // smallest value that still maps to the top bucket
    assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    assert_eq!(bucket_index(1u64 << 62), HIST_BUCKETS - 1);
    assert_eq!(h.bucket(HIST_BUCKETS - 1), 3);
    assert_eq!(h.count(), 3);
    assert_eq!(h.sum(), u64::MAX, "sum must saturate, not wrap");
    assert_eq!(h.max(), Some(u64::MAX));
    // The top bucket's reported upper bound stays u64::MAX under quantile.
    assert_eq!(h.quantile(1.0), Some(u64::MAX));

    // Merging two saturated histograms keeps the invariants.
    let mut other = Histogram::new();
    other.record(u64::MAX);
    h.merge(&other);
    assert_eq!(h.bucket(HIST_BUCKETS - 1), 4);
    assert_eq!(h.sum(), u64::MAX);
}
