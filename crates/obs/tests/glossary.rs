//! Anti-drift check: the counter glossary table in `DESIGN.md` §6 must
//! mirror `CounterKind::ALL` exactly — every counter documented, nothing
//! documented that the code no longer has, same order.

use emp_obs::{CounterKind, COUNTER_KINDS};

/// Extracts the backticked counter names from the §6 glossary table, in
/// document order.
fn documented_counters(design: &str) -> Vec<String> {
    let section = design
        .split("## 6.")
        .nth(1)
        .expect("DESIGN.md has a section 6")
        .split("\n## ")
        .next()
        .expect("section 6 has an end");
    section
        .lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("| `")?;
            let (name, _) = rest.split_once('`')?;
            Some(name.to_string())
        })
        .collect()
}

#[test]
fn design_glossary_matches_counter_kinds() {
    let design = include_str!("../../../DESIGN.md");
    let documented = documented_counters(design);
    assert_eq!(
        documented.len(),
        COUNTER_KINDS,
        "DESIGN.md §6 glossary documents {} counters but the code has {}; \
         update the table and CounterKind together",
        documented.len(),
        COUNTER_KINDS,
    );
    let actual: Vec<String> = CounterKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    assert_eq!(
        documented, actual,
        "DESIGN.md §6 glossary rows must match CounterKind::ALL in order"
    );
}
