//! Event sinks: where span closes, trajectory points, and notes go.
//!
//! The [`Recorder`](crate::Recorder) always accumulates [`Counters`]; the
//! sink decides whether the *event stream* (spans, trajectory, notes) is
//! kept. [`NoopSink`] drops everything (the production default),
//! [`InMemorySink`] buffers for tests, and
//! [`JsonlWriter`](crate::JsonlWriter) streams structured JSONL.

use crate::counters::Counters;
use crate::hist::Histograms;
use std::sync::{Arc, Mutex};

/// A closed span, as seen by a sink: name, optional index (e.g. the
/// construction-iteration number), nesting depth (0 = root), wall time, and
/// the counter activity that happened inside it.
#[derive(Clone, Copy, Debug)]
pub struct SpanInfo<'a> {
    /// Span name (`"solve"`, `"construct_iter"`, `"grow"`, `"tabu"`, ...).
    pub name: &'a str,
    /// Optional ordinal (construction iteration, resync number, ...).
    pub index: Option<u64>,
    /// Nesting depth at close time; the root span has depth 0.
    pub depth: usize,
    /// Wall-clock seconds spent inside the span.
    pub wall_s: f64,
    /// Counter deltas attributable to the span (gauges: final watermark).
    pub counters: &'a Counters,
    /// Heap allocations inside the span (0 unless the `alloc-track`
    /// feature is active and the counting allocator is installed).
    pub allocs: u64,
    /// Heap bytes requested inside the span (same gating as `allocs`).
    pub alloc_bytes: u64,
}

/// Receives telemetry events from a [`Recorder`](crate::Recorder).
///
/// All methods default to no-ops so sinks implement only what they keep.
/// `enabled` lets the recorder skip event construction entirely for the
/// no-op sink.
pub trait EventSink {
    /// Whether this sink keeps events at all. The recorder caches this once;
    /// counters are accumulated regardless.
    fn enabled(&self) -> bool {
        true
    }

    /// A span closed.
    fn span_close(&mut self, span: &SpanInfo<'_>) {
        let _ = span;
    }

    /// The local search recorded an objective value (after `iteration`
    /// applied moves; iteration 0 is the pre-search objective).
    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        let _ = (iteration, heterogeneity);
    }

    /// A free-form named scalar (e.g. `"skater_splits"`).
    fn note(&mut self, key: &str, value: f64) {
        let _ = (key, value);
    }

    /// The recorder's final histogram bundle (emitted once per
    /// [`Recorder::finish`](crate::Recorder::finish), only when non-empty).
    fn histograms(&mut self, hists: &Histograms) {
        let _ = hists;
    }

    /// The trace is complete: `Recorder::finish` ran and nothing follows
    /// from this recorder. Readers use the terminal marker to detect
    /// truncated traces.
    fn trace_end(&mut self) {}

    /// Flush buffered output, if any.
    fn flush(&mut self) {}
}

/// The disabled sink: every event is dropped before it is built.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
}

/// An owned copy of a [`SpanInfo`], buffered by [`InMemorySink`].
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name.
    pub name: String,
    /// Optional ordinal.
    pub index: Option<u64>,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Counter deltas inside the span.
    pub counters: Counters,
    /// Heap allocations inside the span (see [`SpanInfo::allocs`]).
    pub allocs: u64,
    /// Heap bytes requested inside the span.
    pub alloc_bytes: u64,
}

/// Everything an [`InMemorySink`] buffered, readable after the solve.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Closed spans, in close order (children before parents).
    pub spans: Vec<SpanRecord>,
    /// `(iteration, heterogeneity)` trajectory points, in record order.
    pub trajectory: Vec<(u64, f64)>,
    /// `(key, value)` notes, in record order.
    pub notes: Vec<(String, f64)>,
    /// Histogram bundles, one per finished recorder that had data.
    pub hists: Vec<Histograms>,
    /// Number of `trace_end` markers received.
    pub trace_ends: u64,
}

impl TraceData {
    /// Total wall seconds of all spans with the given name.
    pub fn wall_of(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.wall_s)
            .sum()
    }
}

/// A test sink buffering every event in memory. The buffer is shared: clone
/// the handle before moving the sink into a recorder, then inspect it after
/// the solve.
#[derive(Clone, Debug, Default)]
pub struct InMemorySink {
    data: Arc<Mutex<TraceData>>,
}

impl InMemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle onto the shared buffer; survives the sink being consumed.
    pub fn handle(&self) -> Arc<Mutex<TraceData>> {
        Arc::clone(&self.data)
    }
}

impl EventSink for InMemorySink {
    fn span_close(&mut self, span: &SpanInfo<'_>) {
        self.data.lock().unwrap().spans.push(SpanRecord {
            name: span.name.to_string(),
            index: span.index,
            depth: span.depth,
            wall_s: span.wall_s,
            counters: *span.counters,
            allocs: span.allocs,
            alloc_bytes: span.alloc_bytes,
        });
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.data
            .lock()
            .unwrap()
            .trajectory
            .push((iteration, heterogeneity));
    }

    fn note(&mut self, key: &str, value: f64) {
        self.data
            .lock()
            .unwrap()
            .notes
            .push((key.to_string(), value));
    }

    fn histograms(&mut self, hists: &Histograms) {
        self.data.lock().unwrap().hists.push(hists.clone());
    }

    fn trace_end(&mut self) {
        self.data.lock().unwrap().trace_ends += 1;
    }
}

/// One telemetry event, owned, in the order it was emitted.
///
/// [`InMemorySink`] splits the stream by event type (convenient for
/// assertions); `Event` keeps the *interleaving*, which is what a replay
/// needs to reproduce a JSONL trace byte-for-byte.
#[derive(Clone, Debug)]
pub enum Event {
    /// A span closed (boxed: the record carries a full counter snapshot,
    /// an order of magnitude bigger than the other variants).
    Span(Box<SpanRecord>),
    /// A trajectory point was recorded.
    Trajectory {
        /// Applied-move count at record time (0 = pre-search).
        iteration: u64,
        /// Objective value at that point.
        heterogeneity: f64,
    },
    /// A named scalar note.
    Note {
        /// Note key.
        key: String,
        /// Note value.
        value: f64,
    },
    /// A recorder finished and reported its histograms (boxed: the bundle
    /// is ~6 KiB and would otherwise dominate every buffered event).
    Hist(Box<Histograms>),
    /// A recorder finished; the trace is complete up to here.
    TraceEnd,
}

/// A sink buffering events **in arrival order** for later [`replay`].
///
/// This is the building block of the parallel experiment harness: each job
/// records into a private `BufferSink`, and after the pool joins, the
/// buffers are replayed into the experiment's shared sink in canonical job
/// order — so a `--jobs N` trace has exactly the event sequence of the
/// sequential run, independent of scheduling.
#[derive(Clone, Debug, Default)]
pub struct BufferSink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl BufferSink {
    /// An empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A handle onto the shared event buffer; survives the sink being moved
    /// into a recorder.
    pub fn handle(&self) -> Arc<Mutex<Vec<Event>>> {
        Arc::clone(&self.events)
    }
}

impl EventSink for BufferSink {
    fn span_close(&mut self, span: &SpanInfo<'_>) {
        self.events
            .lock()
            .unwrap()
            .push(Event::Span(Box::new(SpanRecord {
                name: span.name.to_string(),
                index: span.index,
                depth: span.depth,
                wall_s: span.wall_s,
                counters: *span.counters,
                allocs: span.allocs,
                alloc_bytes: span.alloc_bytes,
            })));
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.events.lock().unwrap().push(Event::Trajectory {
            iteration,
            heterogeneity,
        });
    }

    fn note(&mut self, key: &str, value: f64) {
        self.events.lock().unwrap().push(Event::Note {
            key: key.to_string(),
            value,
        });
    }

    fn histograms(&mut self, hists: &Histograms) {
        self.events
            .lock()
            .unwrap()
            .push(Event::Hist(Box::new(hists.clone())));
    }

    fn trace_end(&mut self) {
        self.events.lock().unwrap().push(Event::TraceEnd);
    }
}

/// Replays buffered events into `sink` in buffer order.
pub fn replay(events: &[Event], sink: &mut dyn EventSink) {
    for event in events {
        match event {
            Event::Span(s) => sink.span_close(&SpanInfo {
                name: &s.name,
                index: s.index,
                depth: s.depth,
                wall_s: s.wall_s,
                counters: &s.counters,
                allocs: s.allocs,
                alloc_bytes: s.alloc_bytes,
            }),
            Event::Trajectory {
                iteration,
                heterogeneity,
            } => sink.trajectory_point(*iteration, *heterogeneity),
            Event::Note { key, value } => sink.note(key, *value),
            Event::Hist(h) => sink.histograms(h),
            Event::TraceEnd => sink.trace_end(),
        }
    }
}

/// A cloneable sink wrapper so one underlying sink (e.g. a
/// [`JsonlWriter`](crate::JsonlWriter) for a whole experiment) can serve
/// several sequential solves.
#[derive(Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<Box<dyn EventSink + Send>>>,
}

impl SharedSink {
    /// Wraps a sink for shared use.
    pub fn new(sink: Box<dyn EventSink + Send>) -> Self {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }
}

impl std::fmt::Debug for SharedSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink(..)")
    }
}

impl EventSink for SharedSink {
    fn enabled(&self) -> bool {
        self.inner.lock().unwrap().enabled()
    }

    fn span_close(&mut self, span: &SpanInfo<'_>) {
        self.inner.lock().unwrap().span_close(span);
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.inner
            .lock()
            .unwrap()
            .trajectory_point(iteration, heterogeneity);
    }

    fn note(&mut self, key: &str, value: f64) {
        self.inner.lock().unwrap().note(key, value);
    }

    fn histograms(&mut self, hists: &Histograms) {
        self.inner.lock().unwrap().histograms(hists);
    }

    fn trace_end(&mut self) {
        self.inner.lock().unwrap().trace_end();
    }

    fn flush(&mut self) {
        self.inner.lock().unwrap().flush();
    }
}

/// Forwards every event to two sinks — e.g. a JSONL trace *and* the
/// flight recorder ring at once. `enabled` is the OR of the branches, so
/// teeing a live sink onto a disabled one still records.
pub struct TeeSink {
    a: Box<dyn EventSink + Send>,
    b: Box<dyn EventSink + Send>,
}

impl TeeSink {
    /// Tees `a` and `b`.
    pub fn new(a: Box<dyn EventSink + Send>, b: Box<dyn EventSink + Send>) -> Self {
        TeeSink { a, b }
    }
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TeeSink(..)")
    }
}

impl EventSink for TeeSink {
    fn enabled(&self) -> bool {
        self.a.enabled() || self.b.enabled()
    }

    fn span_close(&mut self, span: &SpanInfo<'_>) {
        self.a.span_close(span);
        self.b.span_close(span);
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.a.trajectory_point(iteration, heterogeneity);
        self.b.trajectory_point(iteration, heterogeneity);
    }

    fn note(&mut self, key: &str, value: f64) {
        self.a.note(key, value);
        self.b.note(key, value);
    }

    fn histograms(&mut self, hists: &Histograms) {
        self.a.histograms(hists);
        self.b.histograms(hists);
    }

    fn trace_end(&mut self) {
        self.a.trace_end();
        self.b.trace_end();
    }

    fn flush(&mut self) {
        self.a.flush();
        self.b.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterKind;

    #[test]
    fn tee_forwards_to_both_branches() {
        let left = InMemorySink::new();
        let right = BufferSink::new();
        let (lh, rh) = (left.handle(), right.handle());
        let mut tee = TeeSink::new(Box::new(left), Box::new(right));
        assert!(tee.enabled());
        tee.trajectory_point(3, 7.5);
        tee.trace_end();
        assert_eq!(lh.lock().unwrap().trajectory, vec![(3, 7.5)]);
        assert_eq!(rh.lock().unwrap().len(), 2);
    }

    #[test]
    fn tee_with_one_live_branch_is_enabled() {
        let tee = TeeSink::new(Box::new(NoopSink), Box::new(BufferSink::new()));
        assert!(tee.enabled());
        let tee = TeeSink::new(Box::new(NoopSink), Box::new(NoopSink));
        assert!(!tee.enabled());
    }

    #[test]
    fn in_memory_buffers_all_event_types() {
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut sink = sink;
        let mut c = Counters::new();
        c.inc(CounterKind::TabuMovesApplied);
        sink.span_close(&SpanInfo {
            name: "tabu",
            index: Some(1),
            depth: 1,
            wall_s: 0.5,
            counters: &c,
            allocs: 0,
            alloc_bytes: 0,
        });
        sink.trajectory_point(0, 12.0);
        sink.note("k", 3.0);
        let mut hists = crate::hist::Histograms::new();
        hists.record(crate::hist::HistKind::TabuBoundary, 9);
        sink.histograms(&hists);
        sink.trace_end();
        let data = handle.lock().unwrap();
        assert_eq!(data.spans.len(), 1);
        assert_eq!(data.spans[0].name, "tabu");
        assert_eq!(data.spans[0].counters.get(CounterKind::TabuMovesApplied), 1);
        assert_eq!(data.trajectory, vec![(0, 12.0)]);
        assert_eq!(data.notes, vec![("k".to_string(), 3.0)]);
        assert!((data.wall_of("tabu") - 0.5).abs() < 1e-12);
        assert_eq!(data.hists.len(), 1);
        assert_eq!(
            data.hists[0]
                .get(crate::hist::HistKind::TabuBoundary)
                .count(),
            1
        );
        assert_eq!(data.trace_ends, 1);
    }

    #[test]
    fn shared_sink_delegates() {
        let mem = InMemorySink::new();
        let handle = mem.handle();
        let mut shared = SharedSink::new(Box::new(mem));
        assert!(shared.enabled());
        let mut clone = shared.clone();
        clone.trajectory_point(1, 2.0);
        shared.trajectory_point(2, 1.0);
        shared.flush();
        assert_eq!(handle.lock().unwrap().trajectory, vec![(1, 2.0), (2, 1.0)]);
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!NoopSink.enabled());
    }

    #[test]
    fn buffer_sink_preserves_interleaving_and_replays() {
        let buf = BufferSink::new();
        let handle = buf.handle();
        let mut buf = buf;
        let mut c = Counters::new();
        c.inc(CounterKind::RegionsCreated);
        buf.trajectory_point(0, 10.0);
        buf.span_close(&SpanInfo {
            name: "grow",
            index: Some(2),
            depth: 1,
            wall_s: 0.1,
            counters: &c,
            allocs: 0,
            alloc_bytes: 0,
        });
        buf.note("k", 1.5);
        buf.trajectory_point(1, 9.0);
        let mut hists = crate::hist::Histograms::new();
        hists.record(crate::hist::HistKind::TabuMoveDelta, 3);
        buf.histograms(&hists);
        buf.trace_end();

        // Arrival order survives, unlike InMemorySink's per-type buffers.
        {
            let events = handle.lock().unwrap();
            assert_eq!(events.len(), 6);
            assert!(matches!(events[0], Event::Trajectory { iteration: 0, .. }));
            assert!(matches!(events[1], Event::Span(_)));
            assert!(matches!(events[2], Event::Note { .. }));
            assert!(matches!(events[3], Event::Trajectory { iteration: 1, .. }));
            assert!(matches!(events[4], Event::Hist(_)));
            assert!(matches!(events[5], Event::TraceEnd));
        }

        // Replaying into a second buffer reproduces the exact sequence.
        let target = BufferSink::new();
        let target_handle = target.handle();
        let mut target = target;
        replay(&handle.lock().unwrap(), &mut target);
        let replayed = target_handle.lock().unwrap();
        let original = handle.lock().unwrap();
        assert_eq!(replayed.len(), original.len());
        for (a, b) in original.iter().zip(replayed.iter()) {
            match (a, b) {
                (Event::Span(x), Event::Span(y)) => {
                    assert_eq!(x.name, y.name);
                    assert_eq!(x.index, y.index);
                    assert_eq!(x.depth, y.depth);
                    assert_eq!(x.counters, y.counters);
                }
                (
                    Event::Trajectory {
                        iteration: i1,
                        heterogeneity: h1,
                    },
                    Event::Trajectory {
                        iteration: i2,
                        heterogeneity: h2,
                    },
                ) => {
                    assert_eq!(i1, i2);
                    assert_eq!(h1, h2);
                }
                (Event::Note { key: k1, value: v1 }, Event::Note { key: k2, value: v2 }) => {
                    assert_eq!(k1, k2);
                    assert_eq!(v1, v2);
                }
                (Event::Hist(h1), Event::Hist(h2)) => assert_eq!(h1, h2),
                (Event::TraceEnd, Event::TraceEnd) => {}
                other => panic!("event kind mismatch after replay: {other:?}"),
            }
        }
    }
}
