//! Fixed-capacity ring-buffer flight recorder: keeps the last `K` telemetry
//! events with zero steady-state allocation, for post-mortem dumps when a
//! solve dies on a deadline, a cancellation, or a panic.
//!
//! The ring stores compact fixed-size records (span/note names live in
//! inline byte buffers, truncated past [`NAME_CAP`] bytes), so recording in
//! the tabu hot loop never allocates once the ring is warm. The only
//! exception is the rare [`Histograms`] bundle emitted at
//! [`Recorder::finish`](crate::Recorder::finish), which is boxed.
//!
//! A dump ([`RingSink::dump_jsonl`]) is a *repaired* replayable JSONL tail:
//! because the ring drops the oldest events, the surviving span closes may
//! reference enclosing spans whose closes were overwritten (or never
//! happened — the solve was cut mid-span). The dump appends synthetic
//! `flight_truncated` closing spans that adopt every unparented span and a
//! terminal `trace_end` marker, so `trace_report` ingests the tail with
//! zero orphans and no truncation flag.

use crate::counters::Counters;
use crate::hist::Histograms;
use crate::jsonl::JsonlWriter;
use crate::sink::{replay, Event, EventSink, SpanInfo, SpanRecord};
use std::sync::{Arc, Mutex};

/// Default ring capacity for the `repro` / `bench_core` flight recorders.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Inline capacity for span and note names; longer names are truncated at
/// a char boundary (every solver span name is far shorter).
pub const NAME_CAP: usize = 48;

/// Name of the synthetic spans appended by the dump repair pass.
pub const TRUNCATED_SPAN: &str = "flight_truncated";

/// A fixed-capacity inline string (no heap).
#[derive(Clone, Copy)]
struct SmallStr {
    len: u8,
    buf: [u8; NAME_CAP],
}

impl SmallStr {
    fn new(s: &str) -> SmallStr {
        let mut end = s.len().min(NAME_CAP);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; NAME_CAP];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallStr {
            len: end as u8,
            buf,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).expect("built from &str")
    }
}

/// One ring slot: a compact owned event.
// Inline `Span` payloads keep the steady-state record path allocation-free;
// boxing the large variant would trade one-time ring capacity for a heap
// allocation on every recorded span.
#[allow(clippy::large_enum_variant)]
enum Slot {
    Span {
        name: SmallStr,
        index: Option<u64>,
        depth: usize,
        wall_s: f64,
        counters: Counters,
        allocs: u64,
        alloc_bytes: u64,
    },
    Trajectory {
        iteration: u64,
        heterogeneity: f64,
    },
    Note {
        key: SmallStr,
        value: f64,
    },
    Hist(Box<Histograms>),
    TraceEnd,
}

impl Slot {
    fn to_event(&self) -> Event {
        match self {
            Slot::Span {
                name,
                index,
                depth,
                wall_s,
                counters,
                allocs,
                alloc_bytes,
            } => Event::Span(Box::new(SpanRecord {
                name: name.as_str().to_string(),
                index: *index,
                depth: *depth,
                wall_s: *wall_s,
                counters: *counters,
                allocs: *allocs,
                alloc_bytes: *alloc_bytes,
            })),
            Slot::Trajectory {
                iteration,
                heterogeneity,
            } => Event::Trajectory {
                iteration: *iteration,
                heterogeneity: *heterogeneity,
            },
            Slot::Note { key, value } => Event::Note {
                key: key.as_str().to_string(),
                value: *value,
            },
            Slot::Hist(h) => Event::Hist(h.clone()),
            Slot::TraceEnd => Event::TraceEnd,
        }
    }
}

struct RingBuffer {
    cap: usize,
    /// Pre-allocated to `cap`; pushes never grow past it.
    slots: Vec<Slot>,
    /// Next write position (== oldest slot once the ring wrapped).
    next: usize,
    /// Events ever written (so `total - len` is the overwritten count).
    total: u64,
}

impl RingBuffer {
    fn push(&mut self, slot: Slot) {
        if self.slots.len() < self.cap {
            self.slots.push(slot);
        } else {
            self.slots[self.next] = slot;
        }
        self.next = (self.next + 1) % self.cap;
        self.total += 1;
    }

    /// Slots oldest-first.
    fn chronological(&self) -> impl Iterator<Item = &Slot> {
        let (wrapped, head) = if self.slots.len() < self.cap {
            (&[][..], &self.slots[..])
        } else {
            self.slots.split_at(self.next)
        };
        head.iter().chain(wrapped.iter())
    }
}

/// An [`EventSink`] recording into a shared fixed-capacity ring. Clones
/// share the buffer, so one handle can live in a panic hook while another
/// is attached to a recorder (possibly behind a
/// [`TeeSink`](crate::TeeSink) next to a trace sink).
#[derive(Clone)]
pub struct RingSink {
    buf: Arc<Mutex<RingBuffer>>,
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.buf.lock().unwrap();
        f.debug_struct("RingSink")
            .field("cap", &buf.cap)
            .field("len", &buf.slots.len())
            .field("total", &buf.total)
            .finish()
    }
}

impl RingSink {
    /// A ring holding the last `capacity` events (clamped to at least 1).
    /// The full slot storage is allocated up front.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        RingSink {
            buf: Arc::new(Mutex::new(RingBuffer {
                cap,
                slots: Vec::with_capacity(cap),
                next: 0,
                total: 0,
            })),
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap().slots.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total_events(&self) -> u64 {
        self.buf.lock().unwrap().total
    }

    /// Events lost to overwrite-oldest.
    pub fn dropped_events(&self) -> u64 {
        let buf = self.buf.lock().unwrap();
        buf.total - buf.slots.len() as u64
    }

    /// The surviving tail, oldest-first, as owned [`Event`]s — exactly the
    /// last `min(total, capacity)` events recorded, unrepaired.
    pub fn tail_events(&self) -> Vec<Event> {
        let buf = self.buf.lock().unwrap();
        buf.chronological().map(Slot::to_event).collect()
    }

    /// The repaired, replayable dump: a `flight_recorder_dropped` note when
    /// events were overwritten, the surviving tail, synthetic
    /// [`TRUNCATED_SPAN`] closes adopting every unparented span, and a
    /// terminal `trace_end` — so `trace_report` ingests it with zero
    /// orphans and no truncation flag.
    pub fn dump_events(&self) -> Vec<Event> {
        let dropped = self.dropped_events();
        let tail = self.tail_events();
        let mut out = Vec::with_capacity(tail.len() + 8);
        if dropped > 0 {
            out.push(Event::Note {
                key: "flight_recorder_dropped".to_string(),
                value: dropped as f64,
            });
        }
        // Simulate the reader's pending stack over the tail: a close at
        // depth d adopts trailing pending entries at depth d+1; depth-0
        // closes finalize. Whatever is left needs synthetic parents.
        let mut pending: Vec<usize> = Vec::new();
        for event in &tail {
            if let Event::Span(s) = event {
                while pending.last().is_some_and(|&d| d == s.depth + 1) {
                    pending.pop();
                }
                if s.depth > 0 {
                    pending.push(s.depth);
                }
            }
        }
        let ends_complete = matches!(tail.last(), Some(Event::TraceEnd));
        out.extend(tail);
        while let Some(&deepest) = pending.last() {
            let close_at = deepest - 1;
            while pending.last().is_some_and(|&d| d == close_at + 1) {
                pending.pop();
            }
            if close_at > 0 {
                pending.push(close_at);
            }
            out.push(Event::Span(Box::new(SpanRecord {
                name: TRUNCATED_SPAN.to_string(),
                index: None,
                depth: close_at,
                wall_s: 0.0,
                counters: Counters::new(),
                allocs: 0,
                alloc_bytes: 0,
            })));
        }
        if !ends_complete || out.last().is_none_or(|e| !matches!(e, Event::TraceEnd)) {
            out.push(Event::TraceEnd);
        }
        out
    }

    /// [`RingSink::dump_events`] rendered as JSONL text (the exact line
    /// shapes `trace_report` ingests).
    pub fn dump_jsonl(&self) -> String {
        let mut writer = JsonlWriter::new(Vec::new());
        replay(&self.dump_events(), &mut writer);
        String::from_utf8(writer.into_inner()).expect("JSONL output is UTF-8")
    }
}

impl EventSink for RingSink {
    fn span_close(&mut self, span: &SpanInfo<'_>) {
        self.buf.lock().unwrap().push(Slot::Span {
            name: SmallStr::new(span.name),
            index: span.index,
            depth: span.depth,
            wall_s: span.wall_s,
            counters: *span.counters,
            allocs: span.allocs,
            alloc_bytes: span.alloc_bytes,
        });
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.buf.lock().unwrap().push(Slot::Trajectory {
            iteration,
            heterogeneity,
        });
    }

    fn note(&mut self, key: &str, value: f64) {
        self.buf.lock().unwrap().push(Slot::Note {
            key: SmallStr::new(key),
            value,
        });
    }

    fn histograms(&mut self, hists: &Histograms) {
        self.buf
            .lock()
            .unwrap()
            .push(Slot::Hist(Box::new(hists.clone())));
    }

    fn trace_end(&mut self) {
        self.buf.lock().unwrap().push(Slot::TraceEnd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterKind;

    fn span(name: &str, depth: usize) -> SpanInfo<'static> {
        // Leak a counters bundle per test span; fine in tests.
        let counters: &'static Counters = Box::leak(Box::new(Counters::new()));
        SpanInfo {
            name: Box::leak(name.to_string().into_boxed_str()),
            index: None,
            depth,
            wall_s: 0.001,
            counters,
            allocs: 0,
            alloc_bytes: 0,
        }
    }

    #[test]
    fn keeps_last_k_events_across_wraparound() {
        let mut ring = RingSink::new(3);
        for i in 0..7u64 {
            ring.trajectory_point(i, i as f64);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_events(), 7);
        assert_eq!(ring.dropped_events(), 4);
        let tail = ring.tail_events();
        let iters: Vec<u64> = tail
            .iter()
            .map(|e| match e {
                Event::Trajectory { iteration, .. } => *iteration,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(iters, vec![4, 5, 6]);
    }

    #[test]
    fn dump_repairs_unparented_spans_and_terminates() {
        let mut ring = RingSink::new(8);
        // A tail cut mid-solve: deep closes whose roots never closed.
        ring.span_close(&span("grow", 2));
        ring.span_close(&span("adjust", 2));
        ring.span_close(&span("construct_iter", 1));
        ring.span_close(&span("resync", 2));
        let dump = ring.dump_events();
        assert!(matches!(dump.last(), Some(Event::TraceEnd)));
        // Re-simulate the reader: nothing may be left unparented.
        let mut pending: Vec<usize> = Vec::new();
        for event in &dump {
            if let Event::Span(s) = event {
                while pending.last().is_some_and(|&d| d == s.depth + 1) {
                    pending.pop();
                }
                if s.depth > 0 {
                    pending.push(s.depth);
                }
            }
        }
        assert!(pending.is_empty(), "repair left orphans: {pending:?}");
        let synthetic = dump
            .iter()
            .filter(|e| matches!(e, Event::Span(s) if s.name == TRUNCATED_SPAN))
            .count();
        // Needs a depth-1 close (adopting resync) and a depth-0 root.
        assert_eq!(synthetic, 2);
    }

    #[test]
    fn dump_notes_dropped_events() {
        let mut ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.trajectory_point(i, 0.0);
        }
        let dump = ring.dump_events();
        match &dump[0] {
            Event::Note { key, value } => {
                assert_eq!(key, "flight_recorder_dropped");
                assert_eq!(*value, 3.0);
            }
            other => panic!("expected dropped note, got {other:?}"),
        }
    }

    #[test]
    fn complete_trace_dump_is_untouched() {
        let mut ring = RingSink::new(8);
        ring.span_close(&span("solve", 0));
        ring.trace_end();
        let dump = ring.dump_events();
        assert_eq!(dump.len(), 2);
        assert!(matches!(dump.last(), Some(Event::TraceEnd)));
    }

    #[test]
    fn dump_jsonl_lines_parse_and_end_with_marker() {
        let mut ring = RingSink::new(4);
        let mut c = Counters::new();
        c.inc(CounterKind::TabuMovesApplied);
        ring.span_close(&SpanInfo {
            name: "tabu",
            index: None,
            depth: 1,
            wall_s: 0.5,
            counters: &c,
            allocs: 0,
            alloc_bytes: 0,
        });
        ring.note("stop_reason", 1.0);
        let text = ring.dump_jsonl();
        let last = text.lines().last().unwrap();
        assert_eq!(last, "{\"event\":\"trace_end\"}");
        assert!(text.contains("\"name\":\"tabu\""), "{text}");
        assert!(text.contains(TRUNCATED_SPAN), "{text}");
    }

    #[test]
    fn long_names_truncate_at_char_boundary() {
        let long = "x".repeat(NAME_CAP + 10);
        let mut ring = RingSink::new(2);
        ring.note(&long, 1.0);
        match &ring.tail_events()[0] {
            Event::Note { key, .. } => assert_eq!(key.len(), NAME_CAP),
            other => panic!("unexpected {other:?}"),
        }
        // Multi-byte boundary: 'é' is 2 bytes; a name of 'é's must not be
        // cut mid-codepoint.
        let accented = "é".repeat(NAME_CAP);
        ring.note(&accented, 1.0);
        match &ring.tail_events()[1] {
            Event::Note { key, .. } => {
                assert!(key.len() <= NAME_CAP);
                assert!(key.chars().all(|ch| ch == 'é'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
