//! Shared Prometheus metric names and line rendering.
//!
//! Two producers emit Prometheus text format: the post-hoc `trace_report
//! --prom` snapshot (aggregated from JSONL traces) and the live `/metrics`
//! endpoint (rendered from [`LiveRegistry`](crate::LiveRegistry) atomics).
//! Both MUST use identical metric names, label keys, and value rendering,
//! so a dashboard built against one works against the other. This module is
//! the single source of those conventions; `crates/bench/tests` diffs the
//! two outputs for a common recording.

use crate::hist::{bucket_upper, Histogram, HIST_BUCKETS};
use std::fmt::Write as _;

/// Counter totals: `emp_counter_total{counter="<name>"} <v>`.
pub const COUNTER_TOTAL: &str = "emp_counter_total";
/// Per-path span wall seconds: `emp_span_seconds_total{path="a;b"} <s>`.
pub const SPAN_SECONDS_TOTAL: &str = "emp_span_seconds_total";
/// Per-path span close counts: `emp_span_closes_total{path="a;b"} <n>`.
pub const SPAN_CLOSES_TOTAL: &str = "emp_span_closes_total";
/// Histogram family prefix: `emp_hist_bucket` / `emp_hist_sum` /
/// `emp_hist_count` with `hist`/`unit` labels.
pub const HIST_FAMILY: &str = "emp_hist";
/// Per-solve progress gauge: `emp_solve_progress{solve="<l>",field="<f>"}`.
pub const SOLVE_PROGRESS: &str = "emp_solve_progress";
/// Per-solve stop-reason gauge:
/// `emp_solve_stop_reason{solve="<l>",reason="<name>"} 1`.
pub const SOLVE_STOP_REASON: &str = "emp_solve_stop_reason";

/// Appends the `# TYPE` header for the counter family.
pub fn push_counter_header(out: &mut String) {
    let _ = writeln!(out, "# TYPE {COUNTER_TOTAL} counter");
}

/// Appends one counter total line.
pub fn push_counter(out: &mut String, counter: &str, value: u64) {
    let _ = writeln!(out, "{COUNTER_TOTAL}{{counter=\"{counter}\"}} {value}");
}

/// Appends the `# TYPE` headers for the span families.
pub fn push_span_headers(out: &mut String) {
    let _ = writeln!(out, "# TYPE {SPAN_SECONDS_TOTAL} counter");
    let _ = writeln!(out, "# TYPE {SPAN_CLOSES_TOTAL} counter");
}

/// Appends the seconds + closes lines for one span path.
pub fn push_span(out: &mut String, path: &str, total_s: f64, closes: u64) {
    let _ = writeln!(out, "{SPAN_SECONDS_TOTAL}{{path=\"{path}\"}} {total_s}");
    let _ = writeln!(out, "{SPAN_CLOSES_TOTAL}{{path=\"{path}\"}} {closes}");
}

/// Appends the `# TYPE` header for the histogram family.
pub fn push_hist_header(out: &mut String) {
    let _ = writeln!(out, "# TYPE {HIST_FAMILY} histogram");
}

/// Appends one histogram as a native Prometheus histogram: cumulative `le`
/// buckets over the log-2 layout (only non-zero buckets, the mandatory
/// `+Inf` line always present), then `_sum` and `_count`.
pub fn push_hist(out: &mut String, name: &str, unit: &str, h: &Histogram) {
    let mut cumulative = 0u64;
    for i in 0..HIST_BUCKETS {
        let c = h.bucket(i);
        if c == 0 {
            continue;
        }
        cumulative += c;
        let le = if i == HIST_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            bucket_upper(i).to_string()
        };
        let _ = writeln!(
            out,
            "{HIST_FAMILY}_bucket{{hist=\"{name}\",unit=\"{unit}\",le=\"{le}\"}} {cumulative}"
        );
    }
    if h.bucket(HIST_BUCKETS - 1) == 0 {
        let _ = writeln!(
            out,
            "{HIST_FAMILY}_bucket{{hist=\"{name}\",unit=\"{unit}\",le=\"+Inf\"}} {cumulative}"
        );
    }
    let _ = writeln!(
        out,
        "{HIST_FAMILY}_sum{{hist=\"{name}\",unit=\"{unit}\"}} {}",
        h.sum()
    );
    let _ = writeln!(
        out,
        "{HIST_FAMILY}_count{{hist=\"{name}\",unit=\"{unit}\"}} {}",
        h.count()
    );
}

/// Appends the `# TYPE` header for the per-solve progress gauge.
pub fn push_progress_header(out: &mut String) {
    let _ = writeln!(out, "# TYPE {SOLVE_PROGRESS} gauge");
}

/// Appends one per-solve progress gauge line.
pub fn push_progress(out: &mut String, solve: &str, field: &str, value: impl std::fmt::Display) {
    let _ = writeln!(
        out,
        "{SOLVE_PROGRESS}{{solve=\"{solve}\",field=\"{field}\"}} {value}"
    );
}

/// Appends the `# TYPE` header for the stop-reason gauge.
pub fn push_stop_reason_header(out: &mut String) {
    let _ = writeln!(out, "# TYPE {SOLVE_STOP_REASON} gauge");
}

/// Appends the one-hot stop-reason line for a stopped solve.
pub fn push_stop_reason(out: &mut String, solve: &str, reason: &str) {
    let _ = writeln!(
        out,
        "{SOLVE_STOP_REASON}{{solve=\"{solve}\",reason=\"{reason}\"}} 1"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_span_line_shapes_are_pinned() {
        let mut out = String::new();
        push_counter_header(&mut out);
        push_counter(&mut out, "tabu_moves_applied", 10);
        push_span_headers(&mut out);
        push_span(&mut out, "solve;tabu", 0.5, 2);
        assert_eq!(
            out,
            "# TYPE emp_counter_total counter\n\
             emp_counter_total{counter=\"tabu_moves_applied\"} 10\n\
             # TYPE emp_span_seconds_total counter\n\
             # TYPE emp_span_closes_total counter\n\
             emp_span_seconds_total{path=\"solve;tabu\"} 0.5\n\
             emp_span_closes_total{path=\"solve;tabu\"} 2\n"
        );
    }

    #[test]
    fn hist_rendering_is_cumulative_with_inf_line() {
        let mut h = Histogram::new();
        h.record(5); // bucket 3, upper 7
        h.record(12); // bucket 4, upper 15
        let mut out = String::new();
        push_hist_header(&mut out);
        push_hist(&mut out, "tabu_boundary_size", "areas", &h);
        assert!(out.contains("le=\"7\"} 1"), "{out}");
        assert!(out.contains("le=\"15\"} 2"), "{out}");
        assert!(out.contains("le=\"+Inf\"} 2"), "{out}");
        assert!(
            out.contains("emp_hist_count{hist=\"tabu_boundary_size\",unit=\"areas\"} 2"),
            "{out}"
        );
    }

    #[test]
    fn gauge_line_shapes_are_pinned() {
        let mut out = String::new();
        push_progress_header(&mut out);
        push_progress(&mut out, "fact-n1000-seed42", "iteration", 17u64);
        push_stop_reason_header(&mut out);
        push_stop_reason(&mut out, "fact-n1000-seed42", "deadline_exceeded");
        assert_eq!(
            out,
            "# TYPE emp_solve_progress gauge\n\
             emp_solve_progress{solve=\"fact-n1000-seed42\",field=\"iteration\"} 17\n\
             # TYPE emp_solve_stop_reason gauge\n\
             emp_solve_stop_reason{solve=\"fact-n1000-seed42\",reason=\"deadline_exceeded\"} 1\n"
        );
    }
}
