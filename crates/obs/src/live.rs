//! Live metrics: lock-free per-solve mirrors of the solver's counters,
//! histograms, and progress gauges, readable while the solve runs.
//!
//! A [`LiveSolve`] is a bundle of `AtomicU64`s registered in a
//! [`LiveRegistry`] and attached to a [`Recorder`](crate::Recorder). The
//! solve side *stores* into the mirrors (each solve has exactly one writer
//! — its recorder — so flushes are plain value stores, not read-modify
//! -write cycles); the HTTP exporter side reads them. All accesses use
//! `Ordering::Relaxed`: the mirrors are monitoring data with no
//! happens-before obligations, and a scrape racing a flush may observe a
//! torn bundle (e.g. a histogram count one ahead of its buckets), which is
//! acceptable for a dashboard and costs the hot loop nothing on every
//! mainstream ISA. The rationale and the overhead budget live in
//! `DESIGN.md` §13.

use crate::counters::{CounterKind, Counters, COUNTER_KINDS};
use crate::hist::{HistKind, Histogram, Histograms, HIST_BUCKETS, HIST_KINDS};
use crate::jsonl::{push_json_f64, push_json_str};
use crate::naming;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Which phase a live solve is in, as stored in the phase gauge.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(u64)]
pub enum SolvePhase {
    /// Registered, not yet running.
    #[default]
    Idle = 0,
    /// Checking per-area constraint feasibility.
    Feasibility = 1,
    /// Growing/adjusting candidate partitions.
    Construction = 2,
    /// Tabu local search.
    LocalSearch = 3,
    /// The solve returned (see the stop-reason gauge for why).
    Done = 4,
}

impl SolvePhase {
    /// Stable snake_case name (used in `/progress` JSON).
    pub fn name(self) -> &'static str {
        match self {
            SolvePhase::Idle => "idle",
            SolvePhase::Feasibility => "feasibility",
            SolvePhase::Construction => "construction",
            SolvePhase::LocalSearch => "local_search",
            SolvePhase::Done => "done",
        }
    }

    fn from_code(code: u64) -> SolvePhase {
        match code {
            1 => SolvePhase::Feasibility,
            2 => SolvePhase::Construction,
            3 => SolvePhase::LocalSearch,
            4 => SolvePhase::Done,
            _ => SolvePhase::Idle,
        }
    }
}

/// Sentinel for "no deadline" in the deadline-remaining gauge.
const NO_DEADLINE: u64 = u64::MAX;

/// Atomic mirrors for one solve. Constructed by
/// [`LiveRegistry::register`]; the solve's recorder stores into it, the
/// exporter reads from it. All methods are `&self` and thread-safe.
pub struct LiveSolve {
    label: String,
    started: Instant,
    counters: [AtomicU64; COUNTER_KINDS],
    hist_count: [AtomicU64; HIST_KINDS],
    hist_sum: [AtomicU64; HIST_KINDS],
    hist_min: [AtomicU64; HIST_KINDS],
    hist_max: [AtomicU64; HIST_KINDS],
    /// `HIST_KINDS * HIST_BUCKETS`, kind-major.
    hist_buckets: Vec<AtomicU64>,
    phase: AtomicU64,
    iteration: AtomicU64,
    regions: AtomicU64,
    boundary: AtomicU64,
    polls: AtomicU64,
    /// `f64::to_bits`; NaN until the first objective update.
    current_h: AtomicU64,
    /// `f64::to_bits`; NaN until the first objective update.
    best_h: AtomicU64,
    deadline_remaining_ms: AtomicU64,
    done: AtomicU64,
    /// Written once at seal time; never touched by the hot loop.
    stop_reason: Mutex<Option<&'static str>>,
}

impl std::fmt::Debug for LiveSolve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSolve")
            .field("label", &self.label)
            .field("phase", &self.phase())
            .field("iteration", &self.iteration.load(Relaxed))
            .finish()
    }
}

impl LiveSolve {
    fn new(label: &str) -> LiveSolve {
        LiveSolve {
            label: label.to_string(),
            started: Instant::now(),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_count: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_sum: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_min: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            hist_max: std::array::from_fn(|_| AtomicU64::new(0)),
            hist_buckets: (0..HIST_KINDS * HIST_BUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            phase: AtomicU64::new(SolvePhase::Idle as u64),
            iteration: AtomicU64::new(0),
            regions: AtomicU64::new(0),
            boundary: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            current_h: AtomicU64::new(f64::NAN.to_bits()),
            best_h: AtomicU64::new(f64::NAN.to_bits()),
            deadline_remaining_ms: AtomicU64::new(NO_DEADLINE),
            done: AtomicU64::new(0),
            stop_reason: Mutex::new(None),
        }
    }

    /// The label this solve registered under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Wall seconds since registration.
    pub fn elapsed_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Sets the phase gauge.
    pub fn set_phase(&self, phase: SolvePhase) {
        self.phase.store(phase as u64, Relaxed);
    }

    /// Current phase gauge value.
    pub fn phase(&self) -> SolvePhase {
        SolvePhase::from_code(self.phase.load(Relaxed))
    }

    /// Sets the local-search iteration gauge.
    pub fn set_iteration(&self, iteration: u64) {
        self.iteration.store(iteration, Relaxed);
    }

    /// Sets the region-count (`p`) gauge.
    pub fn set_regions(&self, p: u64) {
        self.regions.store(p, Relaxed);
    }

    /// Sets the boundary-area-set-size gauge.
    pub fn set_boundary(&self, areas: u64) {
        self.boundary.store(areas, Relaxed);
    }

    /// Sets the budget-poll gauge.
    pub fn set_polls(&self, polls: u64) {
        self.polls.store(polls, Relaxed);
    }

    /// Sets the current/best objective gauges.
    pub fn set_objective(&self, current_h: f64, best_h: f64) {
        self.current_h.store(current_h.to_bits(), Relaxed);
        self.best_h.store(best_h.to_bits(), Relaxed);
    }

    /// Sets the deadline-remaining gauge (`None` clears it).
    pub fn set_deadline_remaining(&self, remaining: Option<Duration>) {
        let ms = remaining.map_or(NO_DEADLINE, |d| (d.as_millis() as u64).min(NO_DEADLINE - 1));
        self.deadline_remaining_ms.store(ms, Relaxed);
    }

    /// Records why the solve stopped (a [`StopReason`] name from
    /// `emp-core`; this crate stores it opaquely) and flips the done flag.
    pub fn set_stop_reason(&self, reason: &'static str) {
        *self.stop_reason.lock().unwrap() = Some(reason);
    }

    /// Marks the solve finished.
    pub fn mark_done(&self) {
        self.set_phase(SolvePhase::Done);
        self.done.store(1, Relaxed);
    }

    /// Whether the solve finished.
    pub fn is_done(&self) -> bool {
        self.done.load(Relaxed) == 1
    }

    /// Mirrors the recorder's counter totals (single-writer value stores).
    pub fn store_counters(&self, counters: &Counters) {
        for kind in CounterKind::ALL {
            self.counters[kind as usize].store(counters.get(kind), Relaxed);
        }
    }

    /// Mirrors the recorder's histogram totals. Kinds whose count is
    /// unchanged skip their bucket array, so a steady flush touches only
    /// the histograms the hot loop actually feeds.
    pub fn store_hists(&self, hists: &Histograms) {
        for kind in HistKind::ALL {
            let k = kind as usize;
            let h = hists.get(kind);
            if self.hist_count[k].load(Relaxed) == h.count() {
                continue;
            }
            let base = k * HIST_BUCKETS;
            for i in 0..HIST_BUCKETS {
                self.hist_buckets[base + i].store(h.bucket(i), Relaxed);
            }
            self.hist_sum[k].store(h.sum(), Relaxed);
            self.hist_min[k].store(h.min().unwrap_or(u64::MAX), Relaxed);
            self.hist_max[k].store(h.max().unwrap_or(0), Relaxed);
            // Count last: a reader seeing the new count sees new buckets
            // on any coherent ISA; a torn read is tolerated regardless.
            self.hist_count[k].store(h.count(), Relaxed);
        }
    }

    /// Snapshot of the mirrored counters.
    pub fn counters_snapshot(&self) -> Counters {
        let mut out = Counters::new();
        for kind in CounterKind::ALL {
            let v = self.counters[kind as usize].load(Relaxed);
            if kind.is_gauge() {
                out.record_max(kind, v);
            } else {
                out.add(kind, v);
            }
        }
        out
    }

    /// Snapshot of one mirrored histogram.
    pub fn hist_snapshot(&self, kind: HistKind) -> Histogram {
        let k = kind as usize;
        let base = k * HIST_BUCKETS;
        let sparse: Vec<(usize, u64)> = (0..HIST_BUCKETS)
            .filter_map(|i| {
                let c = self.hist_buckets[base + i].load(Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect();
        Histogram::from_parts(
            self.hist_count[k].load(Relaxed),
            self.hist_sum[k].load(Relaxed),
            self.hist_min[k].load(Relaxed),
            self.hist_max[k].load(Relaxed),
            sparse,
        )
    }

    /// One `/progress` JSON object (no trailing newline).
    pub fn progress_json(&self) -> String {
        let mut line = String::with_capacity(256);
        line.push_str("{\"solve\":");
        push_json_str(&mut line, &self.label);
        line.push_str(",\"phase\":");
        push_json_str(&mut line, self.phase().name());
        line.push_str(",\"iteration\":");
        line.push_str(&self.iteration.load(Relaxed).to_string());
        line.push_str(",\"regions\":");
        line.push_str(&self.regions.load(Relaxed).to_string());
        line.push_str(",\"current_h\":");
        push_json_f64(&mut line, f64::from_bits(self.current_h.load(Relaxed)));
        line.push_str(",\"best_h\":");
        push_json_f64(&mut line, f64::from_bits(self.best_h.load(Relaxed)));
        line.push_str(",\"boundary_areas\":");
        line.push_str(&self.boundary.load(Relaxed).to_string());
        line.push_str(",\"cancel_polls\":");
        line.push_str(&self.polls.load(Relaxed).to_string());
        line.push_str(",\"elapsed_s\":");
        push_json_f64(&mut line, self.elapsed_s());
        line.push_str(",\"deadline_remaining_s\":");
        match self.deadline_remaining_ms.load(Relaxed) {
            NO_DEADLINE => line.push_str("null"),
            ms => push_json_f64(&mut line, ms as f64 / 1e3),
        }
        line.push_str(",\"stop_reason\":");
        match *self.stop_reason.lock().unwrap() {
            Some(reason) => push_json_str(&mut line, reason),
            None => line.push_str("null"),
        }
        line.push_str(",\"done\":");
        line.push_str(if self.is_done() { "true" } else { "false" });
        line.push('}');
        line
    }
}

/// The set of live solves one process exposes. The exporter renders every
/// registered solve; sequential solves (the `repro` harness) accumulate,
/// which is what a scraper wants — counters keep their totals after a
/// solve finishes.
#[derive(Default)]
pub struct LiveRegistry {
    solves: Mutex<Vec<Arc<LiveSolve>>>,
}

impl std::fmt::Debug for LiveRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LiveRegistry({} solves)",
            self.solves.lock().unwrap().len()
        )
    }
}

impl LiveRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        LiveRegistry::default()
    }

    /// The process-wide registry (what `--metrics-addr` serves).
    pub fn global() -> &'static Arc<LiveRegistry> {
        static GLOBAL: OnceLock<Arc<LiveRegistry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(LiveRegistry::new()))
    }

    /// Registers a new solve under `label` and returns its mirror bundle
    /// (attach it with [`Recorder::attach_live`](crate::Recorder::attach_live)).
    pub fn register(&self, label: &str) -> Arc<LiveSolve> {
        let solve = Arc::new(LiveSolve::new(label));
        self.solves.lock().unwrap().push(Arc::clone(&solve));
        solve
    }

    /// Handles on every registered solve, registration order.
    pub fn solves(&self) -> Vec<Arc<LiveSolve>> {
        self.solves.lock().unwrap().clone()
    }

    /// The `/metrics` body: counter totals summed across solves, merged
    /// histograms, per-solve progress gauges, and stop-reason gauges — in
    /// the shared [`naming`] conventions `trace_report --prom` also uses.
    pub fn render_prometheus(&self) -> String {
        let solves = self.solves();
        let mut out = String::with_capacity(4096);

        let mut totals = Counters::new();
        for solve in &solves {
            totals.merge(&solve.counters_snapshot());
        }
        naming::push_counter_header(&mut out);
        for kind in CounterKind::ALL {
            naming::push_counter(&mut out, kind.name(), totals.get(kind));
        }

        naming::push_hist_header(&mut out);
        // Name order, matching trace_report's BTreeMap iteration.
        let mut kinds = HistKind::ALL;
        kinds.sort_unstable_by_key(|k| k.name());
        for kind in kinds {
            let mut merged = Histogram::new();
            for solve in &solves {
                merged.merge(&solve.hist_snapshot(kind));
            }
            if !merged.is_empty() {
                naming::push_hist(&mut out, kind.name(), kind.unit(), &merged);
            }
        }

        naming::push_progress_header(&mut out);
        for solve in &solves {
            let label = solve.label();
            let fields: [(&str, u64); 5] = [
                ("phase", solve.phase() as u64),
                ("iteration", solve.iteration.load(Relaxed)),
                ("regions", solve.regions.load(Relaxed)),
                ("boundary_areas", solve.boundary.load(Relaxed)),
                ("cancel_polls", solve.polls.load(Relaxed)),
            ];
            for (field, v) in fields {
                naming::push_progress(&mut out, label, field, v);
            }
            for (field, bits) in [
                ("current_h", solve.current_h.load(Relaxed)),
                ("best_h", solve.best_h.load(Relaxed)),
            ] {
                let v = f64::from_bits(bits);
                if v.is_finite() {
                    naming::push_progress(&mut out, label, field, v);
                }
            }
            naming::push_progress(&mut out, label, "elapsed_s", solve.elapsed_s());
            match solve.deadline_remaining_ms.load(Relaxed) {
                NO_DEADLINE => {}
                ms => {
                    naming::push_progress(&mut out, label, "deadline_remaining_s", ms as f64 / 1e3)
                }
            }
            naming::push_progress(&mut out, label, "done", u64::from(solve.is_done()));
        }

        naming::push_stop_reason_header(&mut out);
        for solve in &solves {
            if let Some(reason) = *solve.stop_reason.lock().unwrap() {
                naming::push_stop_reason(&mut out, solve.label(), reason);
            }
        }
        out
    }

    /// The `/progress` body: one JSON object per registered solve, one per
    /// line, registration order.
    pub fn render_progress(&self) -> String {
        let mut out = String::new();
        for solve in self.solves() {
            out.push_str(&solve.progress_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_round_trip_through_the_render() {
        let reg = LiveRegistry::new();
        let solve = reg.register("fact-n100-seed7");
        solve.set_phase(SolvePhase::LocalSearch);
        solve.set_iteration(42);
        solve.set_regions(9);
        solve.set_boundary(33);
        solve.set_polls(100);
        solve.set_objective(123.5, 120.25);
        solve.set_deadline_remaining(Some(Duration::from_millis(2500)));

        let prom = reg.render_prometheus();
        assert!(
            prom.contains("emp_solve_progress{solve=\"fact-n100-seed7\",field=\"iteration\"} 42"),
            "{prom}"
        );
        assert!(
            prom.contains("emp_solve_progress{solve=\"fact-n100-seed7\",field=\"regions\"} 9"),
            "{prom}"
        );
        assert!(
            prom.contains("emp_solve_progress{solve=\"fact-n100-seed7\",field=\"best_h\"} 120.25"),
            "{prom}"
        );
        assert!(
            prom.contains(
                "emp_solve_progress{solve=\"fact-n100-seed7\",field=\"deadline_remaining_s\"} 2.5"
            ),
            "{prom}"
        );

        let progress = reg.render_progress();
        let line = progress.lines().next().unwrap();
        assert!(line.contains("\"phase\":\"local_search\""), "{line}");
        assert!(line.contains("\"iteration\":42"), "{line}");
        assert!(line.contains("\"deadline_remaining_s\":2.5"), "{line}");
        assert!(line.contains("\"stop_reason\":null"), "{line}");
        assert!(line.contains("\"done\":false"), "{line}");
    }

    #[test]
    fn counters_and_hists_mirror_totals() {
        let reg = LiveRegistry::new();
        let a = reg.register("a");
        let b = reg.register("b");
        let mut ca = Counters::new();
        ca.add(CounterKind::TabuMovesApplied, 5);
        ca.record_max(CounterKind::BoundaryAreasPeak, 10);
        a.store_counters(&ca);
        let mut cb = Counters::new();
        cb.add(CounterKind::TabuMovesApplied, 3);
        cb.record_max(CounterKind::BoundaryAreasPeak, 40);
        b.store_counters(&cb);

        let mut ha = Histograms::new();
        ha.record(HistKind::TabuBoundary, 5);
        ha.record(HistKind::TabuBoundary, 12);
        a.store_hists(&ha);

        let prom = reg.render_prometheus();
        assert!(
            prom.contains("emp_counter_total{counter=\"tabu_moves_applied\"} 8"),
            "{prom}"
        );
        // Gauge counters take the max across solves, like a merge.
        assert!(
            prom.contains("emp_counter_total{counter=\"boundary_areas_peak\"} 40"),
            "{prom}"
        );
        // Every counter kind appears, zero or not.
        for kind in CounterKind::ALL {
            assert!(
                prom.contains(&format!("{{counter=\"{}\"}}", kind.name())),
                "missing {}",
                kind.name()
            );
        }
        assert!(
            prom.contains("emp_hist_count{hist=\"tabu_boundary_size\",unit=\"areas\"} 2"),
            "{prom}"
        );
    }

    #[test]
    fn stop_reason_renders_once_set() {
        let reg = LiveRegistry::new();
        let solve = reg.register("s");
        assert!(!reg.render_prometheus().contains("emp_solve_stop_reason{"));
        solve.set_stop_reason("deadline_exceeded");
        solve.mark_done();
        let prom = reg.render_prometheus();
        assert!(
            prom.contains("emp_solve_stop_reason{solve=\"s\",reason=\"deadline_exceeded\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("emp_solve_progress{solve=\"s\",field=\"done\"} 1"),
            "{prom}"
        );
        let progress = reg.render_progress();
        assert!(
            progress.contains("\"stop_reason\":\"deadline_exceeded\""),
            "{progress}"
        );
    }

    #[test]
    fn store_is_idempotent_not_additive() {
        let reg = LiveRegistry::new();
        let solve = reg.register("s");
        let mut c = Counters::new();
        c.add(CounterKind::CancelPolls, 7);
        solve.store_counters(&c);
        solve.store_counters(&c);
        assert_eq!(
            solve.counters_snapshot().get(CounterKind::CancelPolls),
            7,
            "mirror stores totals, repeated flushes must not double-count"
        );
    }
}
