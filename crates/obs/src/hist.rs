//! Log-bucketed latency/value histograms: a fixed, named set of
//! fixed-size distributions accumulated alongside the [`Counters`].
//!
//! The design mirrors [`Counters`](crate::Counters): every recorder owns a
//! [`Histograms`] bundle, recording is a couple of array operations (no
//! allocation, hot-loop safe), per-thread bundles are accumulated privately
//! and [`merged`](Histograms::merge) at join time, and the *event* (the
//! rendered distribution) only flows to a sink when one is attached.
//!
//! # Bucket layout (see `DESIGN.md` §10)
//!
//! Values are `u64` in a kind-specific unit ([`HistKind::unit`]); each
//! histogram has [`HIST_BUCKETS`] = 64 base-2 logarithmic buckets:
//!
//! * bucket 0 holds exactly the value `0`;
//! * bucket `i` (1 ≤ i ≤ 62) holds `2^(i-1) ≤ v < 2^i`;
//! * bucket 63 is the **saturating top bucket**: every `v ≥ 2^62` lands
//!   there, so the layout covers the full `u64` domain with no overflow.
//!
//! Alongside the buckets each histogram tracks exact `count`, saturating
//! `sum`, and exact `min`/`max`, so means and extremes are not subject to
//! bucket quantization.
//!
//! # Quantile convention
//!
//! [`Histogram::quantile`] uses the nearest-rank definition (rank
//! `⌈q·count⌉`) and reports the **inclusive upper bound of the bucket**
//! holding that rank — a conservative "the q-quantile is at most this"
//! estimate, deliberately *not* clamped to the observed `max`. Because the
//! estimate is a monotone function of the ranked element alone, merged
//! histograms bracket their inputs: for any `q`,
//! `min(q(a), q(b)) ≤ q(merge(a,b)) ≤ max(q(a), q(b))`
//! (property-tested in `tests/hist_merge.rs`).

/// Number of buckets per histogram (base-2 log layout, saturating top).
pub const HIST_BUCKETS: usize = 64;

/// Everything the solver records distributions of. Span-duration kinds are
/// fed automatically by [`Recorder::span_end`](crate::Recorder::span_end)
/// (unit: nanoseconds); value kinds are recorded explicitly by the solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum HistKind {
    /// `solve` span wall time (ns).
    SpanSolve = 0,
    /// `feasibility` span wall time (ns).
    SpanFeasibility,
    /// `construct_iter` span wall time (ns).
    SpanConstructIter,
    /// `grow` span wall time (ns).
    SpanGrow,
    /// `adjust` span wall time (ns).
    SpanAdjust,
    /// `tabu` span wall time (ns).
    SpanTabu,
    /// `resync` span wall time (ns).
    SpanResync,
    /// `mp_construct` span wall time (ns, MP-regions baseline).
    SpanMpConstruct,
    /// `mst` span wall time (ns, SKATER baseline).
    SpanMst,
    /// `split` span wall time (ns, SKATER baseline).
    SpanSplit,
    /// Magnitude of applied tabu move objective deltas, in millionths of an
    /// objective unit (`|ΔH| · 1e6`, rounded).
    TabuMoveDelta,
    /// Boundary-area set size sampled at the start of every tabu iteration.
    TabuBoundary,
}

/// Number of histogram kinds (the length of [`Histograms`]' backing array).
pub const HIST_KINDS: usize = 12;

impl HistKind {
    /// All kinds, in discriminant order.
    pub const ALL: [HistKind; HIST_KINDS] = [
        HistKind::SpanSolve,
        HistKind::SpanFeasibility,
        HistKind::SpanConstructIter,
        HistKind::SpanGrow,
        HistKind::SpanAdjust,
        HistKind::SpanTabu,
        HistKind::SpanResync,
        HistKind::SpanMpConstruct,
        HistKind::SpanMst,
        HistKind::SpanSplit,
        HistKind::TabuMoveDelta,
        HistKind::TabuBoundary,
    ];

    /// Stable snake_case name used in JSONL traces and Prometheus exports.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::SpanSolve => "span_solve",
            HistKind::SpanFeasibility => "span_feasibility",
            HistKind::SpanConstructIter => "span_construct_iter",
            HistKind::SpanGrow => "span_grow",
            HistKind::SpanAdjust => "span_adjust",
            HistKind::SpanTabu => "span_tabu",
            HistKind::SpanResync => "span_resync",
            HistKind::SpanMpConstruct => "span_mp_construct",
            HistKind::SpanMst => "span_mst",
            HistKind::SpanSplit => "span_split",
            HistKind::TabuMoveDelta => "tabu_move_delta",
            HistKind::TabuBoundary => "tabu_boundary_size",
        }
    }

    /// Unit of the recorded values.
    pub fn unit(self) -> &'static str {
        match self {
            HistKind::TabuMoveDelta => "micro",
            HistKind::TabuBoundary => "areas",
            _ => "ns",
        }
    }

    /// The duration histogram fed by spans with this name, if any.
    pub fn for_span(name: &str) -> Option<HistKind> {
        Some(match name {
            "solve" => HistKind::SpanSolve,
            "feasibility" => HistKind::SpanFeasibility,
            "construct_iter" => HistKind::SpanConstructIter,
            "grow" => HistKind::SpanGrow,
            "adjust" => HistKind::SpanAdjust,
            "tabu" => HistKind::SpanTabu,
            "resync" => HistKind::SpanResync,
            "mp_construct" => HistKind::SpanMpConstruct,
            "mst" => HistKind::SpanMst,
            "split" => HistKind::SpanSplit,
            _ => return None,
        })
    }

    /// Inverse of [`HistKind::name`].
    pub fn from_name(name: &str) -> Option<HistKind> {
        HistKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Bucket index of a value under the base-2 log layout.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Inclusive upper bound of bucket `i` (the top bucket saturates at
/// `u64::MAX`).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// One fixed-size log-bucketed distribution. See the module docs for the
/// bucket layout and quantile convention.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    count: u64,
    /// Saturating sum of recorded values.
    sum: u64,
    /// Exact minimum; `u64::MAX` while empty.
    min: u64,
    /// Exact maximum; 0 while empty.
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Rebuilds a histogram from serialized parts (used by `trace_report`
    /// to re-aggregate JSONL `hist` records). `count`/`min`/`max` are taken
    /// as given; sparse `(bucket, count)` pairs fill the bucket array
    /// (out-of-range indices land in the saturating top bucket).
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        sparse: impl IntoIterator<Item = (usize, u64)>,
    ) -> Self {
        let mut h = Histogram {
            count,
            sum,
            min,
            max,
            buckets: [0; HIST_BUCKETS],
        };
        for (i, c) in sparse {
            h.buckets[i.min(HIST_BUCKETS - 1)] += c;
        }
        h
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum, or `None` while empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` while empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded values, or `None` while empty (saturating sum, so a
    /// saturated histogram under-reports).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// `(bucket_index, count)` pairs with non-zero counts, ascending.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c > 0).then_some((i, c)))
    }

    /// Nearest-rank quantile estimate (see the module docs): the inclusive
    /// upper bound of the bucket holding rank `⌈q·count⌉`. `None` while
    /// empty; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        Some(bucket_upper(HIST_BUCKETS - 1))
    }

    /// Folds `other` in: bucket counts and totals add, extremes widen. The
    /// join-time merge for per-thread accumulators.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// The fixed bundle of all solver histograms, one per [`HistKind`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histograms {
    hists: [Histogram; HIST_KINDS],
}

impl Default for Histograms {
    fn default() -> Self {
        Histograms {
            hists: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

impl Histograms {
    /// All-empty histograms.
    pub fn new() -> Self {
        Histograms::default()
    }

    /// Records one value into `kind`.
    #[inline]
    pub fn record(&mut self, kind: HistKind, v: u64) {
        self.hists[kind as usize].record(v);
    }

    /// Records a span duration (seconds → nanoseconds) into the duration
    /// histogram of the span kind, if the name maps to one.
    #[inline]
    pub fn record_span_duration(&mut self, name: &str, wall_s: f64) {
        if let Some(kind) = HistKind::for_span(name) {
            self.record(kind, secs_to_ns(wall_s));
        }
    }

    /// The histogram for `kind`.
    pub fn get(&self, kind: HistKind) -> &Histogram {
        &self.hists[kind as usize]
    }

    /// Folds `other` in, histogram by histogram.
    pub fn merge(&mut self, other: &Histograms) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// `(kind, histogram)` pairs with at least one recorded value.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (HistKind, &Histogram)> + '_ {
        HistKind::ALL
            .into_iter()
            .filter(|&k| !self.hists[k as usize].is_empty())
            .map(|k| (k, &self.hists[k as usize]))
    }

    /// Whether every histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(Histogram::is_empty)
    }
}

/// Seconds → nanoseconds with saturation (negative and NaN become 0).
#[inline]
pub fn secs_to_ns(wall_s: f64) -> u64 {
    (wall_s * 1e9) as u64 // `as` casts saturate; NaN becomes 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 61), 62);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HIST_BUCKETS {
            assert!(bucket_lower(i) <= bucket_upper(i), "bucket {i}");
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        assert_eq!(bucket_upper(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn records_and_estimates_quantiles() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // rank ceil(0.5 * 6) = 3 -> value 2 -> bucket [2,3].
        assert_eq!(h.quantile(0.5), Some(3));
        // rank 6 -> value 1000 -> bucket [512,1023].
        assert_eq!(h.quantile(1.0), Some(1023));
        // rank clamps to 1 at q = 0 -> value 0 -> bucket {0}.
        assert_eq!(h.quantile(0.0), Some(0));
    }

    #[test]
    fn merge_is_additive_and_widens_extremes() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(9);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(100));
        assert_eq!(a.bucket(bucket_index(5)), 1);
        assert_eq!(a.bucket(bucket_index(100)), 1);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.bucket(HIST_BUCKETS - 1), 2);
    }

    #[test]
    fn span_names_map_to_duration_kinds() {
        assert_eq!(HistKind::for_span("solve"), Some(HistKind::SpanSolve));
        assert_eq!(HistKind::for_span("resync"), Some(HistKind::SpanResync));
        assert_eq!(HistKind::for_span("mst"), Some(HistKind::SpanMst));
        assert_eq!(HistKind::for_span("unknown"), None);
        let mut hs = Histograms::new();
        hs.record_span_duration("tabu", 1.5e-6);
        assert_eq!(hs.get(HistKind::SpanTabu).count(), 1);
        assert_eq!(hs.get(HistKind::SpanTabu).sum(), 1500);
        hs.record_span_duration("not_a_span", 1.0);
        assert_eq!(hs.iter_nonempty().count(), 1);
    }

    #[test]
    fn names_are_unique_and_roundtrip() {
        let mut names: Vec<_> = HistKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), HIST_KINDS);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), HIST_KINDS);
        for k in HistKind::ALL {
            assert_eq!(HistKind::from_name(k.name()), Some(k));
            assert!(!k.unit().is_empty());
        }
    }

    #[test]
    fn bundle_merge_accumulates_per_kind() {
        let mut a = Histograms::new();
        let mut b = Histograms::new();
        a.record(HistKind::TabuMoveDelta, 10);
        b.record(HistKind::TabuMoveDelta, 20);
        b.record(HistKind::TabuBoundary, 7);
        a.merge(&b);
        assert_eq!(a.get(HistKind::TabuMoveDelta).count(), 2);
        assert_eq!(a.get(HistKind::TabuBoundary).count(), 1);
        assert!(!a.is_empty());
        assert_eq!(a.iter_nonempty().count(), 2);
    }

    #[test]
    fn secs_to_ns_saturates() {
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
        assert_eq!(secs_to_ns(1.0), 1_000_000_000);
        assert_eq!(secs_to_ns(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn from_parts_reconstructs_sparse_buckets() {
        let mut h = Histogram::new();
        for v in [1, 1, 7, 4096] {
            h.record(v);
        }
        let parts: Vec<(usize, u64)> = h.iter_nonzero().collect();
        let rebuilt = Histogram::from_parts(h.count(), h.sum(), 1, 4096, parts);
        assert_eq!(rebuilt, h);
    }
}
