//! The [`Recorder`]: one per solve (or per worker thread), owning the
//! counter accumulator, the span stack, the trajectory summary, and the
//! event sink.

use crate::counters::Counters;
use crate::hist::Histograms;
use crate::live::LiveSolve;
use crate::sink::{Event, EventSink, NoopSink, SpanInfo};
use std::sync::Arc;
use std::time::Instant;

#[cfg(feature = "alloc-track")]
use crate::alloc::{snapshot as alloc_snapshot, AllocSnapshot};

/// A running summary of the local-search objective trajectory, maintained
/// even when the sink drops the per-point events. This is the single source
/// of truth for the "how much did tabu improve" question.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrajectorySummary {
    initial: f64,
    best: f64,
    points: u64,
}

impl TrajectorySummary {
    /// Objective before the first move (the first recorded point), or `None`
    /// if the search never ran.
    pub fn initial(&self) -> Option<f64> {
        (self.points > 0).then_some(self.initial)
    }

    /// Best objective seen, or `None` if the search never ran.
    pub fn best(&self) -> Option<f64> {
        (self.points > 0).then_some(self.best)
    }

    /// Number of recorded points.
    pub fn points(&self) -> u64 {
        self.points
    }

    /// Relative heterogeneity improvement `(initial - best) / initial`.
    ///
    /// Convention (see `DESIGN.md` §6): `None` when the local search never
    /// ran (no trajectory points) or when the initial objective is zero or
    /// non-finite, where the ratio is undefined; `Some(0.0)` when the search
    /// ran but found nothing. Callers render `None` as `n/a`, never as a
    /// fake `0`.
    pub fn improvement(&self) -> Option<f64> {
        if self.points == 0 || !self.initial.is_finite() || self.initial <= 0.0 {
            return None;
        }
        Some((self.initial - self.best) / self.initial)
    }

    fn record(&mut self, h: f64) {
        if self.points == 0 {
            self.initial = h;
            self.best = h;
        } else if h < self.best {
            self.best = h;
        }
        self.points += 1;
    }
}

struct OpenSpan {
    name: &'static str,
    index: Option<u64>,
    start: Instant,
    snapshot: Counters,
    #[cfg(feature = "alloc-track")]
    allocs: AllocSnapshot,
}

/// Accumulates counters, tracks hierarchical spans, and forwards events to
/// an [`EventSink`].
///
/// Counters are *always* accumulated (plain `u64` adds). Span and
/// trajectory *events* are only materialized when the sink is enabled; with
/// [`Recorder::noop`] a span costs two `Instant::now` calls and a counter
/// snapshot — spans are coarse (per phase / per construction iteration), so
/// this is far below the 2% overhead budget (`DESIGN.md` §6).
///
/// Worker threads each own a `Recorder` (usually a noop one); the parent
/// merges their counters at join time via [`Recorder::record_external_span`]
/// — no atomics, no contention.
pub struct Recorder {
    counters: Counters,
    hists: Histograms,
    sink: Box<dyn EventSink + Send>,
    enabled: bool,
    stack: Vec<OpenSpan>,
    trajectory: TrajectorySummary,
    live: Option<Arc<LiveSolve>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::noop()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled)
            .field("open_spans", &self.stack.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl Recorder {
    /// A recorder with the given sink.
    pub fn with_sink(sink: Box<dyn EventSink + Send>) -> Self {
        let enabled = sink.enabled();
        Recorder {
            counters: Counters::new(),
            hists: Histograms::new(),
            sink,
            enabled,
            stack: Vec::new(),
            trajectory: TrajectorySummary::default(),
            live: None,
        }
    }

    /// The production default: counters only, events dropped.
    pub fn noop() -> Self {
        Recorder::with_sink(Box::new(NoopSink))
    }

    /// Whether the sink keeps events (counters accumulate regardless).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Mutable access to the counter accumulator, for hot loops.
    #[inline]
    pub fn counters(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Read-only snapshot of the accumulated counters.
    pub fn counters_snapshot(&self) -> Counters {
        self.counters
    }

    /// Folds an external counter bundle in (counts add, gauges max).
    pub fn merge_counters(&mut self, delta: &Counters) {
        self.counters.merge(delta);
    }

    /// Mutable access to the histogram bundle, for hot loops. Like
    /// counters, histograms are always accumulated (a few array ops per
    /// record) — the sink only sees them once, at [`Recorder::finish`].
    #[inline]
    pub fn hists(&mut self) -> &mut Histograms {
        &mut self.hists
    }

    /// Clone of the accumulated histograms.
    pub fn hists_snapshot(&self) -> Histograms {
        self.hists.clone()
    }

    /// Folds an external histogram bundle in (bucket counts add, extremes
    /// widen) — the join-time merge for per-worker recorders, the
    /// histogram counterpart of [`Recorder::merge_counters`].
    pub fn merge_hists(&mut self, other: &Histograms) {
        self.hists.merge(other);
    }

    /// Opens a span. Must be balanced by [`Recorder::span_end`].
    pub fn span_begin(&mut self, name: &'static str, index: Option<u64>) {
        self.stack.push(OpenSpan {
            name,
            index,
            start: Instant::now(),
            snapshot: self.counters,
            #[cfg(feature = "alloc-track")]
            allocs: alloc_snapshot(),
        });
    }

    /// Closes the innermost open span, reporting it to the sink and
    /// recording its duration into the per-span-kind histogram. Returns the
    /// span's wall seconds (for callers that also keep their own timings).
    pub fn span_end(&mut self) -> f64 {
        let Some(span) = self.stack.pop() else {
            debug_assert!(false, "span_end without matching span_begin");
            return 0.0;
        };
        let wall_s = span.start.elapsed().as_secs_f64();
        self.hists.record_span_duration(span.name, wall_s);
        if self.enabled {
            let delta = self.counters.delta_since(&span.snapshot);
            #[cfg(feature = "alloc-track")]
            let (allocs, alloc_bytes) = {
                let d = alloc_snapshot().delta_since(&span.allocs);
                (d.allocs, d.bytes)
            };
            #[cfg(not(feature = "alloc-track"))]
            let (allocs, alloc_bytes) = (0u64, 0u64);
            self.sink.span_close(&SpanInfo {
                name: span.name,
                index: span.index,
                depth: self.stack.len(),
                wall_s,
                counters: &delta,
                allocs,
                alloc_bytes,
            });
        }
        wall_s
    }

    /// Number of currently open spans.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// Reports a span that ran elsewhere (a joined worker thread) and folds
    /// its counters in. The span is attributed one level below the current
    /// nesting, as if it had been opened here.
    pub fn record_external_span(
        &mut self,
        name: &'static str,
        index: Option<u64>,
        wall_s: f64,
        delta: &Counters,
    ) {
        self.counters.merge(delta);
        self.hists.record_span_duration(name, wall_s);
        if self.enabled {
            self.sink.span_close(&SpanInfo {
                name,
                index,
                depth: self.stack.len(),
                wall_s,
                counters: delta,
                allocs: 0,
                alloc_bytes: 0,
            });
        }
    }

    /// Replays events a worker buffered into a
    /// [`BufferSink`](crate::BufferSink) into this recorder's sink,
    /// re-parenting them under the currently open spans: every replayed
    /// span's recorded depth is shifted by the current stack depth. A
    /// worker that opens its own root span (say `construct_iter`) with
    /// nested children therefore produces exactly the event stream the
    /// serial path would have emitted in place.
    ///
    /// Only the *event stream* is forwarded — the worker's counters and
    /// histograms must be folded in separately via
    /// [`Recorder::merge_counters`] / [`Recorder::merge_hists`], which this
    /// method deliberately does not touch. `Hist` and `TraceEnd` events are
    /// skipped for the same reason: the enclosing recorder emits its own at
    /// [`Recorder::finish`], and a mid-trace `trace_end` would mark the
    /// trace complete prematurely.
    pub fn replay_buffered(&mut self, events: &[Event]) {
        if !self.enabled {
            return;
        }
        let base = self.stack.len();
        for event in events {
            match event {
                Event::Span(s) => self.sink.span_close(&SpanInfo {
                    name: &s.name,
                    index: s.index,
                    depth: s.depth + base,
                    wall_s: s.wall_s,
                    counters: &s.counters,
                    allocs: s.allocs,
                    alloc_bytes: s.alloc_bytes,
                }),
                Event::Trajectory {
                    iteration,
                    heterogeneity,
                } => self.sink.trajectory_point(*iteration, *heterogeneity),
                Event::Note { key, value } => self.sink.note(key, *value),
                Event::Hist(_) | Event::TraceEnd => {}
            }
        }
    }

    /// Records a local-search objective point: updates the always-on
    /// [`TrajectorySummary`] and forwards to the sink when enabled.
    #[inline]
    pub fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        self.trajectory.record(heterogeneity);
        if self.enabled {
            self.sink.trajectory_point(iteration, heterogeneity);
        }
    }

    /// The trajectory summary so far.
    pub fn trajectory(&self) -> TrajectorySummary {
        self.trajectory
    }

    /// Returns the trajectory summary and resets it, so a recorder reused
    /// across several solves attributes each search to the right report.
    pub fn take_trajectory(&mut self) -> TrajectorySummary {
        std::mem::take(&mut self.trajectory)
    }

    /// Emits a free-form named scalar to the sink.
    pub fn note(&mut self, key: &str, value: f64) {
        if self.enabled {
            self.sink.note(key, value);
        }
    }

    /// Attaches a [`LiveSolve`] mirror: subsequent [`Recorder::live_flush`]
    /// calls store the counter/histogram totals into it, and
    /// [`Recorder::finish`] flushes once more so the mirrors end exact.
    /// Performs an immediate flush so the registry never shows a stale
    /// zero bundle for an attached solve.
    pub fn attach_live(&mut self, live: Arc<LiveSolve>) {
        live.store_counters(&self.counters);
        live.store_hists(&self.hists);
        self.live = Some(live);
    }

    /// Whether a live mirror is attached — the hot loop's cheap guard
    /// before doing any flush bookkeeping.
    #[inline]
    pub fn has_live(&self) -> bool {
        self.live.is_some()
    }

    /// The attached live mirror, for gauge updates (phase, iteration, ...).
    #[inline]
    pub fn live(&self) -> Option<&Arc<LiveSolve>> {
        self.live.as_ref()
    }

    /// Stores the current counter and histogram totals into the attached
    /// live mirror (no-op when none is attached). Called from batched
    /// flush points, never per move.
    pub fn live_flush(&self) {
        if let Some(live) = &self.live {
            live.store_counters(&self.counters);
            live.store_hists(&self.hists);
        }
    }

    /// Finishes the trace: reports the histogram bundle (when the sink is
    /// enabled and anything was recorded), emits the terminal `trace_end`
    /// marker, and flushes the sink. Readers treat a JSONL trace without a
    /// final `trace_end` line as truncated.
    pub fn finish(&mut self) {
        debug_assert!(self.stack.is_empty(), "finish with open spans");
        if self.enabled {
            if !self.hists.is_empty() {
                self.sink.histograms(&self.hists);
            }
            self.sink.trace_end();
        }
        self.sink.flush();
        self.live_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterKind;
    use crate::sink::InMemorySink;

    #[test]
    fn spans_nest_and_attribute_counter_deltas() {
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        rec.span_begin("solve", None);
        rec.counters().inc(CounterKind::RegionsCreated);
        rec.span_begin("tabu", None);
        rec.counters().add(CounterKind::TabuMovesApplied, 5);
        rec.span_end();
        rec.counters().inc(CounterKind::RegionsCreated);
        rec.span_end();
        rec.finish();

        let data = handle.lock().unwrap();
        assert_eq!(data.spans.len(), 2);
        // Children close first.
        assert_eq!(data.spans[0].name, "tabu");
        assert_eq!(data.spans[0].depth, 1);
        assert_eq!(data.spans[0].counters.get(CounterKind::TabuMovesApplied), 5);
        assert_eq!(data.spans[0].counters.get(CounterKind::RegionsCreated), 0);
        assert_eq!(data.spans[1].name, "solve");
        assert_eq!(data.spans[1].depth, 0);
        // The parent sees its own activity plus the child's.
        assert_eq!(data.spans[1].counters.get(CounterKind::RegionsCreated), 2);
        assert_eq!(data.spans[1].counters.get(CounterKind::TabuMovesApplied), 5);
    }

    #[test]
    fn external_spans_merge_worker_counters() {
        let mut rec = Recorder::noop();
        let mut worker = Recorder::noop();
        worker.counters().add(CounterKind::MergeTrials, 3);
        worker
            .counters()
            .record_max(CounterKind::BoundaryAreasPeak, 40);
        let delta = worker.counters_snapshot();
        rec.counters()
            .record_max(CounterKind::BoundaryAreasPeak, 25);
        rec.record_external_span("construct_iter", Some(2), 0.1, &delta);
        assert_eq!(rec.counters_snapshot().get(CounterKind::MergeTrials), 3);
        assert_eq!(
            rec.counters_snapshot().get(CounterKind::BoundaryAreasPeak),
            40
        );
    }

    #[test]
    fn trajectory_summary_tracks_best_and_improvement() {
        let mut rec = Recorder::noop();
        assert_eq!(rec.trajectory().improvement(), None);
        rec.trajectory_point(0, 100.0);
        assert_eq!(rec.trajectory().improvement(), Some(0.0));
        rec.trajectory_point(1, 80.0);
        rec.trajectory_point(2, 90.0); // worsening move: best stays 80
        let t = rec.trajectory();
        assert_eq!(t.initial(), Some(100.0));
        assert_eq!(t.best(), Some(80.0));
        assert_eq!(t.points(), 3);
        assert!((t.improvement().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_initial_objective_has_undefined_improvement() {
        let mut rec = Recorder::noop();
        rec.trajectory_point(0, 0.0);
        assert_eq!(rec.trajectory().improvement(), None);
    }

    #[test]
    fn span_durations_feed_histograms_and_finish_reports() {
        use crate::hist::HistKind;
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        rec.span_begin("solve", None);
        rec.span_begin("tabu", None);
        rec.hists().record(HistKind::TabuBoundary, 12);
        rec.span_end();
        rec.span_end();
        rec.record_external_span("construct_iter", Some(0), 0.25, &Counters::new());

        let mut worker = Recorder::noop();
        worker.hists().record(HistKind::TabuMoveDelta, 500);
        rec.merge_hists(&worker.hists_snapshot());

        assert_eq!(rec.hists_snapshot().get(HistKind::SpanTabu).count(), 1);
        rec.finish();
        let data = handle.lock().unwrap();
        assert_eq!(data.trace_ends, 1);
        assert_eq!(data.hists.len(), 1);
        let h = &data.hists[0];
        assert_eq!(h.get(HistKind::SpanSolve).count(), 1);
        assert_eq!(h.get(HistKind::SpanConstructIter).count(), 1);
        assert_eq!(h.get(HistKind::SpanConstructIter).sum(), 250_000_000);
        assert_eq!(h.get(HistKind::TabuBoundary).count(), 1);
        assert_eq!(h.get(HistKind::TabuMoveDelta).count(), 1);
    }

    #[test]
    fn finish_with_empty_histograms_still_marks_trace_end() {
        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        rec.finish();
        let data = handle.lock().unwrap();
        assert!(data.hists.is_empty());
        assert_eq!(data.trace_ends, 1);
    }

    #[test]
    fn noop_recorder_still_counts() {
        let mut rec = Recorder::noop();
        assert!(!rec.is_enabled());
        rec.span_begin("solve", None);
        rec.counters().inc(CounterKind::BfsFallbacks);
        rec.span_end();
        assert_eq!(rec.counters_snapshot().get(CounterKind::BfsFallbacks), 1);
    }
}
