//! Counting global allocator (feature `alloc-track`): makes "this code
//! path does not allocate" a testable invariant instead of a code-review
//! claim.
//!
//! The module only exists under the `alloc-track` feature. It provides
//! [`CountingAlloc`], a zero-overhead-when-unused wrapper around the
//! system allocator that counts allocation *calls* and requested *bytes*
//! in process-global relaxed atomics, mirrored into per-thread counters.
//! The process-global counters ([`snapshot`]) are polluted by whatever any
//! other thread does — including the libtest harness's own bookkeeping —
//! so zero-allocation assertions must use the calling thread's view
//! ([`thread_snapshot`]) and still live in an integration-test binary with
//! exactly **one** `#[test]` function (a sibling test sharing the thread
//! pool could otherwise interleave on the measuring thread).
//!
//! Install it in the test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: emp_obs::alloc::CountingAlloc = emp_obs::alloc::CountingAlloc;
//! ```
//!
//! then bracket the region under test with [`snapshot`] and
//! [`AllocSnapshot::delta_since`]. When the allocator is *not* installed
//! the counters simply stay zero.
//!
//! The [`Recorder`](crate::Recorder) snapshots these counters at
//! `span_begin` and attributes the per-span delta to
//! [`SpanInfo::allocs`](crate::SpanInfo::allocs) /
//! [`SpanInfo::alloc_bytes`](crate::SpanInfo::alloc_bytes); without the
//! feature those fields are always 0.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized, no-Drop cells: access compiles to a TLS offset
    // load with no lazy registration, so reading/updating them inside the
    // allocator cannot itself allocate or recurse.
    static THREAD_ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count(bytes: u64) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    // `try_with` so a stray allocation during thread teardown (after TLS
    // destruction) degrades to "not counted" instead of aborting.
    let _ = THREAD_ALLOC_CALLS.try_with(|c| c.set(c.get() + 1));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
}

/// A [`GlobalAlloc`] that counts allocation calls and requested bytes
/// (relaxed atomics, ~1ns per allocation) and forwards to [`System`].
///
/// `realloc` counts as one call for the full new size (conservative: a
/// growth path that reallocs is *not* allocation-free). Deallocations are
/// not tracked — the invariant of interest is "no allocator traffic in
/// the hot loop", and frees without allocations cannot happen there.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size as u64);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the process-global allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Cumulative allocation calls (`alloc` + `alloc_zeroed` + `realloc`).
    pub allocs: u64,
    /// Cumulative requested bytes.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter growth since an earlier snapshot.
    pub fn delta_since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

/// Reads the current global allocation counters. All-zero unless a
/// [`CountingAlloc`] is installed as the `#[global_allocator]`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Reads the calling thread's allocation counters. Use this (not
/// [`snapshot`]) for zero-allocation assertions: the test harness's own
/// threads (output capture, the parked main thread) allocate at
/// unpredictable times, and those hits land in the process-global counters
/// but never in another thread's local ones.
pub fn thread_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: THREAD_ALLOC_CALLS.with(Cell::get),
        bytes: THREAD_ALLOC_BYTES.with(Cell::get),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: CountingAlloc is deliberately NOT installed in this binary, so
    // these tests only exercise the snapshot arithmetic, not the counting.
    #[test]
    fn delta_since_subtracts() {
        let a = AllocSnapshot {
            allocs: 10,
            bytes: 100,
        };
        let b = AllocSnapshot {
            allocs: 17,
            bytes: 164,
        };
        assert_eq!(
            b.delta_since(&a),
            AllocSnapshot {
                allocs: 7,
                bytes: 64
            }
        );
    }
}
