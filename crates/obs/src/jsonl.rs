//! Streaming JSONL trace sink: one JSON object per line, hand-encoded so
//! the crate stays dependency-free.
//!
//! Line shapes (see `EXPERIMENTS.md` for a reading guide):
//!
//! ```text
//! {"type":"span","name":"tabu","index":null,"depth":1,"wall_s":0.12,"counters":{...}}
//! {"type":"trajectory","iteration":17,"heterogeneity":1234.5}
//! {"type":"note","key":"skater_splits","value":7}
//! {"type":"hist","hists":{"span_tabu":{"unit":"ns","count":3,"sum":9,"min":2,"max":4,"buckets":[[2,2],[3,1]]}}}
//! {"event":"trace_end"}
//! ```
//!
//! Only non-zero counters, non-empty histograms, and non-zero bucket
//! counts are emitted; span lines gain `"allocs"`/`"alloc_bytes"` fields
//! only when the `alloc-track` allocator observed traffic, so traces from
//! default builds are byte-stable. Non-finite floats become `null` so
//! every emitted line parses under any JSON reader. The `trace_end` line
//! (one per [`Recorder::finish`](crate::Recorder::finish)) is the
//! completeness marker: a trace file whose last line is not a `trace_end`
//! was truncated.

use crate::counters::Counters;
use crate::hist::Histograms;
use crate::sink::{EventSink, SpanInfo};
use std::io::{BufWriter, Write};
use std::path::Path;

/// An [`EventSink`] writing one JSON object per event to `W`.
///
/// The writer lives in an `Option` only so [`JsonlWriter::into_inner`] can
/// move it out from under the flush-on-drop impl; it is always `Some` while
/// the sink is alive.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: Option<W>,
}

impl JsonlWriter<BufWriter<std::fs::File>> {
    /// Creates (truncating) a JSONL trace file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlWriter {
            out: Some(BufWriter::new(std::fs::File::create(path)?)),
        })
    }
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps an arbitrary writer (tests use a `Vec<u8>`).
    pub fn new(out: W) -> Self {
        JsonlWriter { out: Some(out) }
    }

    /// Consumes the sink, returning the writer (after a flush).
    pub fn into_inner(mut self) -> W {
        let mut out = self.out.take().expect("writer present until drop");
        let _ = out.flush();
        out
    }

    fn write_line(&mut self, line: &str) {
        // Trace output is best-effort: an I/O error must never abort a solve.
        if let Some(out) = self.out.as_mut() {
            let _ = out.write_all(line.as_bytes());
            let _ = out.write_all(b"\n");
        }
    }
}

impl<W: Write> EventSink for JsonlWriter<W> {
    fn span_close(&mut self, span: &SpanInfo<'_>) {
        let mut line = String::with_capacity(128);
        line.push_str("{\"type\":\"span\",\"name\":");
        push_json_str(&mut line, span.name);
        line.push_str(",\"index\":");
        match span.index {
            Some(i) => line.push_str(&i.to_string()),
            None => line.push_str("null"),
        }
        line.push_str(",\"depth\":");
        line.push_str(&span.depth.to_string());
        line.push_str(",\"wall_s\":");
        push_json_f64(&mut line, span.wall_s);
        line.push_str(",\"counters\":");
        push_counters(&mut line, span.counters);
        if span.allocs > 0 || span.alloc_bytes > 0 {
            line.push_str(",\"allocs\":");
            line.push_str(&span.allocs.to_string());
            line.push_str(",\"alloc_bytes\":");
            line.push_str(&span.alloc_bytes.to_string());
        }
        line.push('}');
        self.write_line(&line);
    }

    fn trajectory_point(&mut self, iteration: u64, heterogeneity: f64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"trajectory\",\"iteration\":");
        line.push_str(&iteration.to_string());
        line.push_str(",\"heterogeneity\":");
        push_json_f64(&mut line, heterogeneity);
        line.push('}');
        self.write_line(&line);
    }

    fn note(&mut self, key: &str, value: f64) {
        let mut line = String::with_capacity(64);
        line.push_str("{\"type\":\"note\",\"key\":");
        push_json_str(&mut line, key);
        line.push_str(",\"value\":");
        push_json_f64(&mut line, value);
        line.push('}');
        self.write_line(&line);
    }

    fn histograms(&mut self, hists: &Histograms) {
        let mut line = String::with_capacity(256);
        line.push_str("{\"type\":\"hist\",\"hists\":{");
        let mut first = true;
        for (kind, h) in hists.iter_nonempty() {
            if !first {
                line.push(',');
            }
            first = false;
            push_json_str(&mut line, kind.name());
            line.push_str(":{\"unit\":");
            push_json_str(&mut line, kind.unit());
            line.push_str(",\"count\":");
            line.push_str(&h.count().to_string());
            line.push_str(",\"sum\":");
            line.push_str(&h.sum().to_string());
            line.push_str(",\"min\":");
            line.push_str(&h.min().unwrap_or(0).to_string());
            line.push_str(",\"max\":");
            line.push_str(&h.max().unwrap_or(0).to_string());
            line.push_str(",\"buckets\":[");
            let mut first_bucket = true;
            for (i, c) in h.iter_nonzero() {
                if !first_bucket {
                    line.push(',');
                }
                first_bucket = false;
                line.push('[');
                line.push_str(&i.to_string());
                line.push(',');
                line.push_str(&c.to_string());
                line.push(']');
            }
            line.push_str("]}");
        }
        line.push_str("}}");
        self.write_line(&line);
    }

    fn trace_end(&mut self) {
        self.write_line("{\"event\":\"trace_end\"}");
    }

    fn flush(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Drop for JsonlWriter<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

/// Appends `{"name":count,...}` for the non-zero counters.
fn push_counters(out: &mut String, counters: &Counters) {
    out.push('{');
    let mut first = true;
    for (kind, v) in counters.iter_nonzero() {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_str(out, kind.name());
        out.push(':');
        out.push_str(&v.to_string());
    }
    out.push('}');
}

/// Appends a JSON string literal with the mandatory escapes.
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float; non-finite values become `null` so the line stays
/// parseable JSON.
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
        // `Display` for f64 omits the fraction for integral values; that is
        // still valid JSON, no fixup needed.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterKind;

    fn render<F: FnOnce(&mut JsonlWriter<Vec<u8>>)>(f: F) -> String {
        let mut w = JsonlWriter::new(Vec::new());
        f(&mut w);
        String::from_utf8(w.into_inner()).unwrap()
    }

    #[test]
    fn span_line_shape() {
        let mut c = Counters::new();
        c.add(CounterKind::TabuMovesEvaluated, 12);
        c.inc(CounterKind::TabuMovesApplied);
        let line = render(|w| {
            w.span_close(&SpanInfo {
                name: "tabu",
                index: None,
                depth: 1,
                wall_s: 0.25,
                counters: &c,
                allocs: 0,
                alloc_bytes: 0,
            })
        });
        assert_eq!(
            line,
            "{\"type\":\"span\",\"name\":\"tabu\",\"index\":null,\"depth\":1,\
             \"wall_s\":0.25,\"counters\":{\"tabu_moves_evaluated\":12,\
             \"tabu_moves_applied\":1}}\n"
        );
    }

    #[test]
    fn span_line_includes_alloc_fields_only_when_observed() {
        let c = Counters::new();
        let line = render(|w| {
            w.span_close(&SpanInfo {
                name: "tabu",
                index: None,
                depth: 0,
                wall_s: 0.1,
                counters: &c,
                allocs: 3,
                alloc_bytes: 96,
            })
        });
        assert!(line.contains(",\"allocs\":3,\"alloc_bytes\":96}"), "{line}");
    }

    #[test]
    fn hist_line_shape_and_trace_end() {
        use crate::hist::{HistKind, Histograms};
        let mut hists = Histograms::new();
        hists.record(HistKind::SpanTabu, 2);
        hists.record(HistKind::SpanTabu, 3);
        hists.record(HistKind::SpanTabu, 4);
        let out = render(|w| {
            w.histograms(&hists);
            w.trace_end();
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"hist\",\"hists\":{\"span_tabu\":{\"unit\":\"ns\",\
             \"count\":3,\"sum\":9,\"min\":2,\"max\":4,\
             \"buckets\":[[2,2],[3,1]]}}}"
        );
        assert_eq!(lines[1], "{\"event\":\"trace_end\"}");
    }

    #[test]
    fn finished_trace_ends_with_trace_end_marker() {
        use crate::recorder::Recorder;
        use crate::sink::SharedSink;
        use std::sync::{Arc, Mutex};

        // Share the byte buffer so we can read it back after the recorder
        // consumes the sink.
        #[derive(Clone)]
        struct SharedVec(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedVec {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().write(buf)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedVec(Arc::new(Mutex::new(Vec::new())));
        let sink = SharedSink::new(Box::new(JsonlWriter::new(buf.clone())));
        let mut rec = Recorder::with_sink(Box::new(sink));
        rec.span_begin("solve", None);
        rec.span_end();
        rec.finish();

        let out = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let last = out.lines().last().unwrap();
        assert_eq!(last, "{\"event\":\"trace_end\"}");
        assert!(out.contains("\"type\":\"hist\""), "{out}");
        // Truncation detection: chop the terminal marker off and the tail
        // is no longer a trace_end line — exactly what trace_report flags.
        let truncated = &out[..out.len() - last.len() - 1];
        assert_ne!(truncated.lines().last().unwrap_or(""), last);
    }

    #[test]
    fn trajectory_and_note_lines() {
        let out = render(|w| {
            w.trajectory_point(3, 42.5);
            w.note("skater_splits", 7.0);
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(
            lines[0],
            "{\"type\":\"trajectory\",\"iteration\":3,\"heterogeneity\":42.5}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"note\",\"key\":\"skater_splits\",\"value\":7}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let out = render(|w| w.trajectory_point(0, f64::NAN));
        assert!(out.contains("\"heterogeneity\":null"), "{out}");
    }

    #[test]
    fn strings_are_escaped() {
        let out = render(|w| w.note("a\"b\\c\n", 1.0));
        assert!(out.contains("\"a\\\"b\\\\c\\n\""), "{out}");
    }
}
