//! Solver counters: a fixed, named set of monotone counters (plus a few
//! high-watermark gauges) accumulated in plain `u64`s.
//!
//! Counters are *always* accumulated — an increment is one array add, cheap
//! enough for the tabu hot loop — while span/trajectory *events* only flow
//! when a real [`EventSink`](crate::EventSink) is attached. Per-thread
//! accumulation is contention-free by construction: every worker owns its
//! own [`Counters`] and the owners [`merge`](Counters::merge) at join time.

/// Everything the solver counts. The glossary (what each counter means and
/// which phase bumps it) lives in `DESIGN.md` §6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum CounterKind {
    /// Tabu candidate `(area, destination)` pairs examined.
    TabuMovesEvaluated = 0,
    /// Tabu moves actually applied to the partition.
    TabuMovesApplied,
    /// Candidates skipped because they were tabu and did not aspire.
    TabuRejectedTabu,
    /// Candidates rejected by a constraint or contiguity check.
    TabuRejectedInfeasible,
    /// High-watermark of the boundary-area set during the search (gauge).
    BoundaryAreasPeak,
    /// Articulation-point queries answered (cache hits + misses).
    ArticulationQueries,
    /// Articulation queries served from the per-region cache.
    ArticulationCacheHits,
    /// Articulation queries that recomputed a cold/stale cache entry.
    ArticulationCacheMisses,
    /// Per-region articulation cache entries invalidated after moves.
    ArticulationCacheInvalidations,
    /// Per-candidate connectivity BFS runs (reference path and adjustments).
    BfsFallbacks,
    /// Constraint checks against a MIN aggregate.
    ChecksMin,
    /// Constraint checks against a MAX aggregate.
    ChecksMax,
    /// Constraint checks against an AVG aggregate.
    ChecksAvg,
    /// Constraint checks against a SUM aggregate.
    ChecksSum,
    /// Constraint checks against a COUNT aggregate.
    ChecksCount,
    /// Regions created (construction, merges of seed groups, baselines).
    RegionsCreated,
    /// Regions freed (dissolved back into the unassigned set).
    RegionsFreed,
    /// Region pairs merged into one.
    RegionsMerged,
    /// Merge trials attempted in construction Substep 2.2 round 2.
    MergeTrials,
    /// Incremental-objective resyncs against a fresh recomputation.
    ObjectiveResyncs,
    /// Epoch wraparounds of reusable visited-set scratches (each forces one
    /// full stamp clear; expected ~0 outside stress tests).
    ScratchEpochRollovers,
    /// Total CSR neighbor-slice entries walked by the tabu candidate scan.
    NeighborEntriesWalked,
    /// Cooperative budget polls (cancellation/deadline checks) made by
    /// solver loops.
    CancelPolls,
    /// Budget polls that answered with a wall-clock deadline interruption.
    DeadlineExceeded,
    /// Size in bytes of the largest checkpoint serialized by an interrupted
    /// solve (gauge).
    CheckpointBytes,
    /// Donor areas / receiver candidates skipped outright because a
    /// region- or area-level constraint-slack proof ruled the move
    /// infeasible.
    TabuSlackPruneSkips,
    /// Boundary shards evaluated by the parallel tabu search (main thread
    /// and workers combined).
    TabuShardsEvaluated,
    /// Tabu iterations whose move selection ran on the sharded worker pool.
    TabuParallelIterations,
}

/// Number of counter kinds (the length of [`Counters`]' backing array).
pub const COUNTER_KINDS: usize = 28;

impl CounterKind {
    /// All kinds, in discriminant order.
    pub const ALL: [CounterKind; COUNTER_KINDS] = [
        CounterKind::TabuMovesEvaluated,
        CounterKind::TabuMovesApplied,
        CounterKind::TabuRejectedTabu,
        CounterKind::TabuRejectedInfeasible,
        CounterKind::BoundaryAreasPeak,
        CounterKind::ArticulationQueries,
        CounterKind::ArticulationCacheHits,
        CounterKind::ArticulationCacheMisses,
        CounterKind::ArticulationCacheInvalidations,
        CounterKind::BfsFallbacks,
        CounterKind::ChecksMin,
        CounterKind::ChecksMax,
        CounterKind::ChecksAvg,
        CounterKind::ChecksSum,
        CounterKind::ChecksCount,
        CounterKind::RegionsCreated,
        CounterKind::RegionsFreed,
        CounterKind::RegionsMerged,
        CounterKind::MergeTrials,
        CounterKind::ObjectiveResyncs,
        CounterKind::ScratchEpochRollovers,
        CounterKind::NeighborEntriesWalked,
        CounterKind::CancelPolls,
        CounterKind::DeadlineExceeded,
        CounterKind::CheckpointBytes,
        CounterKind::TabuSlackPruneSkips,
        CounterKind::TabuShardsEvaluated,
        CounterKind::TabuParallelIterations,
    ];

    /// Stable snake_case name used in JSONL traces and tables.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::TabuMovesEvaluated => "tabu_moves_evaluated",
            CounterKind::TabuMovesApplied => "tabu_moves_applied",
            CounterKind::TabuRejectedTabu => "tabu_rejected_tabu",
            CounterKind::TabuRejectedInfeasible => "tabu_rejected_infeasible",
            CounterKind::BoundaryAreasPeak => "boundary_areas_peak",
            CounterKind::ArticulationQueries => "articulation_queries",
            CounterKind::ArticulationCacheHits => "articulation_cache_hits",
            CounterKind::ArticulationCacheMisses => "articulation_cache_misses",
            CounterKind::ArticulationCacheInvalidations => "articulation_cache_invalidations",
            CounterKind::BfsFallbacks => "bfs_fallbacks",
            CounterKind::ChecksMin => "checks_min",
            CounterKind::ChecksMax => "checks_max",
            CounterKind::ChecksAvg => "checks_avg",
            CounterKind::ChecksSum => "checks_sum",
            CounterKind::ChecksCount => "checks_count",
            CounterKind::RegionsCreated => "regions_created",
            CounterKind::RegionsFreed => "regions_freed",
            CounterKind::RegionsMerged => "regions_merged",
            CounterKind::MergeTrials => "merge_trials",
            CounterKind::ObjectiveResyncs => "objective_resyncs",
            CounterKind::ScratchEpochRollovers => "scratch_epoch_rollovers",
            CounterKind::NeighborEntriesWalked => "neighbor_entries_walked",
            CounterKind::CancelPolls => "cancel_polls",
            CounterKind::DeadlineExceeded => "deadline_exceeded",
            CounterKind::CheckpointBytes => "checkpoint_bytes",
            CounterKind::TabuSlackPruneSkips => "tabu_slack_prune_skips",
            CounterKind::TabuShardsEvaluated => "tabu_shards_evaluated",
            CounterKind::TabuParallelIterations => "tabu_parallel_iterations",
        }
    }

    /// Gauges hold a high-watermark rather than a monotone count; deltas and
    /// merges take the max instead of adding/subtracting.
    pub fn is_gauge(self) -> bool {
        matches!(
            self,
            CounterKind::BoundaryAreasPeak | CounterKind::CheckpointBytes
        )
    }
}

/// A snapshot-able bundle of all solver counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Counters {
    vals: [u64; COUNTER_KINDS],
}

impl Counters {
    /// All-zero counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Increments `kind` by one.
    #[inline]
    pub fn inc(&mut self, kind: CounterKind) {
        self.vals[kind as usize] += 1;
    }

    /// Adds `n` to `kind`.
    #[inline]
    pub fn add(&mut self, kind: CounterKind, n: u64) {
        self.vals[kind as usize] += n;
    }

    /// Raises the gauge `kind` to at least `v`.
    #[inline]
    pub fn record_max(&mut self, kind: CounterKind, v: u64) {
        let slot = &mut self.vals[kind as usize];
        *slot = (*slot).max(v);
    }

    /// Current value of `kind`.
    #[inline]
    pub fn get(&self, kind: CounterKind) -> u64 {
        self.vals[kind as usize]
    }

    /// Folds `other` in: counts add, gauges take the max. This is the
    /// join-time merge for per-thread accumulators.
    pub fn merge(&mut self, other: &Counters) {
        for kind in CounterKind::ALL {
            let i = kind as usize;
            if kind.is_gauge() {
                self.vals[i] = self.vals[i].max(other.vals[i]);
            } else {
                self.vals[i] += other.vals[i];
            }
        }
    }

    /// What happened since `earlier` (a prior snapshot of `self`): counts
    /// subtract, gauges report their current watermark.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        let mut out = Counters::new();
        for kind in CounterKind::ALL {
            let i = kind as usize;
            out.vals[i] = if kind.is_gauge() {
                self.vals[i]
            } else {
                self.vals[i].saturating_sub(earlier.vals[i])
            };
        }
        out
    }

    /// `(kind, value)` pairs with non-zero values, in discriminant order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (CounterKind, u64)> + '_ {
        CounterKind::ALL
            .into_iter()
            .filter_map(|k| (self.vals[k as usize] > 0).then_some((k, self.vals[k as usize])))
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// Articulation-cache hit rate (`hits / queries`), `None` before the
    /// first query.
    pub fn articulation_hit_rate(&self) -> Option<f64> {
        let q = self.get(CounterKind::ArticulationQueries);
        (q > 0).then(|| self.get(CounterKind::ArticulationCacheHits) as f64 / q as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_cover_all() {
        let mut names: Vec<_> = CounterKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), COUNTER_KINDS);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), COUNTER_KINDS);
    }

    #[test]
    fn merge_adds_counts_and_maxes_gauges() {
        let mut a = Counters::new();
        a.add(CounterKind::TabuMovesApplied, 3);
        a.record_max(CounterKind::BoundaryAreasPeak, 10);
        let mut b = Counters::new();
        b.add(CounterKind::TabuMovesApplied, 4);
        b.record_max(CounterKind::BoundaryAreasPeak, 7);
        a.merge(&b);
        assert_eq!(a.get(CounterKind::TabuMovesApplied), 7);
        assert_eq!(a.get(CounterKind::BoundaryAreasPeak), 10);
    }

    #[test]
    fn delta_subtracts_counts_keeps_gauges() {
        let mut c = Counters::new();
        c.add(CounterKind::ArticulationQueries, 5);
        c.record_max(CounterKind::BoundaryAreasPeak, 9);
        let snap = c;
        c.add(CounterKind::ArticulationQueries, 2);
        let d = c.delta_since(&snap);
        assert_eq!(d.get(CounterKind::ArticulationQueries), 2);
        assert_eq!(d.get(CounterKind::BoundaryAreasPeak), 9);
    }

    #[test]
    fn nonzero_iteration_and_hit_rate() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.articulation_hit_rate(), None);
        c.add(CounterKind::ArticulationQueries, 4);
        c.add(CounterKind::ArticulationCacheHits, 3);
        assert_eq!(c.articulation_hit_rate(), Some(0.75));
        let nz: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(
            nz,
            vec![
                (CounterKind::ArticulationQueries, 4),
                (CounterKind::ArticulationCacheHits, 3)
            ]
        );
    }
}
