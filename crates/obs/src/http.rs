//! Embedded zero-dependency HTTP/1.1 exporter for the live registry.
//!
//! A [`MetricsServer`] binds a `std::net::TcpListener`, spawns one
//! detached background thread, and answers two GET routes:
//!
//! - `/metrics` — [`LiveRegistry::render_prometheus`] as
//!   `text/plain; version=0.0.4`
//! - `/progress` — [`LiveRegistry::render_progress`] as one JSON object
//!   per line
//!
//! Requests are served sequentially (a scraper every few seconds, not a
//! web service), each response carries `Connection: close` and an exact
//! `Content-Length`, and a slow or malformed client is cut off by a read
//! timeout so the exporter can never wedge. The solver never blocks on
//! this thread: the registry reads are relaxed atomic loads.

use crate::live::LiveRegistry;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Cap on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// How long we wait for a client to finish its request head.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

/// Handle to a running metrics endpoint. Dropping the handle does not stop
/// the background thread; it serves for the life of the process (the
/// thread is detached so process exit is never delayed).
#[derive(Debug)]
pub struct MetricsServer {
    local_addr: std::net::SocketAddr,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and starts serving `registry` on a background thread.
    pub fn start(addr: &str, registry: Arc<LiveRegistry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        std::thread::Builder::new()
            .name("emp-metrics".to_string())
            .spawn(move || serve(listener, registry))?;
        Ok(MetricsServer { local_addr })
    }

    /// The bound address — with the real port when `:0` was requested.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }
}

fn serve(listener: TcpListener, registry: Arc<LiveRegistry>) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        // One misbehaving client must not take the exporter down.
        let _ = handle(stream, &registry);
    }
}

fn handle(mut stream: TcpStream, registry: &LiveRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request_line = read_request_head(&mut stream)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    // Ignore any query string; `/metrics?x=y` is still `/metrics`.
    let path = target.split('?').next().unwrap_or(target);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                registry.render_prometheus(),
            ),
            "/progress" => ("200 OK", "application/json", registry.render_progress()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };

    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads the whole request head (through the blank line ending the
/// headers), bounded by [`MAX_REQUEST_BYTES`], and returns the request
/// line. The head must be fully consumed before we respond and close —
/// closing a socket with unread bytes sends an RST that can discard the
/// in-flight response on the client side.
fn read_request_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < MAX_REQUEST_BYTES && !head.ends_with(b"\r\n\r\n") && !head.ends_with(b"\n\n")
    {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e),
        }
    }
    let line_end = head.iter().position(|&b| b == b'\n').unwrap_or(head.len());
    let line = head[..line_end]
        .strip_suffix(b"\r")
        .unwrap_or(&head[..line_end]);
    Ok(String::from_utf8_lossy(line).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{CounterKind, Counters};
    use crate::live::SolvePhase;

    fn get(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_progress_over_tcp() {
        let registry = Arc::new(LiveRegistry::new());
        let solve = registry.register("http-test");
        let mut c = Counters::new();
        c.add(CounterKind::TabuMovesApplied, 11);
        solve.store_counters(&c);
        solve.set_phase(SolvePhase::LocalSearch);
        solve.set_iteration(5);

        let server = MetricsServer::start("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);

        let metrics = get(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"), "{metrics}");
        assert!(
            metrics.contains("emp_counter_total{counter=\"tabu_moves_applied\"} 11"),
            "{metrics}"
        );
        assert!(
            metrics.contains("emp_solve_progress{solve=\"http-test\",field=\"iteration\"} 5"),
            "{metrics}"
        );

        let progress = get(addr, "GET /progress?x=1 HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(progress.contains("application/json"), "{progress}");
        assert!(
            progress.contains("\"phase\":\"local_search\""),
            "{progress}"
        );

        let missing = get(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let post = get(addr, "POST /metrics HTTP/1.1\r\n\r\n");
        assert!(post.starts_with("HTTP/1.1 405"), "{post}");
    }
}
