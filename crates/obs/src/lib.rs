//! # emp-obs — zero-dependency solver telemetry
//!
//! Instrumentation for the EMP solvers: hierarchical **spans** (wall time +
//! nesting), always-on **counters** (tabu move accounting, articulation
//! cache traffic, constraint checks by aggregate kind, region lifecycle),
//! a per-iteration **trajectory channel** for the local search, and
//! pluggable **event sinks**:
//!
//! * [`NoopSink`] — the production default; events are dropped before they
//!   are built, counters still accumulate (a `u64` add each).
//! * [`InMemorySink`] — buffers everything for tests and summary tables.
//! * [`BufferSink`] — buffers events *in arrival order* for [`replay`];
//!   the parallel harness records each job privately and replays the
//!   buffers in canonical job order.
//! * [`JsonlWriter`] — streams a structured JSONL trace (`repro --trace`).
//!
//! The façade is the [`Recorder`]: one per solve, or one per worker thread
//! with counters merged at join time ([`Recorder::record_external_span`]),
//! so parallel construction needs no atomics. Overhead budget and the
//! counter glossary live in `DESIGN.md` §6.
//!
//! ```
//! use emp_obs::{CounterKind, InMemorySink, Recorder};
//!
//! let sink = InMemorySink::new();
//! let handle = sink.handle();
//! let mut rec = Recorder::with_sink(Box::new(sink));
//! rec.span_begin("solve", None);
//! rec.counters().inc(CounterKind::RegionsCreated);
//! rec.span_end();
//! rec.finish();
//! assert_eq!(handle.lock().unwrap().spans[0].name, "solve");
//! ```

#![warn(missing_docs)]

#[cfg(feature = "alloc-track")]
pub mod alloc;
pub mod counters;
pub mod hist;
pub mod http;
pub mod jsonl;
pub mod live;
pub mod naming;
pub mod recorder;
pub mod ring;
pub mod sink;

pub use counters::{CounterKind, Counters, COUNTER_KINDS};
pub use hist::{HistKind, Histogram, Histograms, HIST_BUCKETS, HIST_KINDS};
pub use http::MetricsServer;
pub use jsonl::JsonlWriter;
pub use live::{LiveRegistry, LiveSolve, SolvePhase};
pub use recorder::{Recorder, TrajectorySummary};
pub use ring::{RingSink, DEFAULT_FLIGHT_CAPACITY};
pub use sink::{
    replay, BufferSink, Event, EventSink, InMemorySink, NoopSink, SharedSink, SpanInfo, SpanRecord,
    TeeSink, TraceData,
};
