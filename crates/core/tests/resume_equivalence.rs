//! Interruption test suite: checkpoint/resume equivalence (ISSUE 8).
//!
//! The contract under test (DESIGN.md §11): cutting a budgeted solve at an
//! *arbitrary* poll point and resuming from its checkpoint must reproduce
//! the uninterrupted run **byte-identically** — same final assignment, same
//! `p`, same heterogeneity bits, same move/iteration counts, and the
//! concatenated objective trajectories of the two legs must equal the
//! uninterrupted trajectory point for point.
//!
//! Cut points are driven by [`SolveBudget::poll_limit`], the deterministic
//! interruption source: "stop at the k-th poll" lands on the same iteration
//! boundary every run, with no wall clock involved. Instances come from the
//! oracle generator, so the suite sweeps every graph shape, attribute
//! layout, and constraint family the fuzzer knows about.

use emp_core::{
    resume_observed, solve, solve_budgeted, solve_budgeted_observed, validate_solution, Checkpoint,
    EmpError, SolveBudget, SolveOutcome, StopReason,
};
use emp_obs::{InMemorySink, Recorder};
use emp_oracle::generate_case;
use proptest::prelude::*;

/// One observed run: the outcome plus the trajectory points its recorder
/// emitted, as `(iteration, heterogeneity bits)` for exact comparison.
fn observed<F>(run: F) -> (Result<SolveOutcome, EmpError>, Vec<(u64, u64)>)
where
    F: FnOnce(&mut Recorder) -> Result<SolveOutcome, EmpError>,
{
    let sink = InMemorySink::new();
    let handle = sink.handle();
    let mut rec = Recorder::with_sink(Box::new(sink));
    let outcome = run(&mut rec);
    rec.finish();
    let data = handle.lock().unwrap();
    let trajectory = data
        .trajectory
        .iter()
        .map(|&(i, h)| (i, h.to_bits()))
        .collect();
    (outcome, trajectory)
}

/// Asserts two outcomes are byte-identical in everything the resume
/// contract pins: assignment, regions, p, heterogeneity bits, and tabu
/// iteration/move counts. Telemetry counters are deliberately NOT compared
/// — a resumed run rebuilds neighborhood caches cold, so cache-hit counts
/// differ by design (DESIGN.md §11).
fn assert_equivalent(label: &str, a: &SolveOutcome, b: &SolveOutcome) {
    assert_eq!(
        a.report.solution.assignment, b.report.solution.assignment,
        "{label}: assignment diverged"
    );
    assert_eq!(
        a.report.solution.regions, b.report.solution.regions,
        "{label}: regions diverged"
    );
    assert_eq!(
        a.report.solution.heterogeneity.to_bits(),
        b.report.solution.heterogeneity.to_bits(),
        "{label}: heterogeneity bits diverged"
    );
    assert_eq!(
        a.report.tabu.iterations, b.report.tabu.iterations,
        "{label}: tabu iteration count diverged"
    );
    assert_eq!(
        a.report.tabu.moves, b.report.tabu.moves,
        "{label}: tabu move count diverged"
    );
    assert_eq!(
        a.report.tabu.best.to_bits(),
        b.report.tabu.best.to_bits(),
        "{label}: tabu best bits diverged"
    );
}

/// Runs the seed's case uninterrupted, then cut at poll `cut` and resumed,
/// and checks the equivalence contract. Returns `false` when the case is
/// infeasible (nothing to compare) or the budget outlived the whole solve.
fn check_cut(seed: u64, cut: u64) -> bool {
    let case = generate_case(seed);
    let instance = case.instance().expect("oracle case compiles");
    let (full, full_traj) = observed(|rec| {
        solve_budgeted_observed(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::unlimited(),
            rec,
        )
    });
    let full = match full {
        Ok(outcome) => outcome,
        Err(EmpError::Infeasible { .. }) => {
            // Budgeted solves must agree on infeasibility, however tight.
            let cut_run = solve_budgeted(
                &instance,
                &case.constraints,
                &case.fact,
                &SolveBudget::poll_limit(cut),
            );
            assert!(
                matches!(cut_run, Err(EmpError::Infeasible { .. })),
                "seed {seed}: interrupted run hid infeasibility: {cut_run:?}"
            );
            return false;
        }
        Err(e) => panic!("seed {seed}: {e}"),
    };
    assert_eq!(full.stop_reason, StopReason::Completed);
    assert!(full.checkpoint.is_none());

    let (interrupted, cut_traj) = observed(|rec| {
        solve_budgeted_observed(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::poll_limit(cut),
            rec,
        )
    });
    let interrupted = interrupted.expect("feasible case stays feasible under a budget");
    if interrupted.stop_reason == StopReason::Completed {
        // The budget outlived the solve: it must be the uninterrupted run.
        assert!(interrupted.checkpoint.is_none());
        assert_equivalent(
            &format!("seed {seed} cut {cut} (uncut)"),
            &full,
            &interrupted,
        );
        assert_eq!(
            full_traj, cut_traj,
            "seed {seed}: uncut trajectory diverged"
        );
        return false;
    }

    // The incumbent at the cut is always a valid partition.
    assert_eq!(interrupted.stop_reason, StopReason::IterationBudget);
    validate_solution(&instance, &case.constraints, &interrupted.report.solution)
        .unwrap_or_else(|v| panic!("seed {seed} cut {cut}: invalid incumbent: {v:?}"));

    // Checkpoint text round-trip is exact.
    let checkpoint = interrupted
        .checkpoint
        .expect("interrupted solve carries a checkpoint");
    let text = checkpoint.to_text();
    let reparsed = Checkpoint::from_text(&text)
        .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: checkpoint reparse failed: {e}"));
    assert_eq!(
        reparsed.to_text(),
        text,
        "seed {seed} cut {cut}: checkpoint round-trip not identical"
    );

    // Resume from the re-parsed checkpoint (the full serialize→parse path).
    let (resumed, resume_traj) = observed(|rec| {
        resume_observed(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::unlimited(),
            &reparsed,
            rec,
        )
    });
    let resumed = resumed.expect("resume of a feasible case succeeds");
    assert_eq!(resumed.stop_reason, StopReason::Completed);
    assert!(resumed.checkpoint.is_none());
    assert_equivalent(&format!("seed {seed} cut {cut}"), &full, &resumed);

    // Move sequence: leg trajectories concatenate to the uninterrupted one.
    let mut stitched = cut_traj;
    stitched.extend(resume_traj);
    assert_eq!(
        stitched, full_traj,
        "seed {seed} cut {cut}: stitched trajectory diverged"
    );
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Oracle seeds × arbitrary cut points: resume == uninterrupted.
    #[test]
    fn resume_matches_uninterrupted(seed in 0u64..200, cut in 0u64..600) {
        check_cut(seed, cut);
    }

    /// Double interruption: cut, resume, cut again, resume again. The chain
    /// of three legs must still land on the uninterrupted result.
    #[test]
    fn chained_resume_matches_uninterrupted(seed in 0u64..120, first in 0u64..80, second in 0u64..80) {
        let case = generate_case(seed);
        let instance = case.instance().expect("oracle case compiles");
        let full = match solve_budgeted(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::unlimited(),
        ) {
            Ok(outcome) => outcome,
            Err(EmpError::Infeasible { .. }) => return Ok(()),
            Err(e) => panic!("seed {seed}: {e}"),
        };

        let mut leg = solve_budgeted(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::poll_limit(first),
        )
        .expect("feasible under budget");
        if let Some(checkpoint) = leg.checkpoint.take() {
            leg = emp_core::resume(
                &instance,
                &case.constraints,
                &case.fact,
                &SolveBudget::poll_limit(second),
                &checkpoint,
            )
            .expect("first resume succeeds");
        }
        if let Some(checkpoint) = leg.checkpoint.take() {
            leg = emp_core::resume(
                &instance,
                &case.constraints,
                &case.fact,
                &SolveBudget::unlimited(),
                &checkpoint,
            )
            .expect("second resume succeeds");
        }
        prop_assert_eq!(leg.stop_reason, StopReason::Completed);
        assert_equivalent(&format!("seed {seed} cuts {first}/{second}"), &full, &leg);
    }
}

/// The plain API and an unlimited budget agree (serial construction).
#[test]
fn unlimited_budget_matches_plain_solve() {
    for seed in [0u64, 3, 17, 40, 77] {
        let case = generate_case(seed);
        let instance = case.instance().expect("oracle case compiles");
        let plain = solve(&instance, &case.constraints, &case.fact);
        let budgeted = solve_budgeted(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::unlimited(),
        );
        match (plain, budgeted) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.solution, b.report.solution, "seed {seed}");
                assert_eq!(b.stop_reason, StopReason::Completed);
            }
            (Err(EmpError::Infeasible { .. }), Err(EmpError::Infeasible { .. })) => {}
            (a, b) => panic!("seed {seed}: mismatched outcomes {a:?} vs {b:?}"),
        }
    }
}

/// Resuming against the wrong config or instance is rejected, not garbage.
#[test]
fn resume_rejects_mismatched_checkpoint() {
    // Find a feasible case that a poll-1 cut actually interrupts.
    let (case, instance, checkpoint) = (0u64..50)
        .find_map(|seed| {
            let case = generate_case(seed);
            let instance = case.instance().ok()?;
            let interrupted = solve_budgeted(
                &instance,
                &case.constraints,
                &case.fact,
                &SolveBudget::poll_limit(1),
            )
            .ok()?;
            let checkpoint = interrupted.checkpoint?;
            Some((case, instance, checkpoint))
        })
        .expect("some seed in 0..50 is feasible and interruptible");

    let mut wrong_seed = case.fact.clone();
    wrong_seed.seed ^= 1;
    assert!(matches!(
        emp_core::resume(
            &instance,
            &case.constraints,
            &wrong_seed,
            &SolveBudget::unlimited(),
            &checkpoint,
        ),
        Err(EmpError::BadCheckpoint { .. })
    ));

    let mut wrong_areas = checkpoint;
    wrong_areas.areas += 1;
    assert!(matches!(
        emp_core::resume(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::unlimited(),
            &wrong_areas,
        ),
        Err(EmpError::BadCheckpoint { .. })
    ));
}

/// A zero budget still yields a valid (possibly empty) incumbent.
#[test]
fn zero_budget_yields_valid_incumbent() {
    for seed in [0u64, 5, 11, 29] {
        let case = generate_case(seed);
        let instance = case.instance().expect("oracle case compiles");
        match solve_budgeted(
            &instance,
            &case.constraints,
            &case.fact,
            &SolveBudget::poll_limit(0),
        ) {
            Ok(outcome) => {
                assert_ne!(outcome.stop_reason, StopReason::Completed, "seed {seed}");
                validate_solution(&instance, &case.constraints, &outcome.report.solution)
                    .unwrap_or_else(|v| panic!("seed {seed}: invalid zero-budget incumbent {v:?}"));
            }
            Err(EmpError::Infeasible { .. }) => {} // feasibility always runs fully
            Err(e) => panic!("seed {seed}: {e}"),
        }
    }
}
