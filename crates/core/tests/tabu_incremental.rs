//! Property tests: the incremental tabu neighborhood (boundary set + cached
//! articulation points + O(1) tabu table) is *equivalent* to the naive
//! full-scan/BFS reference implementation, and its caches stay consistent
//! with from-scratch recomputation across bursts of applied moves.

use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::tabu::{
    select_move_reference, tabu_search, NeighborhoodState, TabuConfig, TabuTable,
};
use emp_core::{AttributeTable, Constraint, ConstraintSet, EmpInstance};
use emp_graph::ContiguityGraph;
use proptest::prelude::*;

/// A seeded lattice instance: `w × h` grid, POP ≡ 1, dissimilarity values
/// drawn by proptest.
fn lattice_instance(w: usize, h: usize, d: &[f64]) -> EmpInstance {
    let graph = ContiguityGraph::lattice(w, h);
    let mut attrs = AttributeTable::new(w * h);
    attrs.push_column("POP", vec![1.0; w * h]).unwrap();
    attrs.push_column("D", d[..w * h].to_vec()).unwrap();
    EmpInstance::new(graph, attrs, "D").unwrap()
}

/// Slices the lattice into horizontal stripes of the given row heights —
/// always spatially contiguous, so it is a valid initial partition.
fn stripe_partition(engine: &ConstraintEngine<'_>, w: usize, heights: &[usize]) -> Partition {
    let n: usize = heights.iter().sum::<usize>() * w;
    let mut part = Partition::new(n);
    let mut row = 0usize;
    for &rows in heights {
        let members: Vec<u32> = (row * w..(row + rows) * w).map(|a| a as u32).collect();
        part.create_region(engine, &members);
        row += rows;
    }
    part
}

/// Stripe row heights (each 1–2 rows, 2–4 stripes): the lattice height is
/// their sum, so every generated case is a valid multi-region partition.
fn stripe_heights() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=2, 2..=4)
}

/// Random constraint combo over the lattice attributes. All bounds are wide
/// enough that some moves stay admissible, narrow enough that the
/// constraint filter actually rejects candidates (POP ≡ 1, so SUM(POP) and
/// COUNT both equal the region size).
fn constraint_combo() -> impl Strategy<Value = ConstraintSet> {
    (any::<bool>(), any::<bool>(), any::<bool>(), 2.0f64..4.0).prop_map(
        |(use_count, use_sum, use_minmax, low)| {
            let mut set = ConstraintSet::new();
            if use_count {
                set.push(Constraint::count(low.floor(), 40.0).unwrap());
            }
            if use_sum {
                set.push(Constraint::sum("POP", low.floor(), f64::INFINITY).unwrap());
            }
            if use_minmax {
                set.push(Constraint::min("D", f64::NEG_INFINITY, f64::INFINITY).unwrap());
                set.push(Constraint::max("D", 0.0, f64::INFINITY).unwrap());
            }
            set
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-search equivalence: the incremental and reference neighborhoods
    /// trace identical move sequences and reach identical final partitions.
    #[test]
    fn incremental_search_equals_reference(
        w in 3usize..=6,
        heights in stripe_heights(),
        d in prop::collection::vec(0.0f64..10.0, 48),
        set in constraint_combo(),
        tenure in 0usize..=12,
    ) {
        let h: usize = heights.iter().sum();
        let inst = lattice_instance(w, h, &d);
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let base = stripe_partition(&eng, w, &heights);

        let cfg = |incremental| TabuConfig {
            tenure,
            max_no_improve: w * h,
            max_iterations: 150,
            incremental,
            jobs: 1,
        };
        let mut fast = base.clone();
        let mut slow = base;
        let fs = tabu_search(&eng, &mut fast, &cfg(true));
        let ss = tabu_search(&eng, &mut slow, &cfg(false));
        prop_assert_eq!(fs.moves, ss.moves);
        prop_assert_eq!(fs.iterations, ss.iterations);
        prop_assert_eq!(fs.best, ss.best);
        prop_assert_eq!(fast.assignment(), slow.assignment());
    }

    /// Step-level equivalence and cache consistency: after every applied
    /// move of a burst, the incremental `select_move` picks exactly the
    /// reference's move (same delta, same area, same destination), and the
    /// boundary/articulation caches match a from-scratch recomputation.
    #[test]
    fn select_move_and_caches_track_reference(
        w in 3usize..=6,
        heights in stripe_heights(),
        d in prop::collection::vec(0.0f64..10.0, 48),
        set in constraint_combo(),
        tenure in 0usize..=10,
    ) {
        let h: usize = heights.iter().sum();
        let inst = lattice_instance(w, h, &d);
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = stripe_partition(&eng, w, &heights);

        let mut state = NeighborhoodState::new(&eng, &part);
        state.assert_consistent(&eng, &part);
        let mut tabu = TabuTable::new(tenure);
        let mut current_h = part.heterogeneity_with(&eng);
        let best_h = current_h;
        let mut moves = 0usize;
        let mut ref_counters = emp_obs::Counters::new();
        for _ in 0..60 {
            let inc = state.select_move(&eng, &part, &tabu, moves, current_h, best_h);
            let reference =
                select_move_reference(&eng, &part, &tabu, moves, current_h, best_h, &mut ref_counters);
            prop_assert_eq!(inc, reference, "divergence after {} moves", moves);
            let Some(mv) = inc else { break };
            part.move_area(&eng, mv.area, mv.to);
            state.on_move_applied(&eng, &part, mv);
            state.assert_consistent(&eng, &part);
            moves += 1;
            tabu.forbid(mv.area, mv.from, moves);
            current_h += mv.delta;
        }
    }

    /// Cache freshness under *arbitrary* donation sequences, not just the
    /// moves the tabu policy would pick: any contiguity-preserving donation
    /// between adjacent regions must leave every warmed articulation cache
    /// equal to a fresh Tarjan pass and the boundary set exact.
    #[test]
    fn caches_survive_random_donation_sequences(
        w in 3usize..=6,
        heights in stripe_heights(),
        d in prop::collection::vec(0.0f64..10.0, 48),
        picks in prop::collection::vec((any::<u32>(), any::<u32>()), 40),
    ) {
        let h: usize = heights.iter().sum();
        let inst = lattice_instance(w, h, &d);
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = stripe_partition(&eng, w, &heights);
        let mut state = NeighborhoodState::new(&eng, &part);

        for &(pick_area, pick_dest) in &picks {
            // Warm every region's articulation cache, checking each against
            // the from-scratch Tarjan answer as we go.
            let ids: Vec<_> = part.region_ids().collect();
            for &id in &ids {
                let cached = state.articulation_points(&eng, &part, id).to_vec();
                let fresh = emp_graph::articulation::articulation_points(
                    inst.graph(),
                    &part.region(id).members,
                );
                prop_assert_eq!(&cached, &fresh, "stale cache for region {}", id);
            }

            // Apply an arbitrary admissible donation: a boundary area of a
            // multi-member region, moved to any adjacent region, provided
            // the donor stays connected.
            let boundary = state.boundary().as_slice().to_vec();
            let candidate = (0..boundary.len()).map(|o| {
                boundary[(pick_area as usize + o) % boundary.len()]
            }).find_map(|area| {
                let from = part.region_of(area)?;
                if part.region(from).members.len() <= 1
                    || !part.removal_keeps_connected(&eng, area)
                {
                    return None;
                }
                let dests = part.regions_adjacent_to_area(&eng, area);
                if dests.is_empty() {
                    return None;
                }
                let to = dests[pick_dest as usize % dests.len()];
                (to != from).then_some((area, from, to))
            });
            let Some((area, from, to)) = candidate else { break };
            let delta = part.move_objective_delta(&eng, area, from, to);
            part.move_area(&eng, area, to);
            state.on_move_applied(&eng, &part, emp_core::tabu::Move { area, from, to, delta });
            state.assert_consistent(&eng, &part);
        }
    }
}
