//! CI-enforced form of the "allocation-free tabu hot path" claim: with the
//! counting allocator installed, a warmed-up search loop must drive this
//! thread's allocation counters by exactly zero.
//!
//! The assertion reads [`thread_snapshot`], not the process-global
//! [`snapshot`]: the libtest harness's own threads (the parked main
//! thread, output capture) allocate at unpredictable times, which made a
//! process-global zero assertion flaky on slow single-CPU hosts. This file
//! must still contain exactly ONE `#[test]` so no sibling test can
//! interleave work onto the measuring thread.
//!
//! Run with `cargo test -p emp-core --features alloc-track`.

#![cfg(feature = "alloc-track")]

use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::tabu::{NeighborhoodState, TabuTable};
use emp_core::{AttributeTable, EmpInstance};
use emp_graph::ContiguityGraph;
use emp_obs::alloc::{thread_snapshot, CountingAlloc};
use emp_obs::Recorder;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_MOVES: usize = 300;
const MEASURED_MOVES: usize = 300;

#[test]
fn tabu_loop_is_allocation_free_after_warmup() {
    // A 12x12 lattice with varied dissimilarity and loose COUNT bounds:
    // plenty of admissible boundary moves, so the search churns far past
    // the warmup + measurement horizon.
    let side = 12usize;
    let n = side * side;
    let graph = ContiguityGraph::lattice(side, side);
    let mut attrs = AttributeTable::new(n);
    attrs.push_column("POP", vec![1.0; n]).unwrap();
    attrs
        .push_column("D", (0..n).map(|i| ((i * 31) % 17) as f64).collect())
        .unwrap();
    let inst = EmpInstance::new(graph, attrs, "D").unwrap();
    let set = ConstraintSet::new().with(Constraint::count(4.0, (n / 2) as f64).unwrap());
    let eng = ConstraintEngine::compile(&inst, &set).unwrap();

    // Four quadrant regions as the starting partition.
    let mut part = Partition::new(n);
    let quadrant = |r0: usize, c0: usize| -> Vec<u32> {
        let mut v = Vec::new();
        for r in r0..r0 + side / 2 {
            for c in c0..c0 + side / 2 {
                v.push((r * side + c) as u32);
            }
        }
        v
    };
    part.create_region(&eng, &quadrant(0, 0));
    part.create_region(&eng, &quadrant(0, side / 2));
    part.create_region(&eng, &quadrant(side / 2, 0));
    part.create_region(&eng, &quadrant(side / 2, side / 2));

    // Drive the same loop as `tabu_search_observed`, minus the bits that
    // are not steady-state (best-assignment snapshots, resyncs).
    let mut rec = Recorder::noop();
    let mut state = NeighborhoodState::new(&eng, &part);
    let mut tabu = TabuTable::with_dimensions(8, part.len(), part.region_slots());
    let mut current_h = part.heterogeneity_with(&eng);
    let best_h = current_h;
    let mut moves = 0usize;
    let mut window_start = None;

    while moves < WARMUP_MOVES + MEASURED_MOVES {
        if moves == WARMUP_MOVES {
            // Warmup done: scratch epochs, articulation caches, boundary
            // set, and region member vectors have reached their working
            // capacities. Everything past this point must be free.
            window_start = Some(thread_snapshot());
        }
        rec.hists().record(
            emp_obs::HistKind::TabuBoundary,
            state.boundary().as_slice().len() as u64,
        );
        let mv = state.select_move(&eng, &part, &tabu, moves, current_h, best_h);
        let Some(mv) = mv else {
            panic!("search ran dry after {moves} moves; enlarge the instance");
        };
        part.move_area(&eng, mv.area, mv.to);
        state.on_move_applied(&eng, &part, mv);
        moves += 1;
        tabu.forbid(mv.area, mv.from, moves);
        rec.hists().record(
            emp_obs::HistKind::TabuMoveDelta,
            (mv.delta.abs() * 1e6).round() as u64,
        );
        current_h += mv.delta;
    }

    let start = window_start.expect("measurement window opened");
    // Sanity: the allocator is really installed and counting — all the
    // setup above (graph, engine, partitions) cannot have been free.
    assert!(
        start.allocs > 0 && start.bytes > 0,
        "counting allocator not active; the zero-delta below would be vacuous"
    );
    let delta = thread_snapshot().delta_since(&start);
    assert_eq!(
        (delta.allocs, delta.bytes),
        (0, 0),
        "tabu hot loop allocated during the measured window \
         ({} calls, {} bytes over {MEASURED_MOVES} moves)",
        delta.allocs,
        delta.bytes,
    );
}
