//! Property tests of the construction-phase postconditions, phase by phase.
//!
//! These are the invariants FaCT's correctness argument rests on (paper
//! §V-B): after Step 2 every region satisfies MIN/MAX/AVG; after Step 3
//! every surviving region satisfies *every* constraint; contiguity and
//! disjointness hold throughout.

use emp_core::adjust::monotonic_adjustments;
use emp_core::attr::AttributeTable;
use emp_core::constraint::{Aggregate, Constraint, ConstraintSet};
use emp_core::engine::ConstraintEngine;
use emp_core::feasibility::feasibility_phase;
use emp_core::grow::region_growing;
use emp_core::instance::EmpInstance;
use emp_core::partition::Partition;
use emp_graph::subgraph::is_connected_subset;
use emp_graph::ContiguityGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_instance(w: usize, h: usize, seed: u64, scale: f64) -> EmpInstance {
    let n = w * h;
    let graph = ContiguityGraph::lattice(w, h);
    let mut attrs = AttributeTable::new(n);
    let s: Vec<f64> = (0..n)
        .map(|i| {
            ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64 / 1000.0 * scale
        })
        .collect();
    let t: Vec<f64> = (0..n)
        .map(|i| {
            ((i as u64).wrapping_mul(97003).wrapping_add(seed * 31) % 1000) as f64 / 1000.0 * scale
        })
        .collect();
    attrs.push_column("S", s).unwrap();
    attrs.push_column("T", t).unwrap();
    EmpInstance::new(graph, attrs, "T").unwrap()
}

fn random_constraints(scale: f64, mask: u8) -> ConstraintSet {
    let mut set = ConstraintSet::new();
    if mask & 1 != 0 {
        set.push(Constraint::min("S", scale * 0.05, scale * 0.9).unwrap());
    }
    if mask & 2 != 0 {
        set.push(Constraint::max("S", scale * 0.3, f64::INFINITY).unwrap());
    }
    if mask & 4 != 0 {
        set.push(Constraint::avg("S", scale * 0.25, scale * 0.75).unwrap());
    }
    if mask & 8 != 0 {
        set.push(Constraint::sum("T", scale * 0.8, scale * 10.0).unwrap());
    }
    if mask & 16 != 0 {
        set.push(Constraint::count(1.0, 12.0).unwrap());
    }
    set
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn step2_satisfies_extrema_and_avg(
        w in 3usize..8,
        h in 3usize..8,
        seed in 0u64..500,
        mask in 0u8..8, // MIN/MAX/AVG subsets only
    ) {
        let scale = 100.0;
        let instance = build_instance(w, h, seed, scale);
        let set = random_constraints(scale, mask);
        let engine = ConstraintEngine::compile(&instance, &set).unwrap();
        let report = feasibility_phase(&engine);
        prop_assume!(!report.is_infeasible());
        let mut eligible = vec![true; instance.len()];
        for &a in &report.invalid_areas {
            eligible[a as usize] = false;
        }
        let mut partition = Partition::new(instance.len());
        let mut rng = StdRng::seed_from_u64(seed);
        region_growing(&engine, &mut partition, &report.seeds, &eligible, 3, &mut rng);

        for id in partition.region_ids() {
            let region = partition.region(id);
            // Postcondition (paper §V-B after Substep 2.3): every MIN, MAX
            // and AVG constraint holds.
            for &ci in engine
                .indices_of(Aggregate::Min)
                .iter()
                .chain(engine.indices_of(Aggregate::Max))
                .chain(engine.indices_of(Aggregate::Avg))
            {
                prop_assert!(
                    engine.satisfied(&region.agg, ci),
                    "region {id} violates constraint {ci} after Step 2"
                );
            }
            prop_assert!(is_connected_subset(instance.graph(), &region.members));
            // Filtered areas never join regions.
            for &a in &region.members {
                prop_assert!(eligible[a as usize]);
            }
        }
    }

    #[test]
    fn step3_leaves_only_fully_feasible_regions(
        w in 3usize..8,
        h in 3usize..8,
        seed in 0u64..500,
        mask in 0u8..32, // all constraint subsets
    ) {
        let scale = 100.0;
        let instance = build_instance(w, h, seed, scale);
        let set = random_constraints(scale, mask);
        let engine = ConstraintEngine::compile(&instance, &set).unwrap();
        let report = feasibility_phase(&engine);
        prop_assume!(!report.is_infeasible());
        let mut eligible = vec![true; instance.len()];
        for &a in &report.invalid_areas {
            eligible[a as usize] = false;
        }
        let mut partition = Partition::new(instance.len());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        region_growing(&engine, &mut partition, &report.seeds, &eligible, 3, &mut rng);
        monotonic_adjustments(&engine, &mut partition, &mut rng);

        // Invariant: every surviving region satisfies EVERY constraint and
        // is contiguous; assignment is a partition of a subset of areas.
        let mut seen = vec![false; instance.len()];
        for id in partition.region_ids() {
            let region = partition.region(id);
            prop_assert!(
                engine.satisfies_all(&region.agg),
                "region {id} infeasible after Step 3 (mask {mask:05b})"
            );
            prop_assert!(is_connected_subset(instance.graph(), &region.members));
            for &a in &region.members {
                prop_assert!(!seen[a as usize], "area {a} in two regions");
                seen[a as usize] = true;
                prop_assert_eq!(partition.region_of(a), Some(id));
            }
        }
        // Unassigned areas are exactly the complement.
        for a in partition.unassigned() {
            prop_assert!(!seen[a as usize]);
        }
    }

    #[test]
    fn feasibility_seeds_are_always_valid_areas(
        w in 3usize..8,
        h in 3usize..8,
        seed in 0u64..500,
        mask in 0u8..32,
    ) {
        let scale = 100.0;
        let instance = build_instance(w, h, seed, scale);
        let set = random_constraints(scale, mask);
        let engine = ConstraintEngine::compile(&instance, &set).unwrap();
        let report = feasibility_phase(&engine);
        // Seeds and invalid areas are disjoint; both are sorted and unique.
        for pair in report.seeds.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for pair in report.invalid_areas.windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
        for s in &report.seeds {
            prop_assert!(report.invalid_areas.binary_search(s).is_err());
        }
    }
}
