//! Parallel tabu suite: the sharded move evaluator (`TabuConfig::jobs > 1`)
//! is a *pure throughput lever* — for any worker count it must replay the
//! serial search byte-for-byte (same moves, same `p`, same heterogeneity
//! bits), and the constraint-slack pruning it shares with the serial path
//! must never change a decision (DESIGN.md §12).
//!
//! Instances come from the oracle generator, so the suite sweeps every
//! graph shape (lattice, tree, ring-with-chords, cluster, multi-component)
//! and every MIN/MAX/AVG/SUM/COUNT constraint combination the fuzzer knows
//! about — not just the hand-built lattices of `tabu_incremental.rs`.

use emp_core::engine::ConstraintEngine;
use emp_core::partition::Partition;
use emp_core::tabu::{tabu_search, TabuConfig};
use emp_core::{
    resume_observed, solve_budgeted_observed, Checkpoint, EmpError, FactConfig, SolveBudget,
    SolveOutcome, StopReason,
};
use emp_obs::{CounterKind, InMemorySink, Recorder};
use emp_oracle::generate_case;
use proptest::prelude::*;

/// The oracle case's config, forced onto the local-search path under test:
/// incremental neighborhood (the only path the sharded evaluator serves)
/// with local search always on.
fn tabu_fact(seed: u64, jobs: usize) -> FactConfig {
    let case = generate_case(seed);
    FactConfig {
        local_search: true,
        incremental_tabu: true,
        jobs,
        ..case.fact
    }
}

/// One observed budgeted solve: the outcome, its trajectory as bit-exact
/// `(iteration, heterogeneity bits)` pairs (pinning the full move
/// sequence), and the counter snapshot.
#[allow(clippy::type_complexity)]
fn run(
    seed: u64,
    fact: &FactConfig,
    budget: &SolveBudget,
) -> (
    Result<SolveOutcome, EmpError>,
    Vec<(u64, u64)>,
    emp_obs::Counters,
) {
    let case = generate_case(seed);
    let instance = case.instance().expect("oracle case compiles");
    let sink = InMemorySink::new();
    let handle = sink.handle();
    let mut rec = Recorder::with_sink(Box::new(sink));
    let outcome = solve_budgeted_observed(&instance, &case.constraints, fact, budget, &mut rec);
    let counters = rec.counters_snapshot();
    rec.finish();
    let trajectory = handle
        .lock()
        .unwrap()
        .trajectory
        .iter()
        .map(|&(i, h)| (i, h.to_bits()))
        .collect();
    (outcome, trajectory, counters)
}

/// Byte-identity of everything the determinism contract pins.
fn assert_identical(label: &str, a: &SolveOutcome, b: &SolveOutcome) {
    assert_eq!(
        a.report.solution.assignment, b.report.solution.assignment,
        "{label}: assignment diverged"
    );
    assert_eq!(
        a.report.solution.regions, b.report.solution.regions,
        "{label}: regions diverged"
    );
    assert_eq!(a.report.p(), b.report.p(), "{label}: p diverged");
    assert_eq!(
        a.report.solution.heterogeneity.to_bits(),
        b.report.solution.heterogeneity.to_bits(),
        "{label}: heterogeneity bits diverged"
    );
    assert_eq!(
        (a.report.tabu.iterations, a.report.tabu.moves),
        (b.report.tabu.iterations, b.report.tabu.moves),
        "{label}: iteration/move counts diverged"
    );
    assert_eq!(
        a.report.tabu.best.to_bits(),
        b.report.tabu.best.to_bits(),
        "{label}: tabu best bits diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tentpole contract: for jobs ∈ {2, 3, 8}, the sharded evaluator's
    /// applied-move sequence (pinned by the bit-exact trajectory), final
    /// assignment, `p`, and `H` equal the serial run's exactly.
    #[test]
    fn parallel_solve_identical_to_serial(seed in 0u64..300, jobs_idx in 0usize..3) {
        let jobs = [2usize, 3, 8][jobs_idx];
        let unlimited = SolveBudget::unlimited();
        let (serial, serial_traj, _) = run(seed, &tabu_fact(seed, 1), &unlimited);
        let (parallel, parallel_traj, counters) = run(seed, &tabu_fact(seed, jobs), &unlimited);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                assert_identical(&format!("seed {seed} jobs {jobs}"), &s, &p);
                prop_assert_eq!(
                    serial_traj, parallel_traj,
                    "seed {} jobs {}: move sequence diverged", seed, jobs
                );
                // The parallel path really ran whenever the search iterated.
                if p.report.tabu.iterations > 0 {
                    prop_assert!(counters.get(CounterKind::TabuParallelIterations) > 0);
                    prop_assert!(counters.get(CounterKind::TabuShardsEvaluated) > 0);
                }
            }
            (Err(EmpError::Infeasible { .. }), Err(EmpError::Infeasible { .. })) => {}
            (s, p) => panic!("seed {seed} jobs {jobs}: outcomes diverged: {s:?} vs {p:?}"),
        }
    }

    /// Prune-soundness differential: the incremental neighborhood (which
    /// slack-prunes donors and receivers) and the full-scan reference
    /// (which checks every candidate the slow way, no pruning) trace
    /// identical searches from the same constructed partition — so a prune
    /// can never have skipped a move the reference would have taken. The
    /// sharded evaluator at jobs = 3 must agree with both.
    #[test]
    fn pruned_search_matches_unpruned_reference(seed in 0u64..250) {
        let case = generate_case(seed);
        let instance = case.instance().expect("oracle case compiles");
        let construct_only = FactConfig {
            local_search: false,
            ..case.fact.clone()
        };
        let report = match emp_core::solve(&instance, &case.constraints, &construct_only) {
            Ok(report) => report,
            Err(EmpError::Infeasible { .. }) => return Ok(()),
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let engine = ConstraintEngine::compile(&instance, &case.constraints).expect("engine");
        let mut base = Partition::new(instance.len());
        for members in &report.solution.regions {
            base.create_region(&engine, members);
        }
        let config = |incremental: bool, jobs: usize| TabuConfig {
            incremental,
            jobs,
            max_iterations: 200,
            ..TabuConfig::for_instance(instance.len())
        };

        let mut pruned = base.clone();
        let mut reference = base.clone();
        let mut sharded = base;
        let fast = tabu_search(&engine, &mut pruned, &config(true, 1));
        let slow = tabu_search(&engine, &mut reference, &config(false, 1));
        let par = tabu_search(&engine, &mut sharded, &config(true, 3));
        prop_assert_eq!(
            (fast.iterations, fast.moves, fast.best.to_bits()),
            (slow.iterations, slow.moves, slow.best.to_bits()),
            "seed {}: slack pruning changed the search", seed
        );
        prop_assert_eq!(pruned.assignment(), reference.assignment());
        prop_assert_eq!(
            (par.iterations, par.moves, par.best.to_bits()),
            (fast.iterations, fast.moves, fast.best.to_bits()),
            "seed {}: sharded evaluator diverged", seed
        );
        prop_assert_eq!(sharded.assignment(), pruned.assignment());
    }

    /// Resume equivalence with a parallel worker pool: cutting a jobs = 3
    /// solve at an arbitrary poll and resuming (still at jobs = 3) lands on
    /// the uninterrupted *serial* result, trajectories stitched exactly —
    /// budget polling stays at iteration granularity regardless of jobs.
    #[test]
    fn parallel_resume_matches_uninterrupted(seed in 0u64..120, cut in 0u64..300) {
        let fact = tabu_fact(seed, 3);
        let case = generate_case(seed);
        let instance = case.instance().expect("oracle case compiles");
        let (full, full_traj, _) = run(seed, &tabu_fact(seed, 1), &SolveBudget::unlimited());
        let full = match full {
            Ok(outcome) => outcome,
            Err(EmpError::Infeasible { .. }) => return Ok(()),
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let (interrupted, cut_traj, _) = run(seed, &fact, &SolveBudget::poll_limit(cut));
        let mut interrupted = interrupted.expect("feasible case stays feasible under a budget");
        if interrupted.stop_reason == StopReason::Completed {
            assert_identical(&format!("seed {seed} (uncut, jobs 3)"), &full, &interrupted);
            return Ok(());
        }
        let checkpoint = interrupted
            .checkpoint
            .take()
            .expect("interrupted solve carries a checkpoint");
        let reparsed = Checkpoint::from_text(&checkpoint.to_text())
            .unwrap_or_else(|e| panic!("seed {seed} cut {cut}: checkpoint reparse failed: {e}"));

        let sink = InMemorySink::new();
        let handle = sink.handle();
        let mut rec = Recorder::with_sink(Box::new(sink));
        let resumed = resume_observed(
            &instance,
            &case.constraints,
            &fact,
            &SolveBudget::unlimited(),
            &reparsed,
            &mut rec,
        )
        .expect("resume of a feasible case succeeds");
        rec.finish();
        let resume_traj: Vec<(u64, u64)> = handle
            .lock()
            .unwrap()
            .trajectory
            .iter()
            .map(|&(i, h)| (i, h.to_bits()))
            .collect();
        assert_identical(&format!("seed {seed} cut {cut} (jobs 3)"), &full, &resumed);
        let mut stitched = cut_traj;
        stitched.extend(resume_traj);
        prop_assert_eq!(
            stitched, full_traj,
            "seed {} cut {}: stitched trajectory diverged", seed, cut
        );
    }
}

/// Accounting: across a spread of oracle seeds, the serial path actually
/// exercises the slack pruner (the counter is live, not dead weight) while
/// never touching the sharded evaluator; a jobs = 4 run does the opposite
/// on the shard counters and must end on identical prune *opportunities*
/// only where the serial scan order visits them — so only the serial-path
/// invariant (`shards == 0`) is asserted per run, totals in aggregate.
#[test]
fn counters_account_for_serial_and_parallel_paths() {
    let mut serial_prunes = 0u64;
    let mut parallel_shards = 0u64;
    for seed in 0..60u64 {
        let (serial, _, counters) = run(seed, &tabu_fact(seed, 1), &SolveBudget::unlimited());
        if serial.is_err() {
            continue;
        }
        assert_eq!(
            counters.get(CounterKind::TabuShardsEvaluated),
            0,
            "seed {seed}: serial run must never shard"
        );
        assert_eq!(
            counters.get(CounterKind::TabuParallelIterations),
            0,
            "seed {seed}: serial run must stay on the serial path"
        );
        serial_prunes += counters.get(CounterKind::TabuSlackPruneSkips);

        let (_, _, par_counters) = run(seed, &tabu_fact(seed, 4), &SolveBudget::unlimited());
        parallel_shards += par_counters.get(CounterKind::TabuShardsEvaluated);
    }
    assert!(
        serial_prunes > 0,
        "slack pruning never fired across 60 oracle seeds"
    );
    assert!(
        parallel_shards > 0,
        "sharded evaluator never ran across 60 oracle seeds"
    );
}
