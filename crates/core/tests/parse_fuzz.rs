//! Fuzz-style robustness tests for the constraint parser: arbitrary input
//! must produce `Ok` or `Err`, never a panic, and valid constraints must
//! round-trip.

use emp_core::constraint::Aggregate;
use emp_core::parse::{parse_constraint, parse_constraints};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_never_panics_on_garbage(input in ".{0,120}") {
        let _ = parse_constraint(&input);
        let _ = parse_constraints(&input);
    }

    #[test]
    fn parser_never_panics_on_expression_shaped_garbage(
        agg in "(MIN|MAX|AVG|SUM|COUNT|FOO|min)",
        attr in "[A-Za-z_*][A-Za-z0-9_]{0,12}",
        op in "(>=|<=|>|<|IN|BETWEEN|==)",
        a in -1e12f64..1e12,
        b in -1e12f64..1e12,
        shape in 0u8..4,
    ) {
        let text = match shape {
            0 => format!("{agg}({attr}) {op} {a}"),
            1 => format!("{agg}({attr}) IN [{a}, {b}]"),
            2 => format!("{a} <= {agg}({attr}) <= {b}"),
            _ => format!("{agg}({attr}) BETWEEN {a} AND {b}"),
        };
        let _ = parse_constraint(&text);
    }

    #[test]
    fn conjunctions_of_valid_constraints_parse(count in 1usize..6) {
        let parts: Vec<String> = (0..count)
            .map(|i| format!("SUM(ATTR{i}) >= {}", i * 100))
            .collect();
        let set = parse_constraints(&parts.join(" AND ")).unwrap();
        prop_assert_eq!(set.len(), count);
        for (i, c) in set.constraints().iter().enumerate() {
            prop_assert_eq!(c.aggregate, Aggregate::Sum);
            prop_assert_eq!(c.low, (i * 100) as f64);
        }
    }

    #[test]
    fn whitespace_and_case_insensitivity(
        spaces in prop::collection::vec(0usize..4, 6),
    ) {
        let pad = |k: usize| " ".repeat(spaces[k % spaces.len()]);
        let text = format!(
            "{}sum{}({}POP{}){}>={}42",
            pad(0), pad(1), pad(2), pad(3), pad(4), pad(5)
        );
        let c = parse_constraint(&text).unwrap();
        prop_assert_eq!(c.aggregate, Aggregate::Sum);
        prop_assert_eq!(c.low, 42.0);
    }
}
