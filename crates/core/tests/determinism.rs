//! Seed determinism: the same `FactConfig` (seed included) must produce
//! byte-identical solutions run to run, and the parallel construction path
//! must agree with the sequential one — the paper's reproducibility claim,
//! and the property the fuzz corpus replay relies on.

use emp_core::attr::AttributeTable;
use emp_core::constraint::{Constraint, ConstraintSet};
use emp_core::instance::EmpInstance;
use emp_core::solver::{solve, FactConfig};
use emp_graph::ContiguityGraph;

fn build_instance(w: usize, h: usize, seed: u64) -> EmpInstance {
    let n = w * h;
    let graph = ContiguityGraph::lattice(w, h);
    let mut attrs = AttributeTable::new(n);
    let s: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f64)
        .collect();
    let t: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(97003).wrapping_add(seed * 31) % 1000) as f64)
        .collect();
    attrs.push_column("S", s).unwrap();
    attrs.push_column("T", t).unwrap();
    EmpInstance::new(graph, attrs, "T").unwrap()
}

fn query() -> ConstraintSet {
    ConstraintSet::new()
        .with(Constraint::sum("S", 1500.0, f64::INFINITY).unwrap())
        .with(Constraint::count(2.0, 20.0).unwrap())
}

#[test]
fn identical_config_gives_byte_identical_solutions() {
    for seed in [0u64, 7, 1234, u64::MAX / 3] {
        let instance = build_instance(8, 8, 11);
        let config = FactConfig::seeded(seed);
        let a = solve(&instance, &query(), &config).expect("feasible");
        let b = solve(&instance, &query(), &config).expect("feasible");
        assert_eq!(
            format!("{:?}", a.solution),
            format!("{:?}", b.solution),
            "seed {seed}: solutions diverged between runs"
        );
        assert_eq!(a.p(), b.p());
        assert_eq!(
            a.solution.heterogeneity.to_bits(),
            b.solution.heterogeneity.to_bits()
        );
    }
}

#[test]
fn parallel_construction_matches_sequential() {
    // The parallel path distributes construction iterations over scoped
    // threads but must pick the same winner: per-iteration RNG streams are
    // derived from `seed + i` either way.
    for seed in [3u64, 99, 4096] {
        let instance = build_instance(9, 7, 5);
        let sequential = FactConfig {
            parallel: false,
            construction_iterations: 4,
            ..FactConfig::seeded(seed)
        };
        let parallel = FactConfig {
            parallel: true,
            ..sequential
        };
        let a = solve(&instance, &query(), &sequential).expect("feasible");
        let b = solve(&instance, &query(), &parallel).expect("feasible");
        assert_eq!(
            format!("{:?}", a.solution),
            format!("{:?}", b.solution),
            "seed {seed}: parallel and sequential construction diverged"
        );
    }
}

#[test]
fn different_seeds_are_actually_exercised() {
    // Guard against a solver that ignores its seed (which would make the
    // two tests above pass vacuously): across many seeds on a heterogeneous
    // instance, at least two distinct solutions must appear.
    let instance = build_instance(8, 8, 11);
    let mut distinct = std::collections::HashSet::new();
    for seed in 0..12u64 {
        let report = solve(&instance, &query(), &FactConfig::seeded(seed)).expect("feasible");
        distinct.insert(format!("{:?}", report.solution));
    }
    assert!(distinct.len() >= 2, "12 seeds produced a single solution");
}
