//! An EMP problem instance: areas with attributes plus their contiguity graph.

use crate::attr::AttributeTable;
use crate::error::EmpError;
use crate::objective::ObjectiveSpec;
use emp_graph::ContiguityGraph;

/// The input of the EMP problem: a set of areas `A` where each area has
/// spatially extensive attributes `S_i`, a dissimilarity attribute `d_i`, and
/// spatial adjacency encoded in a [`ContiguityGraph`] (paper §III).
#[derive(Clone, Debug)]
pub struct EmpInstance {
    graph: ContiguityGraph,
    attributes: AttributeTable,
    dissimilarity: Vec<f64>,
    objective: ObjectiveSpec,
}

impl EmpInstance {
    /// Creates an instance where the dissimilarity attribute is one of the
    /// table's columns (e.g. `HOUSEHOLDS` in the paper's evaluation).
    pub fn new(
        graph: ContiguityGraph,
        attributes: AttributeTable,
        dissimilarity_attr: &str,
    ) -> Result<Self, EmpError> {
        let col = attributes.column_index(dissimilarity_attr).ok_or_else(|| {
            EmpError::UnknownAttribute {
                name: dissimilarity_attr.to_string(),
            }
        })?;
        let dissimilarity = attributes.column(col).to_vec();
        Self::from_parts(graph, attributes, dissimilarity)
    }

    /// Creates an instance with an explicit dissimilarity vector (which may
    /// be derived data rather than a raw attribute).
    pub fn from_parts(
        graph: ContiguityGraph,
        attributes: AttributeTable,
        dissimilarity: Vec<f64>,
    ) -> Result<Self, EmpError> {
        if graph.len() != attributes.rows() {
            return Err(EmpError::SizeMismatch {
                graph: graph.len(),
                attrs: attributes.rows(),
            });
        }
        if dissimilarity.len() != graph.len() {
            return Err(EmpError::SizeMismatch {
                graph: graph.len(),
                attrs: dissimilarity.len(),
            });
        }
        if let Some(row) = dissimilarity.iter().position(|v| !v.is_finite()) {
            return Err(EmpError::InvalidAttributeValue {
                name: "<dissimilarity>".to_string(),
                row,
                value: dissimilarity[row],
            });
        }
        let objective = ObjectiveSpec::heterogeneity(dissimilarity.clone());
        Ok(EmpInstance {
            graph,
            attributes,
            dissimilarity,
            objective,
        })
    }

    /// Replaces the local-search objective (paper §III: "our work can
    /// support alternative definitions, such as improving spatial
    /// compactness or balancing multiple criteria"). The spec must cover
    /// every area.
    pub fn with_objective(mut self, objective: ObjectiveSpec) -> Result<Self, EmpError> {
        if objective.len() != self.len() {
            return Err(EmpError::SizeMismatch {
                graph: self.len(),
                attrs: objective.len(),
            });
        }
        self.objective = objective;
        Ok(self)
    }

    /// The local-search objective (defaults to the paper's heterogeneity
    /// over the dissimilarity attribute).
    #[inline]
    pub fn objective(&self) -> &ObjectiveSpec {
        &self.objective
    }

    /// Number of areas `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Whether the instance has no areas.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguity graph.
    #[inline]
    pub fn graph(&self) -> &ContiguityGraph {
        &self.graph
    }

    /// The attribute table.
    #[inline]
    pub fn attributes(&self) -> &AttributeTable {
        &self.attributes
    }

    /// Dissimilarity values `d_i`, one per area.
    #[inline]
    pub fn dissimilarity(&self) -> &[f64] {
        &self.dissimilarity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        EmpInstance::new(graph, attrs, "POP").unwrap()
    }

    #[test]
    fn construction_from_attr() {
        let inst = small_instance();
        assert_eq!(inst.len(), 4);
        assert_eq!(inst.dissimilarity(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(!inst.is_empty());
    }

    #[test]
    fn rejects_unknown_dissimilarity() {
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![0.0; 4]).unwrap();
        assert!(matches!(
            EmpInstance::new(graph, attrs, "NOPE"),
            Err(EmpError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn rejects_size_mismatch() {
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(3);
        attrs.push_column("POP", vec![0.0; 3]).unwrap();
        assert!(matches!(
            EmpInstance::new(graph, attrs, "POP"),
            Err(EmpError::SizeMismatch { .. })
        ));
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![0.0; 4]).unwrap();
        assert!(EmpInstance::from_parts(graph, attrs, vec![0.0; 3]).is_err());
    }

    #[test]
    fn rejects_non_finite_dissimilarity() {
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![0.0; 4]).unwrap();
        let err = EmpInstance::from_parts(graph, attrs, vec![0.0, f64::NAN, 0.0, 0.0]);
        assert!(matches!(
            err,
            Err(EmpError::InvalidAttributeValue { row: 1, .. })
        ));
    }

    #[test]
    fn dissimilarity_may_be_negative() {
        // Unlike extensive attributes, d_i only feeds |d_i - d_j|.
        let graph = ContiguityGraph::lattice(2, 2);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("POP", vec![0.0; 4]).unwrap();
        let inst = EmpInstance::from_parts(graph, attrs, vec![-1.0, 0.0, 1.0, 2.0]).unwrap();
        assert_eq!(inst.dissimilarity()[0], -1.0);
    }
}
