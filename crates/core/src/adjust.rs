//! Step 3 of the construction phase: **Monotonic Adjustments** (paper §V-B).
//!
//! Satisfies the SUM and COUNT constraints while preserving everything Step 2
//! established. Because counting aggregates are monotonic over non-negative
//! attributes, under-filled regions are grown (swaps, then merges) and
//! over-filled regions are shrunk (swaps, then removals to `U_0`); regions
//! that remain infeasible are dissolved.

use crate::constraint::Aggregate;
use crate::engine::{check_counter, ConstraintEngine, RegionAgg};
use crate::partition::{Partition, RegionId};
use emp_graph::SubsetScratch;
use emp_obs::{CounterKind, Counters};
use rand::seq::SliceRandom;
use rand::Rng;

/// Whether all MIN/MAX/AVG constraints hold.
fn non_counting_ok(
    engine: &ConstraintEngine<'_>,
    agg: &RegionAgg,
    counters: &mut Counters,
) -> bool {
    engine
        .indices_of(Aggregate::Min)
        .iter()
        .chain(engine.indices_of(Aggregate::Max))
        .chain(engine.indices_of(Aggregate::Avg))
        .all(|&ci| {
            counters.inc(check_counter(engine.constraints()[ci].aggregate));
            engine.satisfied(agg, ci)
        })
}

fn counting_indices(engine: &ConstraintEngine<'_>) -> Vec<usize> {
    engine
        .indices_of(Aggregate::Sum)
        .iter()
        .chain(engine.indices_of(Aggregate::Count))
        .copied()
        .collect()
}

/// Charges one counting-aggregate check per constraint in `counting`.
fn charge_counting_checks(
    engine: &ConstraintEngine<'_>,
    counting: &[usize],
    counters: &mut Counters,
) {
    for &ci in counting {
        counters.inc(check_counter(engine.constraints()[ci].aggregate));
    }
}

/// Whether every counting constraint's *upper* bound holds.
fn counting_upper_ok(engine: &ConstraintEngine<'_>, agg: &RegionAgg, counting: &[usize]) -> bool {
    counting
        .iter()
        .all(|&ci| engine.value(agg, ci) <= engine.constraints()[ci].high)
}

/// Whether every counting constraint's *lower* bound holds.
fn counting_lower_ok(engine: &ConstraintEngine<'_>, agg: &RegionAgg, counting: &[usize]) -> bool {
    counting
        .iter()
        .all(|&ci| engine.value(agg, ci) >= engine.constraints()[ci].low)
}

/// Runs Step 3. No-op when the query has no SUM/COUNT constraints
/// (paper §V-D).
pub fn monotonic_adjustments<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    rng: &mut R,
) {
    monotonic_adjustments_counted(engine, partition, rng, &mut Counters::new());
}

/// [`monotonic_adjustments`] accumulating telemetry counters (connectivity
/// BFS probes, constraint checks by aggregate kind, region lifecycle) into
/// `counters`.
pub fn monotonic_adjustments_counted<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    rng: &mut R,
    counters: &mut Counters,
) {
    let counting = counting_indices(engine);
    if counting.is_empty() {
        return;
    }
    // "Each area is swapped at most once" — the paper's termination argument.
    let mut swapped = vec![false; partition.len()];
    // One connectivity scratch shared across every BFS probe of the step.
    let mut scratch = SubsetScratch::new();

    // Pass 1: swap boundary areas with neighbor regions.
    let ids: Vec<RegionId> = partition.region_ids().collect();
    for id in ids {
        if !partition.is_live(id) {
            continue;
        }
        pull_swaps(
            engine,
            partition,
            id,
            &counting,
            &mut swapped,
            rng,
            counters,
            &mut scratch,
        );
        if partition.is_live(id) {
            push_swaps(
                engine,
                partition,
                id,
                &counting,
                &mut swapped,
                rng,
                counters,
                &mut scratch,
            );
        }
    }

    // Pass 2: merge regions still below lower bounds.
    merge_underfilled(engine, partition, &counting, counters);

    // Pass 3: shed areas from regions still above upper bounds.
    let ids: Vec<RegionId> = partition.region_ids().collect();
    for id in ids {
        if partition.is_live(id) {
            shed_overfilled(engine, partition, id, &counting, counters, &mut scratch);
        }
    }

    // Pass 4: dissolve regions that remain infeasible.
    let ids: Vec<RegionId> = partition.region_ids().collect();
    for id in ids {
        if partition.is_live(id)
            && !engine.satisfies_all_counted(&partition.region(id).agg, counters)
        {
            partition.dissolve_region(id);
            counters.inc(CounterKind::RegionsFreed);
        }
    }
}

/// Pulls boundary areas from neighbor regions into an under-filled region.
#[allow(clippy::too_many_arguments)]
fn pull_swaps<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    id: RegionId,
    counting: &[usize],
    swapped: &mut [bool],
    rng: &mut R,
    counters: &mut Counters,
    scratch: &mut SubsetScratch,
) {
    let graph = engine.instance().graph();
    loop {
        charge_counting_checks(engine, counting, counters);
        if counting_lower_ok(engine, &partition.region(id).agg, counting) {
            return;
        }
        // Boundary candidates: areas of other regions adjacent to this one.
        let mut candidates: Vec<u32> = Vec::new();
        for &m in &partition.region(id).members {
            for &nb in graph.neighbors(m) {
                if let Some(other) = partition.region_of(nb) {
                    if other != id && !swapped[nb as usize] {
                        candidates.push(nb);
                    }
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.shuffle(rng);

        let mut moved = false;
        for a in candidates {
            let donor = partition.region_of(a).expect("candidate is assigned");
            // Donor must stay a single connected component...
            counters.inc(CounterKind::BfsFallbacks);
            if !partition.removal_keeps_connected_with(engine, a, scratch) {
                continue;
            }
            partition.move_area(engine, a, id);
            // ...and keep satisfying every constraint; the receiver must keep
            // its non-counting constraints and counting upper bounds.
            let donor_ok = !partition.is_live(donor)
                || engine.satisfies_all_counted(&partition.region(donor).agg, counters);
            // A donor must not be emptied out entirely.
            let donor_alive = partition.is_live(donor);
            charge_counting_checks(engine, counting, counters);
            let recv_ok = non_counting_ok(engine, &partition.region(id).agg, counters)
                && counting_upper_ok(engine, &partition.region(id).agg, counting);
            if donor_ok && donor_alive && recv_ok {
                swapped[a as usize] = true;
                moved = true;
                break;
            }
            // Revert.
            partition.move_area(engine, a, donor);
        }
        if !moved {
            return;
        }
    }
}

/// Pushes boundary areas of an over-filled region into neighbor regions.
#[allow(clippy::too_many_arguments)]
fn push_swaps<R: Rng>(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    id: RegionId,
    counting: &[usize],
    swapped: &mut [bool],
    rng: &mut R,
    counters: &mut Counters,
    scratch: &mut SubsetScratch,
) {
    let graph = engine.instance().graph();
    loop {
        charge_counting_checks(engine, counting, counters);
        if counting_upper_ok(engine, &partition.region(id).agg, counting) {
            return;
        }
        let mut members: Vec<u32> = partition.region(id).members.clone();
        members.shuffle(rng);
        let mut moved = false;
        'outer: for a in members {
            if swapped[a as usize] {
                continue;
            }
            counters.inc(CounterKind::BfsFallbacks);
            if !partition.removal_keeps_connected_with(engine, a, scratch) {
                continue;
            }
            let mut receivers: Vec<RegionId> = graph
                .neighbors(a)
                .iter()
                .filter_map(|&nb| partition.region_of(nb))
                .filter(|&r| r != id)
                .collect();
            receivers.sort_unstable();
            receivers.dedup();
            receivers.shuffle(rng);
            for recv in receivers {
                partition.move_area(engine, a, recv);
                let recv_ok = engine.satisfies_all_counted(&partition.region(recv).agg, counters);
                let donor_ok = partition.is_live(id)
                    && non_counting_ok(engine, &partition.region(id).agg, counters);
                if recv_ok && donor_ok {
                    swapped[a as usize] = true;
                    moved = true;
                    break 'outer;
                }
                partition.move_area(engine, a, id);
            }
        }
        if !moved {
            return;
        }
    }
}

/// Merges regions below counting lower bounds with neighbor regions, as long
/// as the merged region would not break counting upper bounds.
fn merge_underfilled(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    counting: &[usize],
    counters: &mut Counters,
) {
    loop {
        let mut progressed = false;
        let ids: Vec<RegionId> = partition.region_ids().collect();
        for id in ids {
            if !partition.is_live(id) {
                continue;
            }
            while partition.is_live(id) && {
                charge_counting_checks(engine, counting, counters);
                !counting_lower_ok(engine, &partition.region(id).agg, counting)
            } {
                // The most violated counting constraint drives the choice.
                let driver = counting
                    .iter()
                    .copied()
                    .find(|&ci| {
                        engine.value(&partition.region(id).agg, ci) < engine.constraints()[ci].low
                    })
                    .expect("a lower bound is violated");
                let nbrs = partition.neighbor_regions(engine, id);
                // Merge with the *smallest* admissible neighbor: gluing onto
                // an already-large region would overshoot and waste p.
                let mergeable = nbrs
                    .into_iter()
                    .filter(|&r| {
                        counting.iter().all(|&ci| {
                            let c = &engine.constraints()[ci];
                            let merged = engine.value(&partition.region(id).agg, ci)
                                + engine.value(&partition.region(r).agg, ci);
                            merged <= c.high
                        })
                    })
                    .min_by(|&r1, &r2| {
                        let v1 = engine.value(&partition.region(r1).agg, driver);
                        let v2 = engine.value(&partition.region(r2).agg, driver);
                        v1.partial_cmp(&v2).unwrap_or(std::cmp::Ordering::Equal)
                    });
                match mergeable {
                    Some(r) => {
                        partition.merge_regions(engine, id, r);
                        counters.inc(CounterKind::RegionsMerged);
                        progressed = true;
                    }
                    None => break,
                }
            }
        }
        if !progressed {
            break;
        }
    }
}

/// Removes areas from a region exceeding counting upper bounds into `U_0`,
/// preferring areas whose removal fixes the violation fastest.
fn shed_overfilled(
    engine: &ConstraintEngine<'_>,
    partition: &mut Partition,
    id: RegionId,
    counting: &[usize],
    counters: &mut Counters,
    scratch: &mut SubsetScratch,
) {
    loop {
        charge_counting_checks(engine, counting, counters);
        if counting_upper_ok(engine, &partition.region(id).agg, counting) {
            return;
        }
        // The most violated counting constraint drives the choice.
        let &ci = counting
            .iter()
            .max_by(|&&a, &&b| {
                let va = engine.value(&partition.region(id).agg, a) - engine.constraints()[a].high;
                let vb = engine.value(&partition.region(id).agg, b) - engine.constraints()[b].high;
                va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("counting non-empty");
        // Candidates: largest contribution first.
        let mut members: Vec<u32> = partition.region(id).members.clone();
        members.sort_by(|&a, &b| {
            engine
                .area_value(ci, b)
                .partial_cmp(&engine.area_value(ci, a))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut removed = false;
        for a in members {
            counters.inc(CounterKind::BfsFallbacks);
            if !partition.removal_keeps_connected_with(engine, a, scratch) {
                continue;
            }
            partition.remove_from_region(engine, a);
            let still_ok = partition.is_live(id)
                && non_counting_ok(engine, &partition.region(id).agg, counters);
            if still_ok {
                removed = true;
                break;
            }
            // Revert (re-attach to the same region).
            partition.add_to_region(engine, id, a);
        }
        if !removed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs
            .push_column("s", (1..=9).map(|v| v as f64).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "s").unwrap()
    }

    #[test]
    fn noop_without_counting_constraints() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::min("s", 1.0, 9.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[0, 1]);
        let before = part.extract_regions();
        let mut rng = StdRng::seed_from_u64(0);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        assert_eq!(part.extract_regions(), before);
    }

    /// The swap mechanism of the paper's Figure 4a -> 4b example: a region
    /// missing a SUM lower bound pulls a boundary area from a donor region
    /// that keeps satisfying all constraints afterwards.
    #[test]
    fn swap_fixes_underfilled_region() {
        // Path 0-1-2-3 with s = [10, 6, 6, 2]; SUM >= 8, COUNT <= 3.
        // A = {0,1,2} (sum 22), B = {3} (sum 2, violates). Swapping area 2
        // into B gives A = {0,1} (16) and B = {2,3} (8): both feasible.
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("s", vec![10.0, 6.0, 6.0, 2.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new()
            .with(Constraint::sum("s", 8.0, f64::INFINITY).unwrap())
            .with(Constraint::count(f64::NEG_INFINITY, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        let a = part.create_region(&eng, &[0, 1, 2]);
        let b = part.create_region(&eng, &[3]);
        let mut rng = StdRng::seed_from_u64(42);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        assert_eq!(part.p(), 2);
        for id in [a, b] {
            assert!(part.is_live(id));
            assert!(eng.satisfies_all(&part.region(id).agg));
        }
        assert_eq!(part.region(b).members.len(), 2);
        assert_eq!(part.unassigned_count(), 0);
    }

    #[test]
    fn underfilled_regions_merge() {
        // Path of 4, s = [1,1,1,1], SUM >= 2: singleton regions must merge.
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("s", vec![1.0; 4]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new().with(Constraint::sum("s", 2.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        for a in 0..4 {
            part.create_region(&eng, &[a]);
        }
        let mut rng = StdRng::seed_from_u64(1);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        assert!(part.p() >= 1);
        for id in part.region_ids() {
            assert!(eng.satisfies_all(&part.region(id).agg));
            // Contiguity preserved.
            let members = &part.region(id).members;
            assert!(emp_graph::subgraph::is_connected_subset(
                inst.graph(),
                members
            ));
        }
        assert_eq!(part.unassigned_count(), 0);
    }

    #[test]
    fn overfilled_regions_shed_areas() {
        // One big region over the COUNT upper bound sheds areas into U_0.
        let graph = ContiguityGraph::lattice(5, 1);
        let mut attrs = AttributeTable::new(5);
        attrs.push_column("s", vec![1.0; 5]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new().with(Constraint::count(1.0, 3.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(5);
        let r = part.create_region(&eng, &[0, 1, 2, 3, 4]);
        let mut rng = StdRng::seed_from_u64(2);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        assert!(part.is_live(r));
        assert!(eng.satisfies_all(&part.region(r).agg));
        assert_eq!(part.region(r).members.len(), 3);
        assert_eq!(part.unassigned_count(), 2);
        assert!(emp_graph::subgraph::is_connected_subset(
            inst.graph(),
            &part.region(r).members
        ));
    }

    #[test]
    fn hopeless_regions_are_dissolved() {
        // Two isolated singletons with SUM >= 100: nothing can fix them.
        let graph = ContiguityGraph::from_edges(2, &[]).unwrap();
        let mut attrs = AttributeTable::new(2);
        attrs.push_column("s", vec![1.0, 1.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new().with(Constraint::sum("s", 100.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(2);
        part.create_region(&eng, &[0]);
        part.create_region(&eng, &[1]);
        let mut rng = StdRng::seed_from_u64(3);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        assert_eq!(part.p(), 0);
        assert_eq!(part.unassigned_count(), 2);
    }

    #[test]
    fn swaps_preserve_avg_constraints() {
        // AVG plus SUM: swapping must never break the receiver's AVG.
        let graph = ContiguityGraph::lattice(4, 1);
        let mut attrs = AttributeTable::new(4);
        attrs.push_column("s", vec![4.0, 5.0, 5.0, 6.0]).unwrap();
        let inst = EmpInstance::new(graph, attrs, "s").unwrap();
        let set = ConstraintSet::new()
            .with(Constraint::avg("s", 4.0, 6.0).unwrap())
            .with(Constraint::sum("s", 9.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(4);
        part.create_region(&eng, &[0, 1]); // sum 9 ok
        part.create_region(&eng, &[2, 3]); // sum 11 ok
        let mut rng = StdRng::seed_from_u64(4);
        monotonic_adjustments(&eng, &mut part, &mut rng);
        for id in part.region_ids() {
            assert!(eng.satisfies_all(&part.region(id).agg));
        }
        assert_eq!(part.p(), 2);
    }
}
