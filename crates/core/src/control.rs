//! Solver lifecycle control plane: deadlines, cooperative cancellation,
//! and checkpoint/resume (DESIGN.md §11).
//!
//! A [`SolveBudget`] is threaded through every long-running solver loop.
//! Each loop *polls* the budget at iteration granularity — never mid-move —
//! and when the budget answers with a [`StopReason`], the loop winds down
//! cleanly: the caller receives the best-so-far **valid** incumbent plus a
//! serializable [`Checkpoint`] from which `resume` continues byte-identically
//! to an uninterrupted run.
//!
//! Three interruption sources compose in one poll:
//!
//! * a wall-clock **deadline** (armed when the budget is built),
//! * a shared [`CancelToken`] flipped from another thread,
//! * a deterministic **poll limit** — "stop after the k-th poll" — which is
//!   what the interruption test suite uses to cut a solve at an arbitrary
//!   reproducible point without any wall-clock dependence.
//!
//! The checkpoint text format is versioned (`EMPCKPT v1`) and hand-rolled:
//! `emp-core` is serde-free by design. Every path-dependent `f64` (region
//! sums, pairwise dissimilarity accumulators, tabu objective state) is
//! stored as exact IEEE-754 bits so a restore is bit-identical, which is
//! what makes resumed move sequences provably equal to uninterrupted ones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve stopped. `Completed` means the solver ran to its natural
/// termination; every other reason marks a cooperative interruption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StopReason {
    /// The solver ran to natural termination.
    #[default]
    Completed,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A [`CancelToken`] was flipped.
    Cancelled,
    /// The deterministic poll limit was reached (test hook).
    IterationBudget,
    /// The exact search exhausted its node budget.
    NodeBudget,
}

impl StopReason {
    /// Every variant, in [`StopReason::code`] order.
    pub const ALL: [StopReason; 5] = [
        StopReason::Completed,
        StopReason::DeadlineExceeded,
        StopReason::Cancelled,
        StopReason::IterationBudget,
        StopReason::NodeBudget,
    ];

    /// Stable numeric code (used as the `stop_reason` span note value).
    pub fn code(self) -> u32 {
        match self {
            StopReason::Completed => 0,
            StopReason::DeadlineExceeded => 1,
            StopReason::Cancelled => 2,
            StopReason::IterationBudget => 3,
            StopReason::NodeBudget => 4,
        }
    }

    /// Stable snake_case name (used in JSON artifacts and table notes).
    pub fn name(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::DeadlineExceeded => "deadline_exceeded",
            StopReason::Cancelled => "cancelled",
            StopReason::IterationBudget => "iteration_budget",
            StopReason::NodeBudget => "node_budget",
        }
    }

    /// Parses a [`StopReason::name`] back.
    pub fn from_name(name: &str) -> Option<StopReason> {
        Some(match name {
            "completed" => StopReason::Completed,
            "deadline_exceeded" => StopReason::DeadlineExceeded,
            "cancelled" => StopReason::Cancelled,
            "iteration_budget" => StopReason::IterationBudget,
            "node_budget" => StopReason::NodeBudget,
            _ => return None,
        })
    }
}

/// Shared cooperative-cancellation flag. Clones observe the same flag; any
/// clone may cancel, from any thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; solvers observe it at their next
    /// poll point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The budget a solve runs under. Built once, polled at every loop
/// iteration; clones share the poll counter and cancel flag, so a budget
/// handed to helper phases still counts and stops globally.
#[derive(Clone, Debug)]
pub struct SolveBudget {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    poll_limit: Option<u64>,
    polls: Arc<AtomicU64>,
}

impl Default for SolveBudget {
    fn default() -> Self {
        SolveBudget::unlimited()
    }
}

impl SolveBudget {
    /// A budget that never interrupts (polls still count).
    pub fn unlimited() -> Self {
        SolveBudget {
            deadline: None,
            cancel: None,
            poll_limit: None,
            polls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A wall-clock budget, armed now: the solve is interrupted at the
    /// first poll after `ms` milliseconds.
    pub fn deadline_ms(ms: u64) -> Self {
        SolveBudget {
            deadline: Some(Instant::now() + Duration::from_millis(ms)),
            ..SolveBudget::unlimited()
        }
    }

    /// A deterministic budget: the first `limit` polls pass, every poll
    /// after that interrupts with [`StopReason::IterationBudget`]. This is
    /// the interruption test suite's cut-point mechanism — no wall clock,
    /// so the same `limit` cuts the same solve at the same place every run.
    pub fn poll_limit(limit: u64) -> Self {
        SolveBudget {
            poll_limit: Some(limit),
            ..SolveBudget::unlimited()
        }
    }

    /// Attaches a cancellation token (any combination of sources is legal).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Whether this budget can ever interrupt.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none() && self.poll_limit.is_none()
    }

    /// Polls made so far (shared across clones).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Wall time left until the deadline (`None` when no deadline is
    /// armed; `Some(ZERO)` once it has passed). Feeds the live
    /// deadline-remaining gauge.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// One cooperative check. Returns `Some(reason)` when the solve must
    /// stop. Check order is deterministic: cancellation, then the poll
    /// limit, then the wall clock — so poll-limited test runs never race
    /// the deadline.
    #[inline]
    pub fn poll(&self) -> Option<StopReason> {
        let made = self.polls.fetch_add(1, Ordering::Relaxed);
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(limit) = self.poll_limit {
            if made >= limit {
                return Some(StopReason::IterationBudget);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineExceeded);
            }
        }
        None
    }
}

/// How far a solve got before it returned (complete or interrupted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Construction iterations fully finished.
    pub construction_iterations: usize,
    /// Tabu iterations executed (applied or terminal).
    pub tabu_iterations: usize,
    /// Tabu moves applied.
    pub tabu_moves: usize,
}

/// Exact bit dump of one live region slot: members in stored order plus
/// every path-dependent float accumulator as raw IEEE-754 bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSlotDump {
    /// Member area ids in the region's stored order.
    pub members: Vec<u32>,
    /// Per-attribute running sums (`RegionAgg::sums`), as `f64::to_bits`.
    pub sums: Vec<u64>,
    /// Per-dissimilarity-channel pairwise accumulators, as `f64::to_bits`.
    pub pairwise: Vec<u64>,
}

/// Slot-exact dump of a [`crate::partition::Partition`]: one entry per
/// region slot in slot order, `None` for tombstoned (freed) slots, so the
/// restored partition has the identical slot layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartitionDump {
    /// Region slots in slot order; `None` marks a freed slot.
    pub slots: Vec<Option<RegionSlotDump>>,
}

/// Mid-tabu loop state: everything the search needs to continue from the
/// exact iteration it was cut at. Objective floats are raw bits; the
/// neighborhood caches are *not* stored — they are representation-only and
/// rebuilt cold on resume without affecting move selection (the move order
/// is a strict total order independent of cache state).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TabuCheckpoint {
    /// Iterations executed so far.
    pub iterations: usize,
    /// Moves applied so far (equals `iterations` at every poll point).
    pub moves: usize,
    /// Consecutive non-improving iterations.
    pub no_improve: usize,
    /// Pre-search objective, as bits.
    pub initial: u64,
    /// Incrementally-tracked current objective, as bits.
    pub current_h: u64,
    /// Best objective seen, as bits.
    pub best_h: u64,
    /// Best assignment seen (`u32::MAX` encodes unassigned in text form).
    pub best_assignment: Vec<Option<u32>>,
    /// Region-slot stride of the expiry table.
    pub tabu_stride: usize,
    /// Dense expiry-table length (`areas * stride`).
    pub tabu_len: usize,
    /// Sparse non-zero expiry stamps as `(index, stamp)` pairs.
    pub tabu_expiry: Vec<(u32, u32)>,
    /// Objective before the tabu phase (reported as `heterogeneity_before`).
    pub heterogeneity_before: u64,
    /// The *working* partition (not the best incumbent) at the cut.
    pub partition: PartitionDump,
}

/// Which solver phase the checkpoint cuts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointPhase {
    /// Cut between construction iterations: `next_iter` is the first
    /// iteration still to run; `best` is the best candidate so far.
    Construction {
        /// First construction iteration still to run.
        next_iter: usize,
        /// Best candidate partition so far (`None` before any finished).
        best: Option<PartitionDump>,
    },
    /// Cut inside (or just before) the tabu phase.
    Tabu(TabuCheckpoint),
}

/// A serializable cut of an interrupted FaCT solve. `resume` continues
/// byte-identically to an uninterrupted run; the `seed`/`areas` fields are
/// integrity checks verified against the resuming instance and config.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The `FactConfig::seed` the solve ran under.
    pub seed: u64,
    /// Number of areas in the instance.
    pub areas: usize,
    /// Phase-specific cut state.
    pub phase: CheckpointPhase,
}

/// Checkpoint text-format header (version bumped on layout changes).
pub const CHECKPOINT_HEADER: &str = "EMPCKPT v1";

fn push_bits_line(out: &mut String, key: &str, bits: &[u64]) {
    out.push_str(key);
    for b in bits {
        out.push(' ');
        out.push_str(&format!("{b:016x}"));
    }
    out.push('\n');
}

fn push_partition(out: &mut String, dump: &PartitionDump) {
    out.push_str(&format!("partition {}\n", dump.slots.len()));
    for slot in &dump.slots {
        match slot {
            None => out.push_str("none\n"),
            Some(region) => {
                out.push_str("members");
                for m in &region.members {
                    out.push_str(&format!(" {m}"));
                }
                out.push('\n');
                push_bits_line(out, "sums", &region.sums);
                push_bits_line(out, "pairwise", &region.pairwise);
            }
        }
    }
}

struct Lines<'a> {
    iter: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> Lines<'a> {
    fn next(&mut self, what: &str) -> Result<&'a str, String> {
        self.line_no += 1;
        self.iter
            .next()
            .ok_or_else(|| format!("checkpoint truncated: expected {what}"))
    }

    fn err(&self, msg: impl std::fmt::Display) -> String {
        format!("checkpoint line {}: {}", self.line_no, msg)
    }
}

fn parse_keyed<'a>(lines: &mut Lines<'a>, key: &str) -> Result<&'a str, String> {
    let line = lines.next(key)?;
    line.strip_prefix(key)
        .map(str::trim_start)
        .ok_or_else(|| lines.err(format!("expected `{key} ...`, got {line:?}")))
}

fn parse_usize(lines: &Lines<'_>, token: &str) -> Result<usize, String> {
    token
        .parse::<usize>()
        .map_err(|e| lines.err(format!("bad integer {token:?}: {e}")))
}

fn parse_bits(lines: &Lines<'_>, field: &str) -> Result<Vec<u64>, String> {
    field
        .split_whitespace()
        .map(|t| {
            u64::from_str_radix(t, 16).map_err(|e| lines.err(format!("bad f64 bits {t:?}: {e}")))
        })
        .collect()
}

fn parse_keyed_usize(lines: &mut Lines<'_>, key: &str) -> Result<usize, String> {
    let field = parse_keyed(lines, key)?;
    parse_usize(lines, field)
}

fn parse_keyed_bits(lines: &mut Lines<'_>, key: &str) -> Result<Vec<u64>, String> {
    let field = parse_keyed(lines, key)?;
    parse_bits(lines, field)
}

fn parse_one_bits(lines: &mut Lines<'_>, key: &str) -> Result<u64, String> {
    let field = parse_keyed(lines, key)?;
    let bits = parse_bits(lines, field)?;
    match bits.as_slice() {
        [one] => Ok(*one),
        other => Err(lines.err(format!("{key}: expected one value, got {}", other.len()))),
    }
}

fn parse_partition(lines: &mut Lines<'_>) -> Result<PartitionDump, String> {
    let n = parse_keyed_usize(lines, "partition")?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines.next("partition slot")?;
        if line == "none" {
            slots.push(None);
            continue;
        }
        let members = line
            .strip_prefix("members")
            .ok_or_else(|| lines.err(format!("expected `members ...` or `none`, got {line:?}")))?
            .split_whitespace()
            .map(|t| {
                t.parse::<u32>()
                    .map_err(|e| lines.err(format!("bad member {t:?}: {e}")))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let sums = parse_keyed_bits(lines, "sums")?;
        let pairwise = parse_keyed_bits(lines, "pairwise")?;
        slots.push(Some(RegionSlotDump {
            members,
            sums,
            pairwise,
        }));
    }
    Ok(PartitionDump { slots })
}

impl Checkpoint {
    /// Serializes the checkpoint to its versioned text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(CHECKPOINT_HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("areas {}\n", self.areas));
        match &self.phase {
            CheckpointPhase::Construction { next_iter, best } => {
                out.push_str("phase construction\n");
                out.push_str(&format!("next_iter {next_iter}\n"));
                match best {
                    None => out.push_str("best none\n"),
                    Some(dump) => {
                        out.push_str("best partition\n");
                        push_partition(&mut out, dump);
                    }
                }
            }
            CheckpointPhase::Tabu(t) => {
                out.push_str("phase tabu\n");
                push_bits_line(&mut out, "het_before", &[t.heterogeneity_before]);
                out.push_str(&format!("iterations {}\n", t.iterations));
                out.push_str(&format!("moves {}\n", t.moves));
                out.push_str(&format!("no_improve {}\n", t.no_improve));
                push_bits_line(&mut out, "initial", &[t.initial]);
                push_bits_line(&mut out, "current_h", &[t.current_h]);
                push_bits_line(&mut out, "best_h", &[t.best_h]);
                out.push_str("best_assignment");
                for a in &t.best_assignment {
                    match a {
                        Some(r) => out.push_str(&format!(" {r}")),
                        None => out.push_str(" -"),
                    }
                }
                out.push('\n');
                out.push_str(&format!("tabu_stride {}\n", t.tabu_stride));
                out.push_str(&format!("tabu_len {}\n", t.tabu_len));
                out.push_str("tabu_expiry");
                for (idx, stamp) in &t.tabu_expiry {
                    out.push_str(&format!(" {idx}:{stamp}"));
                }
                out.push('\n');
                push_partition(&mut out, &t.partition);
            }
        }
        out
    }

    /// Parses the versioned text form back. Errors are human-readable with
    /// a line number; an unknown header version is rejected outright.
    pub fn from_text(text: &str) -> Result<Checkpoint, String> {
        let mut lines = Lines {
            iter: text.lines(),
            line_no: 0,
        };
        let header = lines.next("header")?;
        if header != CHECKPOINT_HEADER {
            return Err(format!(
                "unsupported checkpoint header {header:?} (expected {CHECKPOINT_HEADER:?})"
            ));
        }
        let seed = parse_keyed(&mut lines, "seed")?
            .parse::<u64>()
            .map_err(|e| lines.err(format!("bad seed: {e}")))?;
        let areas = parse_keyed_usize(&mut lines, "areas")?;
        let phase = match parse_keyed(&mut lines, "phase")? {
            "construction" => {
                let next_iter = parse_keyed_usize(&mut lines, "next_iter")?;
                let best = match parse_keyed(&mut lines, "best")? {
                    "none" => None,
                    "partition" => Some(parse_partition(&mut lines)?),
                    other => return Err(lines.err(format!("bad best tag {other:?}"))),
                };
                CheckpointPhase::Construction { next_iter, best }
            }
            "tabu" => {
                let heterogeneity_before = parse_one_bits(&mut lines, "het_before")?;
                let iterations = parse_keyed_usize(&mut lines, "iterations")?;
                let moves = parse_keyed_usize(&mut lines, "moves")?;
                let no_improve = parse_keyed_usize(&mut lines, "no_improve")?;
                let initial = parse_one_bits(&mut lines, "initial")?;
                let current_h = parse_one_bits(&mut lines, "current_h")?;
                let best_h = parse_one_bits(&mut lines, "best_h")?;
                let best_assignment = parse_keyed(&mut lines, "best_assignment")?
                    .split_whitespace()
                    .map(|t| {
                        if t == "-" {
                            Ok(None)
                        } else {
                            t.parse::<u32>()
                                .map(Some)
                                .map_err(|e| lines.err(format!("bad region id {t:?}: {e}")))
                        }
                    })
                    .collect::<Result<Vec<Option<u32>>, String>>()?;
                let tabu_stride = parse_keyed_usize(&mut lines, "tabu_stride")?;
                let tabu_len = parse_keyed_usize(&mut lines, "tabu_len")?;
                let tabu_expiry = parse_keyed(&mut lines, "tabu_expiry")?
                    .split_whitespace()
                    .map(|pair| {
                        let (idx, stamp) = pair
                            .split_once(':')
                            .ok_or_else(|| lines.err(format!("bad expiry pair {pair:?}")))?;
                        Ok((
                            idx.parse::<u32>()
                                .map_err(|e| lines.err(format!("bad expiry index: {e}")))?,
                            stamp
                                .parse::<u32>()
                                .map_err(|e| lines.err(format!("bad expiry stamp: {e}")))?,
                        ))
                    })
                    .collect::<Result<Vec<(u32, u32)>, String>>()?;
                let partition = parse_partition(&mut lines)?;
                CheckpointPhase::Tabu(TabuCheckpoint {
                    iterations,
                    moves,
                    no_improve,
                    initial,
                    current_h,
                    best_h,
                    best_assignment,
                    tabu_stride,
                    tabu_len,
                    tabu_expiry,
                    heterogeneity_before,
                    partition,
                })
            }
            other => return Err(lines.err(format!("unknown phase {other:?}"))),
        };
        Ok(Checkpoint { seed, areas, phase })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let budget = SolveBudget::unlimited();
        for _ in 0..1000 {
            assert_eq!(budget.poll(), None);
        }
        assert_eq!(budget.polls(), 1000);
        assert!(budget.is_unlimited());
    }

    #[test]
    fn poll_limit_interrupts_deterministically() {
        let budget = SolveBudget::poll_limit(3);
        assert_eq!(budget.poll(), None);
        assert_eq!(budget.poll(), None);
        assert_eq!(budget.poll(), None);
        assert_eq!(budget.poll(), Some(StopReason::IterationBudget));
        assert_eq!(budget.poll(), Some(StopReason::IterationBudget));
    }

    #[test]
    fn zero_deadline_stops_at_first_poll() {
        let budget = SolveBudget::deadline_ms(0);
        assert_eq!(budget.poll(), Some(StopReason::DeadlineExceeded));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(token.clone());
        let clone = budget.clone();
        assert_eq!(clone.poll(), None);
        token.cancel();
        assert_eq!(budget.poll(), Some(StopReason::Cancelled));
        assert_eq!(clone.poll(), Some(StopReason::Cancelled));
        // Clones share the poll counter too.
        assert_eq!(budget.polls(), 3);
    }

    #[test]
    fn stop_reason_codes_and_names_round_trip() {
        for reason in [
            StopReason::Completed,
            StopReason::DeadlineExceeded,
            StopReason::Cancelled,
            StopReason::IterationBudget,
            StopReason::NodeBudget,
        ] {
            assert_eq!(StopReason::from_name(reason.name()), Some(reason));
        }
        assert_eq!(StopReason::Completed.code(), 0);
        assert_eq!(StopReason::from_name("nope"), None);
    }

    #[test]
    fn stop_reason_all_is_exhaustive_with_unique_stable_names() {
        // Compile-time exhaustiveness: adding a variant breaks this match,
        // forcing `ALL` (and the live stop-reason gauge) to be updated.
        let count = |r: StopReason| match r {
            StopReason::Completed
            | StopReason::DeadlineExceeded
            | StopReason::Cancelled
            | StopReason::IterationBudget
            | StopReason::NodeBudget => StopReason::ALL.len(),
        };
        assert_eq!(count(StopReason::Completed), 5);

        let mut seen = std::collections::BTreeSet::new();
        for (i, reason) in StopReason::ALL.into_iter().enumerate() {
            assert_eq!(reason.code() as usize, i, "ALL must be in code order");
            assert_eq!(
                StopReason::from_name(reason.name()),
                Some(reason),
                "name round-trip for {reason:?}"
            );
            assert!(
                seen.insert(reason.name()),
                "duplicate name {}",
                reason.name()
            );
        }
        assert_eq!(StopReason::from_name(""), None);
        assert_eq!(StopReason::from_name("COMPLETED"), None);
    }

    #[test]
    fn deadline_remaining_reports_and_saturates() {
        assert_eq!(SolveBudget::unlimited().deadline_remaining(), None);
        let far = SolveBudget::deadline_ms(60_000);
        let remaining = far.deadline_remaining().expect("deadline armed");
        assert!(remaining <= Duration::from_millis(60_000));
        assert!(remaining > Duration::from_millis(30_000));
        let past = SolveBudget::deadline_ms(0);
        assert_eq!(past.deadline_remaining(), Some(Duration::ZERO));
    }

    fn sample_dump() -> PartitionDump {
        PartitionDump {
            slots: vec![
                Some(RegionSlotDump {
                    members: vec![3, 1, 2],
                    sums: vec![1.5f64.to_bits(), (-0.0f64).to_bits()],
                    pairwise: vec![0.1f64.to_bits()],
                }),
                None,
                Some(RegionSlotDump {
                    members: vec![0],
                    sums: vec![7.25f64.to_bits(), 0.0f64.to_bits()],
                    pairwise: vec![0u64],
                }),
            ],
        }
    }

    #[test]
    fn construction_checkpoint_round_trips() {
        for best in [None, Some(sample_dump())] {
            let ckpt = Checkpoint {
                seed: u64::MAX - 7,
                areas: 4,
                phase: CheckpointPhase::Construction { next_iter: 2, best },
            };
            let text = ckpt.to_text();
            assert_eq!(Checkpoint::from_text(&text).unwrap(), ckpt);
        }
    }

    #[test]
    fn tabu_checkpoint_round_trips_bit_exactly() {
        let ckpt = Checkpoint {
            seed: 0xE5_1D,
            areas: 4,
            phase: CheckpointPhase::Tabu(TabuCheckpoint {
                iterations: 17,
                moves: 17,
                no_improve: 3,
                initial: 123.456f64.to_bits(),
                current_h: (123.456f64 - 1e-13).to_bits(),
                best_h: f64::NAN.to_bits(),
                best_assignment: vec![Some(0), None, Some(2), Some(0)],
                tabu_stride: 3,
                tabu_len: 12,
                tabu_expiry: vec![(1, 19), (7, 22)],
                heterogeneity_before: 200.0f64.to_bits(),
                partition: sample_dump(),
            }),
        };
        let text = ckpt.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back, ckpt);
        // The text form survives a second trip (canonical encoding).
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_context() {
        assert!(Checkpoint::from_text("").unwrap_err().contains("truncated"));
        assert!(Checkpoint::from_text("EMPCKPT v9\nseed 1")
            .unwrap_err()
            .contains("unsupported"));
        let err = Checkpoint::from_text("EMPCKPT v1\nseed 1\nareas 4\nphase tabu\nhet_before zz")
            .unwrap_err();
        assert!(err.contains("line 5"), "{err}");
    }
}
