//! Enriched user-defined constraints: `(f, s, l, u)` tuples over SQL-style
//! aggregates with range comparison operators (paper §III, Definition III.1).

use crate::error::EmpError;
use std::fmt;

/// The SQL-inspired aggregate families supported by EMP.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Aggregate {
    /// Extrema aggregate: minimum attribute value in the region.
    Min,
    /// Extrema aggregate: maximum attribute value in the region.
    Max,
    /// Centrality aggregate: mean attribute value in the region.
    Avg,
    /// Counting aggregate: attribute sum over the region.
    Sum,
    /// Counting aggregate: number of areas in the region.
    Count,
}

impl Aggregate {
    /// The constraint family this aggregate belongs to (paper §I).
    pub fn family(self) -> Family {
        match self {
            Aggregate::Min | Aggregate::Max => Family::Extrema,
            Aggregate::Avg => Family::Centrality,
            Aggregate::Sum | Aggregate::Count => Family::Counting,
        }
    }

    /// Whether adding an area changes the aggregate monotonically
    /// (true for SUM and COUNT over non-negative attributes).
    pub fn is_monotonic(self) -> bool {
        matches!(self, Aggregate::Sum | Aggregate::Count)
    }

    /// SQL keyword for the aggregate.
    pub fn keyword(self) -> &'static str {
        match self {
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
            Aggregate::Avg => "AVG",
            Aggregate::Sum => "SUM",
            Aggregate::Count => "COUNT",
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The three constraint families from the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// MIN / MAX.
    Extrema,
    /// AVG.
    Centrality,
    /// SUM / COUNT.
    Counting,
}

/// A user-defined constraint `f(s) ∈ [low, high]`.
///
/// `low = -∞` gives an upper-bound-only constraint, `high = ∞` a
/// lower-bound-only one, matching the paper's range comparison operator.
#[derive(Clone, PartialEq, Debug)]
pub struct Constraint {
    /// Aggregate function.
    pub aggregate: Aggregate,
    /// Spatially extensive attribute name. Ignored for COUNT (which counts
    /// areas) but kept for uniformity with the paper's 4-tuple.
    pub attribute: String,
    /// Lower bound (inclusive), possibly `-∞`.
    pub low: f64,
    /// Upper bound (inclusive), possibly `∞`.
    pub high: f64,
}

impl Constraint {
    /// Creates a constraint, validating the range.
    pub fn new(
        aggregate: Aggregate,
        attribute: impl Into<String>,
        low: f64,
        high: f64,
    ) -> Result<Self, EmpError> {
        if low.is_nan()
            || high.is_nan()
            || low > high
            || (low == f64::NEG_INFINITY && high == f64::NEG_INFINITY)
            || (low == f64::INFINITY)
        {
            return Err(EmpError::InvalidRange { low, high });
        }
        Ok(Constraint {
            aggregate,
            attribute: attribute.into(),
            low,
            high,
        })
    }

    /// `MIN(attr) ∈ [low, high]`.
    pub fn min(attr: impl Into<String>, low: f64, high: f64) -> Result<Self, EmpError> {
        Self::new(Aggregate::Min, attr, low, high)
    }

    /// `MAX(attr) ∈ [low, high]`.
    pub fn max(attr: impl Into<String>, low: f64, high: f64) -> Result<Self, EmpError> {
        Self::new(Aggregate::Max, attr, low, high)
    }

    /// `AVG(attr) ∈ [low, high]`.
    pub fn avg(attr: impl Into<String>, low: f64, high: f64) -> Result<Self, EmpError> {
        Self::new(Aggregate::Avg, attr, low, high)
    }

    /// `SUM(attr) ∈ [low, high]`.
    pub fn sum(attr: impl Into<String>, low: f64, high: f64) -> Result<Self, EmpError> {
        Self::new(Aggregate::Sum, attr, low, high)
    }

    /// `COUNT(*) ∈ [low, high]`.
    pub fn count(low: f64, high: f64) -> Result<Self, EmpError> {
        Self::new(Aggregate::Count, "*", low, high)
    }

    /// Whether `v` satisfies the range.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.low <= v && v <= self.high
    }

    /// Whether the range has a finite lower bound.
    #[inline]
    pub fn has_lower(&self) -> bool {
        self.low != f64::NEG_INFINITY
    }

    /// Whether the range has a finite upper bound.
    #[inline]
    pub fn has_upper(&self) -> bool {
        self.high != f64::INFINITY
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = if self.aggregate == Aggregate::Count {
            "*"
        } else {
            &self.attribute
        };
        match (self.has_lower(), self.has_upper()) {
            (true, true) => write!(
                f,
                "{}({}) IN [{}, {}]",
                self.aggregate, target, self.low, self.high
            ),
            (true, false) => write!(f, "{}({}) >= {}", self.aggregate, target, self.low),
            (false, true) => write!(f, "{}({}) <= {}", self.aggregate, target, self.high),
            (false, false) => write!(f, "{}({}) unbounded", self.aggregate, target),
        }
    }
}

/// An ordered set of constraints forming an EMP query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty constraint set (every region is trivially feasible).
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Builds a set from constraints.
    pub fn from_constraints(constraints: Vec<Constraint>) -> Self {
        ConstraintSet { constraints }
    }

    /// Adds a constraint (builder style).
    pub fn with(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }

    /// Adds a constraint in place.
    pub fn push(&mut self, c: Constraint) {
        self.constraints.push(c);
    }

    /// The constraints, in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Constraints of a given aggregate.
    pub fn of(&self, aggregate: Aggregate) -> impl Iterator<Item = &Constraint> {
        self.constraints
            .iter()
            .filter(move |c| c.aggregate == aggregate)
    }

    /// Whether any constraint uses this aggregate.
    pub fn has(&self, aggregate: Aggregate) -> bool {
        self.of(aggregate).next().is_some()
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_and_monotonicity() {
        assert_eq!(Aggregate::Min.family(), Family::Extrema);
        assert_eq!(Aggregate::Avg.family(), Family::Centrality);
        assert_eq!(Aggregate::Count.family(), Family::Counting);
        assert!(Aggregate::Sum.is_monotonic());
        assert!(!Aggregate::Avg.is_monotonic());
        assert!(!Aggregate::Max.is_monotonic());
    }

    #[test]
    fn range_validation() {
        assert!(Constraint::min("A", 5.0, 1.0).is_err());
        assert!(Constraint::min("A", f64::NAN, 1.0).is_err());
        assert!(Constraint::min("A", f64::NEG_INFINITY, f64::INFINITY).is_ok());
        assert!(Constraint::min("A", 1.0, 1.0).is_ok());
    }

    #[test]
    fn contains_and_bounds() {
        let c = Constraint::avg("E", 1500.0, 3500.0).unwrap();
        assert!(c.contains(1500.0));
        assert!(c.contains(3500.0));
        assert!(!c.contains(1499.9));
        assert!(c.has_lower() && c.has_upper());
        let open = Constraint::sum("P", 20000.0, f64::INFINITY).unwrap();
        assert!(open.has_lower() && !open.has_upper());
        assert!(open.contains(1e12));
    }

    #[test]
    fn display_forms() {
        let c = Constraint::sum("TOTALPOP", 20000.0, f64::INFINITY).unwrap();
        assert_eq!(c.to_string(), "SUM(TOTALPOP) >= 20000");
        let c = Constraint::min("POP16UP", f64::NEG_INFINITY, 3000.0).unwrap();
        assert_eq!(c.to_string(), "MIN(POP16UP) <= 3000");
        let c = Constraint::avg("EMPLOYED", 1500.0, 3500.0).unwrap();
        assert_eq!(c.to_string(), "AVG(EMPLOYED) IN [1500, 3500]");
        let c = Constraint::count(2.0, 10.0).unwrap();
        assert_eq!(c.to_string(), "COUNT(*) IN [2, 10]");
    }

    #[test]
    fn set_queries() {
        let set = ConstraintSet::new()
            .with(Constraint::min("A", 0.0, 5.0).unwrap())
            .with(Constraint::sum("B", 10.0, f64::INFINITY).unwrap());
        assert_eq!(set.len(), 2);
        assert!(set.has(Aggregate::Min));
        assert!(!set.has(Aggregate::Avg));
        assert_eq!(set.of(Aggregate::Sum).count(), 1);
        assert_eq!(set.to_string(), "MIN(A) IN [0, 5] AND SUM(B) >= 10");
    }
}
