//! A small parser for SQL-inspired constraint expressions.
//!
//! EMP's constraints are "inspired by the standard SQL aggregate functions";
//! this module lets queries be written the way the paper's examples read:
//!
//! ```text
//! SUM(TOTALPOP) >= 200000 AND AVG(INCOME) IN [3000, 5000] AND SUM(TRANSIT) >= 10000
//! ```
//!
//! Supported forms (case-insensitive keywords):
//!
//! * `AGG(attr) >= x`, `AGG(attr) <= x`
//! * `AGG(attr) IN [x, y]`, `AGG(attr) BETWEEN x AND y`
//! * `x <= AGG(attr) <= y`
//! * conjunctions with `AND` or `;`
//!
//! `COUNT(*)` and `COUNT(attr)` are both accepted.

use crate::constraint::{Aggregate, Constraint, ConstraintSet};
use crate::error::EmpError;

/// Parses a conjunction of constraint expressions.
pub fn parse_constraints(input: &str) -> Result<ConstraintSet, EmpError> {
    let mut set = ConstraintSet::new();
    for part in split_conjunction(input) {
        let trimmed = part.trim();
        if trimmed.is_empty() {
            continue;
        }
        set.push(parse_constraint(trimmed)?);
    }
    Ok(set)
}

/// Parses a single constraint expression.
pub fn parse_constraint(input: &str) -> Result<Constraint, EmpError> {
    let mut t = Tokenizer::new(input);
    let tokens = t.tokenize()?;
    ParserState { tokens, pos: 0 }.parse()
}

/// Splits on `AND` (word boundaries, case-insensitive) and `;`, but not
/// inside brackets (so `BETWEEN x AND y` survives).
fn split_conjunction(input: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    // ASCII uppercasing preserves byte offsets, so `upper[i..]` is valid
    // whenever `i` is a char boundary of `input` (guaranteed by
    // `char_indices`).
    let upper = input.to_ascii_uppercase();
    let bytes = upper.as_bytes();
    let mut between_pending = false;
    let mut chars = input.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '[' | '(' => depth += 1,
            ']' | ')' => depth -= 1,
            ';' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        if depth == 0 && upper[i..].starts_with("BETWEEN") && word_boundary(bytes, i, 7) {
            between_pending = true;
        }
        if depth == 0 && upper[i..].starts_with("AND") && word_boundary(bytes, i, 3) {
            if between_pending {
                // The AND belongs to a BETWEEN ... AND ... range.
                between_pending = false;
            } else {
                parts.push(std::mem::take(&mut cur));
                // Consume the 'N' and 'D' (ASCII, one char each).
                chars.next();
                chars.next();
                continue;
            }
        }
        cur.push(c);
    }
    parts.push(cur);
    parts
}

fn word_boundary(bytes: &[u8], start: usize, len: usize) -> bool {
    let before_ok = start == 0 || !bytes[start - 1].is_ascii_alphanumeric();
    let after = start + len;
    let after_ok = after >= bytes.len() || !bytes[after].is_ascii_alphanumeric();
    before_ok && after_ok
}

#[derive(Clone, PartialEq, Debug)]
enum Token {
    Ident(String),
    Number(f64),
    Symbol(char), // ( ) [ ] , *
    Le,           // <=
    Ge,           // >=
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Self {
        Tokenizer { input, pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> EmpError {
        EmpError::ConstraintParse {
            message: format!("{} (at byte {})", message.into(), self.pos),
        }
    }

    fn tokenize(&mut self) -> Result<Vec<Token>, EmpError> {
        let bytes = self.input.as_bytes();
        let mut out = Vec::new();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'(' | b')' | b'[' | b']' | b',' | b'*' => {
                    out.push(Token::Symbol(b as char));
                    self.pos += 1;
                }
                b'<' | b'>' => {
                    let op = b;
                    self.pos += 1;
                    if self.pos < bytes.len() && bytes[self.pos] == b'=' {
                        self.pos += 1;
                    }
                    // Treat `<` as `<=`: the paper's ranges are inclusive.
                    out.push(if op == b'<' { Token::Le } else { Token::Ge });
                }
                b'-' | b'+' | b'0'..=b'9' | b'.' => {
                    // Signed infinity: `-INF` / `+INFINITY`.
                    if (b == b'-' || b == b'+')
                        && bytes
                            .get(self.pos + 1)
                            .is_some_and(|nb| nb.is_ascii_alphabetic())
                    {
                        let sign = if b == b'-' { -1.0 } else { 1.0 };
                        let start = self.pos + 1;
                        let mut end = start;
                        while end < bytes.len() && bytes[end].is_ascii_alphabetic() {
                            end += 1;
                        }
                        let word = self.input[start..end].to_ascii_uppercase();
                        if word == "INF" || word == "INFINITY" {
                            self.pos = end;
                            out.push(Token::Number(sign * f64::INFINITY));
                            continue;
                        }
                        return Err(self.err(format!("bad signed literal '{word}'")));
                    }
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < bytes.len()
                        && (bytes[self.pos].is_ascii_digit()
                            || matches!(bytes[self.pos], b'.' | b'e' | b'E' | b'_')
                            || ((bytes[self.pos] == b'+' || bytes[self.pos] == b'-')
                                && matches!(bytes[self.pos - 1], b'e' | b'E')))
                    {
                        self.pos += 1;
                    }
                    let text: String = self.input[start..self.pos].replace('_', "");
                    // Allow k/K/m/M magnitude suffixes (the paper writes "20k").
                    let (text, mult) =
                        if self.pos < bytes.len() && matches!(bytes[self.pos], b'k' | b'K') {
                            self.pos += 1;
                            (text, 1_000.0)
                        } else if self.pos < bytes.len() && matches!(bytes[self.pos], b'm' | b'M') {
                            self.pos += 1;
                            (text, 1_000_000.0)
                        } else {
                            (text, 1.0)
                        };
                    let v: f64 = text
                        .parse()
                        .map_err(|_| self.err(format!("bad number '{text}'")))?;
                    out.push(Token::Number(v * mult));
                }
                _ if b.is_ascii_alphabetic() || b == b'_' => {
                    let start = self.pos;
                    while self.pos < bytes.len()
                        && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                    {
                        self.pos += 1;
                    }
                    let word = &self.input[start..self.pos];
                    match word.to_ascii_uppercase().as_str() {
                        "INF" | "INFINITY" => out.push(Token::Number(f64::INFINITY)),
                        _ => out.push(Token::Ident(word.to_string())),
                    }
                }
                _ => return Err(self.err(format!("unexpected character '{}'", b as char))),
            }
        }
        Ok(out)
    }
}

struct ParserState {
    tokens: Vec<Token>,
    pos: usize,
}

impl ParserState {
    fn err(&self, message: impl Into<String>) -> EmpError {
        EmpError::ConstraintParse {
            message: format!("{} (token {})", message.into(), self.pos),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, ch: char) -> Result<(), EmpError> {
        match self.next() {
            Some(Token::Symbol(c)) if c == ch => Ok(()),
            other => Err(self.err(format!("expected '{ch}', got {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, EmpError> {
        match self.next() {
            Some(Token::Number(v)) => Ok(v),
            // Unary minus on INF etc. is handled in the tokenizer via the
            // leading '-' branch, so any remaining ident here is an error.
            other => Err(self.err(format!("expected number, got {other:?}"))),
        }
    }

    /// `AGG ( attr | * )`
    fn aggregate_call(&mut self) -> Result<(Aggregate, String), EmpError> {
        let name = match self.next() {
            Some(Token::Ident(s)) => s,
            other => return Err(self.err(format!("expected aggregate name, got {other:?}"))),
        };
        let aggregate = match name.to_ascii_uppercase().as_str() {
            "MIN" => Aggregate::Min,
            "MAX" => Aggregate::Max,
            "AVG" | "MEAN" => Aggregate::Avg,
            "SUM" => Aggregate::Sum,
            "COUNT" => Aggregate::Count,
            other => return Err(self.err(format!("unknown aggregate '{other}'"))),
        };
        self.expect_symbol('(')?;
        let attr = match self.next() {
            Some(Token::Ident(s)) => s,
            Some(Token::Symbol('*')) => "*".to_string(),
            other => return Err(self.err(format!("expected attribute, got {other:?}"))),
        };
        self.expect_symbol(')')?;
        Ok((aggregate, attr))
    }

    fn parse(&mut self) -> Result<Constraint, EmpError> {
        // Form: x <= AGG(attr) <= y
        if matches!(self.peek(), Some(Token::Number(_))) {
            let low = self.number()?;
            match self.next() {
                Some(Token::Le) => {}
                other => return Err(self.err(format!("expected '<=', got {other:?}"))),
            }
            let (aggregate, attr) = self.aggregate_call()?;
            match self.next() {
                Some(Token::Le) => {}
                other => return Err(self.err(format!("expected '<=', got {other:?}"))),
            }
            let high = self.number()?;
            self.end()?;
            return Constraint::new(aggregate, attr, low, high);
        }

        let (aggregate, attr) = self.aggregate_call()?;
        match self.next() {
            Some(Token::Ge) => {
                let low = self.number()?;
                self.end()?;
                Constraint::new(aggregate, attr, low, f64::INFINITY)
            }
            Some(Token::Le) => {
                let high = self.number()?;
                self.end()?;
                Constraint::new(aggregate, attr, f64::NEG_INFINITY, high)
            }
            Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("in") => {
                self.expect_symbol('[')?;
                let low = self.signed_number()?;
                self.expect_symbol(',')?;
                let high = self.signed_number()?;
                self.expect_symbol(']')?;
                self.end()?;
                Constraint::new(aggregate, attr, low, high)
            }
            Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("between") => {
                let low = self.signed_number()?;
                match self.next() {
                    Some(Token::Ident(a)) if a.eq_ignore_ascii_case("and") => {}
                    other => return Err(self.err(format!("expected AND, got {other:?}"))),
                }
                let high = self.signed_number()?;
                self.end()?;
                Constraint::new(aggregate, attr, low, high)
            }
            other => Err(self.err(format!("expected comparison, got {other:?}"))),
        }
    }

    fn signed_number(&mut self) -> Result<f64, EmpError> {
        self.number()
    }

    fn end(&mut self) -> Result<(), EmpError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.err("trailing tokens"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_bounds() {
        let c = parse_constraint("SUM(TOTALPOP) >= 20000").unwrap();
        assert_eq!(c.aggregate, Aggregate::Sum);
        assert_eq!(c.attribute, "TOTALPOP");
        assert_eq!(c.low, 20000.0);
        assert_eq!(c.high, f64::INFINITY);

        let c = parse_constraint("MIN(POP16UP) <= 3000").unwrap();
        assert_eq!(c.aggregate, Aggregate::Min);
        assert_eq!(c.low, f64::NEG_INFINITY);
        assert_eq!(c.high, 3000.0);
    }

    #[test]
    fn parses_ranges() {
        let c = parse_constraint("AVG(EMPLOYED) IN [1500, 3500]").unwrap();
        assert_eq!((c.low, c.high), (1500.0, 3500.0));
        let c = parse_constraint("COUNT(*) BETWEEN 2 AND 10").unwrap();
        assert_eq!(c.aggregate, Aggregate::Count);
        assert_eq!((c.low, c.high), (2.0, 10.0));
        let c = parse_constraint("1500 <= AVG(EMPLOYED) <= 3500").unwrap();
        assert_eq!((c.low, c.high), (1500.0, 3500.0));
    }

    #[test]
    fn parses_magnitude_suffixes() {
        let c = parse_constraint("SUM(TOTALPOP) >= 20k").unwrap();
        assert_eq!(c.low, 20000.0);
        let c = parse_constraint("SUM(TOTALPOP) <= 1.5M").unwrap();
        assert_eq!(c.high, 1_500_000.0);
    }

    #[test]
    fn parses_conjunctions() {
        let set = parse_constraints(
            "MIN(POP16UP) <= 3000 AND AVG(EMPLOYED) IN [1500,3500]; SUM(TOTALPOP) >= 20k",
        )
        .unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.has(Aggregate::Min));
        assert!(set.has(Aggregate::Avg));
        assert!(set.has(Aggregate::Sum));
    }

    #[test]
    fn between_and_inside_conjunction() {
        let set = parse_constraints("COUNT(*) BETWEEN 2 AND 12 AND SUM(POP) >= 100").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.constraints()[0].high, 12.0);
    }

    #[test]
    fn strict_operators_treated_as_inclusive() {
        let c = parse_constraint("SUM(P) > 5").unwrap();
        assert_eq!(c.low, 5.0);
        let c = parse_constraint("SUM(P) < 5").unwrap();
        assert_eq!(c.high, 5.0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_constraint("FOO(X) >= 1").is_err());
        assert!(parse_constraint("SUM(X) >=").is_err());
        assert!(parse_constraint("SUM X >= 1").is_err());
        assert!(parse_constraint("SUM(X) IN [5, 1]").is_err()); // low > high
        assert!(parse_constraint("SUM(X) >= 1 garbage").is_err());
        assert!(parse_constraint("").is_err());
    }

    #[test]
    fn infinity_keyword() {
        let c = parse_constraint("SUM(X) IN [5, INF]").unwrap();
        assert_eq!(c.high, f64::INFINITY);
    }

    #[test]
    fn count_star_and_named() {
        assert!(parse_constraint("COUNT(*) <= 4").is_ok());
        assert!(parse_constraint("COUNT(AREAS) <= 4").is_ok());
    }
}
