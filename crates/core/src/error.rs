//! Error type for the EMP core.

use std::fmt;

/// Errors produced while building instances, constraints, or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum EmpError {
    /// An attribute with this name already exists.
    DuplicateAttribute {
        /// Attribute name.
        name: String,
    },
    /// A column's length does not match the table's row count.
    ColumnLengthMismatch {
        /// Attribute name.
        name: String,
        /// Expected row count.
        expected: usize,
        /// Supplied length.
        actual: usize,
    },
    /// A non-finite or negative attribute value.
    InvalidAttributeValue {
        /// Attribute name.
        name: String,
        /// Offending row.
        row: usize,
        /// Offending value.
        value: f64,
    },
    /// A constraint references an attribute that is not in the table.
    UnknownAttribute {
        /// Attribute name.
        name: String,
    },
    /// A constraint range has `low > high` or is fully unbounded on a side
    /// that the aggregate requires.
    InvalidRange {
        /// Lower bound.
        low: f64,
        /// Upper bound.
        high: f64,
    },
    /// The constraint expression failed to parse.
    ConstraintParse {
        /// Human-readable description.
        message: String,
    },
    /// The graph's vertex count does not match the attribute table's rows.
    SizeMismatch {
        /// Vertices in the contiguity graph.
        graph: usize,
        /// Rows in the attribute table.
        attrs: usize,
    },
    /// The feasibility phase proved no solution exists.
    Infeasible {
        /// Why each failing constraint cannot be satisfied.
        reasons: Vec<String>,
    },
    /// A checkpoint failed to parse, or does not match the instance and
    /// config it is being resumed against.
    BadCheckpoint {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for EmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmpError::DuplicateAttribute { name } => write!(f, "duplicate attribute '{name}'"),
            EmpError::ColumnLengthMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "column '{name}' has {actual} values, expected {expected}"
            ),
            EmpError::InvalidAttributeValue { name, row, value } => write!(
                f,
                "attribute '{name}' row {row}: value {value} must be finite and >= 0"
            ),
            EmpError::UnknownAttribute { name } => write!(f, "unknown attribute '{name}'"),
            EmpError::InvalidRange { low, high } => {
                write!(f, "invalid range [{low}, {high}]")
            }
            EmpError::ConstraintParse { message } => {
                write!(f, "constraint parse error: {message}")
            }
            EmpError::SizeMismatch { graph, attrs } => write!(
                f,
                "graph has {graph} vertices but attribute table has {attrs} rows"
            ),
            EmpError::Infeasible { reasons } => {
                write!(f, "instance is infeasible: {}", reasons.join("; "))
            }
            EmpError::BadCheckpoint { message } => {
                write!(f, "bad checkpoint: {message}")
            }
        }
    }
}

impl std::error::Error for EmpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EmpError::UnknownAttribute { name: "X".into() }
            .to_string()
            .contains("unknown attribute"));
        assert!(EmpError::InvalidRange {
            low: 5.0,
            high: 1.0
        }
        .to_string()
        .contains("[5, 1]"));
        let e = EmpError::Infeasible {
            reasons: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "instance is infeasible: a; b");
    }
}
