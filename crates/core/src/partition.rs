//! The working partition: mutable assignment of areas to regions with
//! incrementally-maintained aggregates and heterogeneity statistics.

use crate::control::{PartitionDump, RegionSlotDump};
use crate::engine::{ConstraintEngine, RegionAgg};
use crate::heterogeneity::DissimStat;
use emp_graph::scratch::SubsetScratch;
use emp_graph::subgraph;

/// Region identifier within a [`Partition`]. Region slots are reused via
/// tombstones, so ids are stable while a region lives.
pub type RegionId = u32;

/// A live region: its member areas plus cached aggregates.
#[derive(Clone, Debug)]
pub struct RegionData {
    /// Member areas (unsorted).
    pub members: Vec<u32>,
    /// Incremental constraint aggregates.
    pub agg: RegionAgg,
    /// Incremental objective statistics, one per objective channel (the
    /// default objective has a single dissimilarity channel).
    pub dissim: Vec<DissimStat>,
}

/// A (partial) partition of the areas into regions, with unassigned areas
/// (the paper's `U_0`) represented by `None` in the assignment.
#[derive(Clone, Debug)]
pub struct Partition {
    assignment: Vec<Option<RegionId>>,
    regions: Vec<Option<RegionData>>,
    /// Tombstone slots available for reuse, popped LIFO by
    /// [`Partition::create_region`] (O(1) instead of a linear slot scan).
    free_slots: Vec<RegionId>,
    live: usize,
    /// Count of `None` entries in `assignment`, maintained incrementally so
    /// `unassigned_count` is O(1) instead of an O(n) scan.
    unassigned_live: usize,
}

impl Partition {
    /// A partition of `n` areas with everything unassigned.
    pub fn new(n: usize) -> Self {
        Partition {
            assignment: vec![None; n],
            regions: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
            unassigned_live: n,
        }
    }

    /// Number of areas.
    #[inline]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the partition covers no areas.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Number of live regions `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.live
    }

    /// The region an area belongs to, if any.
    #[inline]
    pub fn region_of(&self, area: u32) -> Option<RegionId> {
        self.assignment[area as usize]
    }

    /// Whether an area is unassigned.
    #[inline]
    pub fn is_unassigned(&self, area: u32) -> bool {
        self.assignment[area as usize].is_none()
    }

    /// Borrows a live region.
    #[inline]
    pub fn region(&self, id: RegionId) -> &RegionData {
        self.regions[id as usize].as_ref().expect("live region")
    }

    /// Whether a region id refers to a live region.
    #[inline]
    pub fn is_live(&self, id: RegionId) -> bool {
        (id as usize) < self.regions.len() && self.regions[id as usize].is_some()
    }

    /// Iterates live region ids.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| i as RegionId))
    }

    /// All unassigned areas, ascending.
    pub fn unassigned(&self) -> Vec<u32> {
        self.unassigned_iter().collect()
    }

    /// Iterates unassigned areas, ascending, without allocating.
    pub fn unassigned_iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i as u32))
    }

    /// Number of unassigned areas (the paper's `|U_0|`), O(1).
    #[inline]
    pub fn unassigned_count(&self) -> usize {
        self.unassigned_live
    }

    /// The weighted objective score: for the default objective this is the
    /// per-region pairwise dissimilarity sum (unordered-pair convention;
    /// multiply by 2 for the paper's Eq. 1 value). Requires the per-channel
    /// weights, so it takes the engine.
    pub fn heterogeneity_with(&self, engine: &ConstraintEngine<'_>) -> f64 {
        let channels = engine.instance().objective().channels();
        self.region_ids()
            .map(|id| {
                self.region(id)
                    .dissim
                    .iter()
                    .zip(channels)
                    .map(|(stat, ch)| ch.weight * stat.pairwise())
                    .sum::<f64>()
            })
            .sum()
    }

    /// Objective delta of moving `area` from its region to `to` (without
    /// mutating anything).
    pub fn move_objective_delta(
        &self,
        engine: &ConstraintEngine<'_>,
        area: u32,
        from: RegionId,
        to: RegionId,
    ) -> f64 {
        let channels = engine.instance().objective().channels();
        let mut delta = 0.0;
        for (ci, ch) in channels.iter().enumerate() {
            let v = ch.values[area as usize];
            delta += ch.weight
                * (self.region(from).dissim[ci].remove_delta(v)
                    + self.region(to).dissim[ci].insert_delta(v));
        }
        delta
    }

    /// Objective delta of adding an (unassigned) area to region `to`.
    pub fn insert_objective_delta(
        &self,
        engine: &ConstraintEngine<'_>,
        to: RegionId,
        area: u32,
    ) -> f64 {
        engine
            .instance()
            .objective()
            .channels()
            .iter()
            .enumerate()
            .map(|(ci, ch)| {
                ch.weight * self.region(to).dissim[ci].insert_delta(ch.values[area as usize])
            })
            .sum()
    }

    /// Creates a region from unassigned areas, returning its id.
    ///
    /// Panics (debug) if any area is already assigned.
    pub fn create_region(&mut self, engine: &ConstraintEngine<'_>, areas: &[u32]) -> RegionId {
        debug_assert!(!areas.is_empty());
        let dissim: Vec<DissimStat> = engine
            .instance()
            .objective()
            .channels()
            .iter()
            .map(|ch| {
                let vals: Vec<f64> = areas.iter().map(|&a| ch.values[a as usize]).collect();
                DissimStat::from_values(&vals)
            })
            .collect();
        let data = RegionData {
            members: areas.to_vec(),
            agg: engine.compute_fresh(areas),
            dissim,
        };
        // Reuse a tombstone slot if present (LIFO free list, O(1)).
        let id = match self.free_slots.pop() {
            Some(slot) => {
                debug_assert!(self.regions[slot as usize].is_none(), "free slot is live");
                self.regions[slot as usize] = Some(data);
                slot
            }
            None => {
                self.regions.push(Some(data));
                (self.regions.len() - 1) as RegionId
            }
        };
        for &a in areas {
            debug_assert!(
                self.assignment[a as usize].is_none(),
                "area {a} already assigned"
            );
            self.assignment[a as usize] = Some(id);
        }
        self.unassigned_live -= areas.len();
        self.live += 1;
        id
    }

    /// Adds an unassigned area to a live region.
    pub fn add_to_region(&mut self, engine: &ConstraintEngine<'_>, id: RegionId, area: u32) {
        debug_assert!(self.assignment[area as usize].is_none());
        let channels = engine.instance().objective().channels();
        let region = self.regions[id as usize].as_mut().expect("live region");
        region.members.push(area);
        engine.add_area(&mut region.agg, area);
        for (stat, ch) in region.dissim.iter_mut().zip(channels) {
            stat.insert(ch.values[area as usize]);
        }
        self.assignment[area as usize] = Some(id);
        self.unassigned_live -= 1;
    }

    /// Removes an area from its region, leaving it unassigned. Dissolving the
    /// last member removes the region.
    pub fn remove_from_region(&mut self, engine: &ConstraintEngine<'_>, area: u32) {
        let id = self.assignment[area as usize].expect("area is assigned");
        let channels = engine.instance().objective().channels();
        let region = self.regions[id as usize].as_mut().expect("live region");
        let pos = region
            .members
            .iter()
            .position(|&a| a == area)
            .expect("member present");
        region.members.swap_remove(pos);
        engine.remove_area(&mut region.agg, area);
        for (stat, ch) in region.dissim.iter_mut().zip(channels) {
            stat.remove(ch.values[area as usize]);
        }
        self.assignment[area as usize] = None;
        self.unassigned_live += 1;
        if region.members.is_empty() {
            self.regions[id as usize] = None;
            self.free_slots.push(id);
            self.live -= 1;
        }
    }

    /// Moves an assigned area from its region to another live region.
    pub fn move_area(&mut self, engine: &ConstraintEngine<'_>, area: u32, to: RegionId) {
        self.remove_from_region(engine, area);
        self.add_to_region(engine, to, area);
    }

    /// Merges region `src` into region `dst`; `src` becomes a tombstone.
    pub fn merge_regions(&mut self, _engine: &ConstraintEngine<'_>, dst: RegionId, src: RegionId) {
        debug_assert_ne!(dst, src);
        let src_data = self.regions[src as usize].take().expect("live src region");
        self.free_slots.push(src);
        self.live -= 1;
        let dst_data = self.regions[dst as usize]
            .as_mut()
            .expect("live dst region");
        for &a in &src_data.members {
            self.assignment[a as usize] = Some(dst);
        }
        dst_data.members.extend_from_slice(&src_data.members);
        let mut agg = std::mem::take(&mut dst_data.agg);
        // Absorb aggregates (engine-independent: same slot layout).
        agg.count += src_data.agg.count;
        for (a, b) in agg.sums.iter_mut().zip(&src_data.agg.sums) {
            *a += b;
        }
        for (a, b) in agg.multisets.iter_mut().zip(&src_data.agg.multisets) {
            a.absorb(b);
        }
        dst_data.agg = agg;
        for (dst_stat, src_stat) in dst_data.dissim.iter_mut().zip(&src_data.dissim) {
            dst_stat.absorb(src_stat);
        }
    }

    /// Dissolves a region, unassigning all members.
    pub fn dissolve_region(&mut self, id: RegionId) {
        let data = self.regions[id as usize].take().expect("live region");
        self.free_slots.push(id);
        self.unassigned_live += data.members.len();
        for a in data.members {
            self.assignment[a as usize] = None;
        }
        self.live -= 1;
    }

    /// Ids of live regions adjacent to `id` (sharing a graph edge).
    pub fn neighbor_regions(&self, engine: &ConstraintEngine<'_>, id: RegionId) -> Vec<RegionId> {
        let mut out = Vec::new();
        self.neighbor_regions_into(engine, id, &mut out);
        out
    }

    /// Allocation-free variant of [`Partition::neighbor_regions`]: writes the
    /// sorted, deduplicated neighbor ids into a caller-provided buffer
    /// (cleared first). Hot paths call this in a loop with one scratch `Vec`.
    pub fn neighbor_regions_into(
        &self,
        engine: &ConstraintEngine<'_>,
        id: RegionId,
        out: &mut Vec<RegionId>,
    ) {
        out.clear();
        let graph = engine.instance().graph();
        for &a in &self.region(id).members {
            for &nb in graph.neighbors(a) {
                if let Some(other) = self.assignment[nb as usize] {
                    if other != id {
                        out.push(other);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Ids of live regions adjacent to an (unassigned) area.
    pub fn regions_adjacent_to_area(
        &self,
        engine: &ConstraintEngine<'_>,
        area: u32,
    ) -> Vec<RegionId> {
        let mut out = Vec::new();
        self.regions_adjacent_to_area_into(engine, area, &mut out);
        out
    }

    /// Allocation-free variant of [`Partition::regions_adjacent_to_area`]
    /// (same contract as [`Partition::neighbor_regions_into`]).
    pub fn regions_adjacent_to_area_into(
        &self,
        engine: &ConstraintEngine<'_>,
        area: u32,
        out: &mut Vec<RegionId>,
    ) {
        out.clear();
        out.extend(
            engine
                .instance()
                .graph()
                .neighbors(area)
                .iter()
                .filter_map(|&nb| self.assignment[nb as usize]),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Whether removing `area` keeps its region connected (and non-empty).
    pub fn removal_keeps_connected(&self, engine: &ConstraintEngine<'_>, area: u32) -> bool {
        self.removal_keeps_connected_with(engine, area, &mut SubsetScratch::new())
    }

    /// Allocation-free variant of [`Partition::removal_keeps_connected`]
    /// reusing a caller-held traversal scratch.
    pub fn removal_keeps_connected_with(
        &self,
        engine: &ConstraintEngine<'_>,
        area: u32,
        scratch: &mut SubsetScratch,
    ) -> bool {
        let id = self.assignment[area as usize].expect("assigned");
        subgraph::is_connected_after_removal_with(
            engine.instance().graph(),
            &self.region(id).members,
            area,
            scratch,
        )
    }

    /// Extracts the final member lists of all live regions (sorted members,
    /// regions ordered by their smallest member).
    pub fn extract_regions(&self) -> Vec<Vec<u32>> {
        let mut regions: Vec<Vec<u32>> = self
            .region_ids()
            .map(|id| {
                let mut m = self.region(id).members.clone();
                m.sort_unstable();
                m
            })
            .collect();
        regions.sort_by_key(|m| m[0]);
        regions
    }

    /// Raw assignment slice.
    pub fn assignment(&self) -> &[Option<RegionId>] {
        &self.assignment
    }

    /// Number of region slots ever allocated (live regions plus tombstones);
    /// every live [`RegionId`] is `< region_slots()`. Used to size
    /// per-region side tables (e.g. the tabu articulation cache).
    #[inline]
    pub fn region_slots(&self) -> usize {
        self.regions.len()
    }

    /// Slot-exact snapshot for checkpointing (DESIGN.md §11): per-slot
    /// member lists in stored order plus every path-dependent float
    /// accumulator (`RegionAgg::sums`, per-channel pairwise dissimilarity)
    /// as raw IEEE-754 bits. Canonical state (multisets, sorted value
    /// lists, counts) is omitted — it is a pure function of the members.
    pub fn dump(&self) -> PartitionDump {
        PartitionDump {
            slots: self
                .regions
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|r| RegionSlotDump {
                        members: r.members.clone(),
                        sums: r.agg.sums.iter().map(|s| s.to_bits()).collect(),
                        pairwise: r.dissim.iter().map(|d| d.pairwise().to_bits()).collect(),
                    })
                })
                .collect(),
        }
    }

    /// Restores a partition from a slot-exact [`Partition::dump`]: slot
    /// layout (including tombstones) is preserved, canonical state is
    /// recomputed from the members, and the path-dependent accumulators are
    /// overwritten with the stored bits so incremental updates continue
    /// bit-identically to the dumping run. Tombstones enter the free list
    /// in ascending slot order; pop order is unobservable after a restore
    /// because the checkpointed phases (tabu moves) never allocate slots.
    pub fn from_dump(
        engine: &ConstraintEngine<'_>,
        n: usize,
        dump: &PartitionDump,
    ) -> Result<Partition, String> {
        let channels = engine.instance().objective().channels();
        let mut part = Partition::new(n);
        for (slot, entry) in dump.slots.iter().enumerate() {
            let Some(region) = entry else {
                part.regions.push(None);
                continue;
            };
            if region.members.is_empty() {
                return Err(format!("checkpoint slot {slot}: empty region"));
            }
            if region.pairwise.len() != channels.len() {
                return Err(format!(
                    "checkpoint slot {slot}: {} dissimilarity channels, instance has {}",
                    region.pairwise.len(),
                    channels.len()
                ));
            }
            for &a in &region.members {
                if a as usize >= n {
                    return Err(format!("checkpoint slot {slot}: area {a} out of range"));
                }
                if part.assignment[a as usize].is_some() {
                    return Err(format!("checkpoint slot {slot}: area {a} assigned twice"));
                }
                part.assignment[a as usize] = Some(slot as RegionId);
            }
            let dissim = channels
                .iter()
                .zip(&region.pairwise)
                .map(|(ch, &bits)| {
                    let vals: Vec<f64> = region
                        .members
                        .iter()
                        .map(|&a| ch.values[a as usize])
                        .collect();
                    let mut stat = DissimStat::from_values(&vals);
                    stat.restore_pairwise(f64::from_bits(bits));
                    stat
                })
                .collect();
            let mut agg = engine.compute_fresh(&region.members);
            if agg.sums.len() != region.sums.len() {
                return Err(format!(
                    "checkpoint slot {slot}: {} sum channels, engine has {}",
                    region.sums.len(),
                    agg.sums.len()
                ));
            }
            for (s, &bits) in agg.sums.iter_mut().zip(&region.sums) {
                *s = f64::from_bits(bits);
            }
            part.unassigned_live -= region.members.len();
            part.live += 1;
            part.regions.push(Some(RegionData {
                members: region.members.clone(),
                agg,
                dissim,
            }));
        }
        for (slot, entry) in dump.slots.iter().enumerate() {
            if entry.is_none() {
                part.free_slots.push(slot as RegionId);
            }
        }
        Ok(part)
    }

    /// Rebuilds a partition from an assignment snapshot (region ids need not
    /// be dense; they are re-labeled).
    pub fn from_assignment(
        engine: &ConstraintEngine<'_>,
        assignment: &[Option<RegionId>],
    ) -> Partition {
        // Group by sorting (region, area) pairs instead of hashing: one flat
        // buffer, and the stable sort keeps areas ascending within a region.
        let mut pairs: Vec<(RegionId, u32)> = assignment
            .iter()
            .enumerate()
            .filter_map(|(a, r)| r.map(|r| (r, a as u32)))
            .collect();
        pairs.sort_by_key(|&(r, _)| r);
        let mut part = Partition::new(assignment.len());
        let mut members = Vec::new();
        let mut run = 0;
        while run < pairs.len() {
            let region = pairs[run].0;
            members.clear();
            while run < pairs.len() && pairs[run].0 == region {
                members.push(pairs[run].1);
                run += 1;
            }
            part.create_region(engine, &members);
        }
        part
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;

    fn setup() -> (EmpInstance, ConstraintSet) {
        // 3x3 lattice, POP = index*10, dissim = index.
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs
            .push_column("POP", (0..9).map(|i| i as f64 * 10.0).collect())
            .unwrap();
        attrs
            .push_column("D", (0..9).map(|i| i as f64).collect())
            .unwrap();
        let inst = EmpInstance::new(graph, attrs, "D").unwrap();
        let set = ConstraintSet::new()
            .with(Constraint::sum("POP", 0.0, f64::INFINITY).unwrap())
            .with(Constraint::min("POP", 0.0, f64::INFINITY).unwrap());
        (inst, set)
    }

    #[test]
    fn lifecycle_create_add_remove() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        assert_eq!(part.p(), 0);
        let r = part.create_region(&eng, &[0, 1]);
        assert_eq!(part.p(), 1);
        assert_eq!(part.region_of(0), Some(r));
        assert!(part.is_unassigned(2));
        assert_eq!(eng.value(&part.region(r).agg, 0), 10.0); // SUM POP

        part.add_to_region(&eng, r, 2);
        assert_eq!(eng.value(&part.region(r).agg, 0), 30.0);
        assert_eq!(part.region(r).members.len(), 3);

        part.remove_from_region(&eng, 1);
        assert_eq!(eng.value(&part.region(r).agg, 0), 20.0);
        assert!(part.is_unassigned(1));
        assert_eq!(part.unassigned().len(), 7);
    }

    #[test]
    fn removing_last_member_kills_region() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let r = part.create_region(&eng, &[4]);
        part.remove_from_region(&eng, 4);
        assert_eq!(part.p(), 0);
        assert!(!part.is_live(r));
        // Slot is reused.
        let r2 = part.create_region(&eng, &[5]);
        assert_eq!(r2, r);
    }

    #[test]
    fn free_slots_are_reused_lifo() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let a = part.create_region(&eng, &[0]);
        let b = part.create_region(&eng, &[1]);
        let c = part.create_region(&eng, &[2, 5]);
        // Tombstone a (dissolve) then b (last-member removal): LIFO reuse.
        part.dissolve_region(a);
        part.remove_from_region(&eng, 1);
        assert_eq!(part.create_region(&eng, &[3]), b);
        assert_eq!(part.create_region(&eng, &[4]), a);
        // Merging frees the source slot for the next create.
        part.merge_regions(&eng, c, b);
        assert_eq!(part.create_region(&eng, &[6]), b);
        assert_eq!(part.region_slots(), 3);
        // Fresh slots are appended once the free list is empty.
        assert_eq!(part.create_region(&eng, &[7]), 3);
        assert_eq!(part.region_slots(), 4);
    }

    #[test]
    fn into_variants_match_allocating_queries() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let top = part.create_region(&eng, &[0, 1, 2]);
        let mid = part.create_region(&eng, &[3, 4, 5]);
        let mut buf = Vec::new();
        part.neighbor_regions_into(&eng, top, &mut buf);
        assert_eq!(buf, part.neighbor_regions(&eng, top));
        part.neighbor_regions_into(&eng, mid, &mut buf);
        assert_eq!(buf, part.neighbor_regions(&eng, mid));
        part.regions_adjacent_to_area_into(&eng, 7, &mut buf);
        assert_eq!(buf, part.regions_adjacent_to_area(&eng, 7));
        // Buffer is cleared between calls, not appended to.
        part.regions_adjacent_to_area_into(&eng, 8, &mut buf);
        assert_eq!(buf, vec![mid]);
    }

    #[test]
    fn merge_moves_members_and_aggregates() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let a = part.create_region(&eng, &[0, 1]);
        let b = part.create_region(&eng, &[2, 5]);
        part.merge_regions(&eng, a, b);
        assert_eq!(part.p(), 1);
        assert!(!part.is_live(b));
        assert_eq!(part.region_of(2), Some(a));
        assert_eq!(eng.value(&part.region(a).agg, 0), 80.0);
        assert_eq!(part.region(a).members.len(), 4);
        // Heterogeneity matches fresh computation: d = {0,1,2,5}.
        let expect = crate::heterogeneity::total_heterogeneity(
            inst.dissimilarity(),
            &part.extract_regions(),
        );
        assert!((part.heterogeneity_with(&eng) - expect).abs() < 1e-9);
    }

    #[test]
    fn dissolve_unassigns() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let a = part.create_region(&eng, &[0, 1, 2]);
        part.dissolve_region(a);
        assert_eq!(part.p(), 0);
        assert_eq!(part.unassigned().len(), 9);
    }

    #[test]
    fn neighbor_queries() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        // Lattice 3x3: rows are {0,1,2}, {3,4,5}, {6,7,8}.
        let top = part.create_region(&eng, &[0, 1, 2]);
        let mid = part.create_region(&eng, &[3, 4, 5]);
        assert_eq!(part.neighbor_regions(&eng, top), vec![mid]);
        assert_eq!(part.neighbor_regions(&eng, mid), vec![top]);
        assert_eq!(part.regions_adjacent_to_area(&eng, 7), vec![mid]);
        assert_eq!(part.regions_adjacent_to_area(&eng, 6), vec![mid]);
    }

    #[test]
    fn move_area_between_regions() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let top = part.create_region(&eng, &[0, 1, 2]);
        let mid = part.create_region(&eng, &[3, 4, 5]);
        part.move_area(&eng, 2, mid);
        assert_eq!(part.region_of(2), Some(mid));
        assert_eq!(part.region(top).members.len(), 2);
        assert_eq!(part.region(mid).members.len(), 4);
    }

    #[test]
    fn removal_connectivity_guard() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        // Snake region 0-1-2-5: removing 2 disconnects 5.
        let _r = part.create_region(&eng, &[0, 1, 2, 5]);
        assert!(!part.removal_keeps_connected(&eng, 2));
        assert!(part.removal_keeps_connected(&eng, 5));
        assert!(part.removal_keeps_connected(&eng, 0));
    }

    #[test]
    fn unassigned_count_tracks_all_mutations() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        assert_eq!(part.unassigned_count(), 9);
        let a = part.create_region(&eng, &[0, 1, 2]);
        assert_eq!(part.unassigned_count(), 6);
        part.add_to_region(&eng, a, 5);
        assert_eq!(part.unassigned_count(), 5);
        part.remove_from_region(&eng, 1);
        assert_eq!(part.unassigned_count(), 6);
        let b = part.create_region(&eng, &[3, 4]);
        part.merge_regions(&eng, a, b);
        assert_eq!(part.unassigned_count(), 4);
        part.dissolve_region(a);
        assert_eq!(part.unassigned_count(), 9);
        assert_eq!(part.unassigned_count(), part.unassigned().len());
        assert_eq!(
            part.unassigned_iter().collect::<Vec<_>>(),
            part.unassigned()
        );
    }

    #[test]
    fn from_assignment_groups_sparse_ids() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        // Sparse, unordered region ids with gaps and an unassigned hole.
        let assignment: Vec<Option<RegionId>> = vec![
            Some(7),
            Some(7),
            None,
            Some(2),
            Some(2),
            Some(7),
            None,
            Some(40),
            Some(40),
        ];
        let part = Partition::from_assignment(&eng, &assignment);
        assert_eq!(part.p(), 3);
        assert_eq!(part.unassigned(), vec![2, 6]);
        assert_eq!(part.unassigned_count(), 2);
        assert_eq!(
            part.extract_regions(),
            vec![vec![0, 1, 5], vec![3, 4], vec![7, 8]]
        );
        // Region labels are re-assigned in ascending original-id order, so
        // equal snapshots rebuild identically.
        let again = Partition::from_assignment(&eng, &assignment);
        assert_eq!(part.assignment(), again.assignment());
    }

    #[test]
    fn dump_restore_is_slot_and_bit_exact() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        let a = part.create_region(&eng, &[0, 1]);
        let b = part.create_region(&eng, &[3, 4]);
        let c = part.create_region(&eng, &[6, 7]);
        // Accumulate path-dependent float state, then tombstone a slot.
        part.add_to_region(&eng, b, 5);
        part.move_area(&eng, 5, c);
        part.add_to_region(&eng, c, 8);
        part.dissolve_region(a);
        let dump = part.dump();
        let back = Partition::from_dump(&eng, 9, &dump).unwrap();
        assert_eq!(back.assignment(), part.assignment());
        assert_eq!(back.region_slots(), part.region_slots());
        assert_eq!(back.p(), part.p());
        assert_eq!(back.unassigned_count(), part.unassigned_count());
        for id in part.region_ids() {
            assert_eq!(back.region(id).members, part.region(id).members);
            for (x, y) in back
                .region(id)
                .agg
                .sums
                .iter()
                .zip(&part.region(id).agg.sums)
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in back.region(id).dissim.iter().zip(&part.region(id).dissim) {
                assert_eq!(x.pairwise().to_bits(), y.pairwise().to_bits());
            }
        }
        assert_eq!(
            back.heterogeneity_with(&eng).to_bits(),
            part.heterogeneity_with(&eng).to_bits()
        );
        // A second dump of the restored partition is identical.
        assert_eq!(back.dump(), dump);
        // Corrupt dumps are rejected.
        let mut dup = dump;
        if let Some(slot) = dup.slots[1].as_mut() {
            slot.members.push(6); // already in region c
        }
        assert!(Partition::from_dump(&eng, 9, &dup).is_err());
    }

    #[test]
    fn extract_regions_is_deterministic() {
        let (inst, set) = setup();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let mut part = Partition::new(9);
        part.create_region(&eng, &[5, 2]);
        part.create_region(&eng, &[1, 0]);
        let regions = part.extract_regions();
        assert_eq!(regions, vec![vec![0, 1], vec![2, 5]]);
    }
}
