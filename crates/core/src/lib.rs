//! # emp-core — Enriched Max-P Regionalization (EMP) and the FaCT solver
//!
//! A from-scratch Rust implementation of *"EMP: Max-P Regionalization with
//! Enriched Constraints"* (Kang & Magdy, ICDE 2022).
//!
//! The **EMP problem** groups spatial areas into the maximum number `p` of
//! spatially contiguous regions such that every region satisfies a set of
//! user-defined constraints — SQL-style aggregates (`MIN`, `MAX`, `AVG`,
//! `SUM`, `COUNT`) over spatially extensive attributes with range bounds —
//! while minimizing total region heterogeneity. Unlike the classic
//! max-p-regions problem it supports multiple simultaneous constraints,
//! non-monotonic aggregates, upper bounds, multi-component datasets, and an
//! unassigned set `U_0`.
//!
//! The **FaCT** algorithm solves EMP in three phases:
//!
//! 1. [`feasibility`] — proves (in)feasibility per constraint, filters
//!    invalid areas, selects seed areas;
//! 2. construction — [`grow`] (Step 2: region growing around seeds, driven
//!    by the AVG constraints) and [`adjust`] (Step 3: monotonic adjustments
//!    for SUM/COUNT);
//! 3. [`tabu`] — local search minimizing heterogeneity at fixed `p`.
//!
//! ```
//! use emp_core::prelude::*;
//! use emp_graph::ContiguityGraph;
//!
//! // Four areas in a row with one attribute.
//! let graph = ContiguityGraph::lattice(4, 1);
//! let mut attrs = AttributeTable::new(4);
//! attrs.push_column("POP", vec![120.0, 80.0, 100.0, 90.0]).unwrap();
//! let instance = EmpInstance::new(graph, attrs, "POP").unwrap();
//!
//! // "SUM(POP) >= 150" — written the way the paper's examples read.
//! let constraints = parse_constraints("SUM(POP) >= 150").unwrap();
//!
//! let report = solve(&instance, &constraints, &FactConfig::default()).unwrap();
//! assert!(report.p() >= 1);
//! for region in &report.solution.regions {
//!     let pop: f64 = region.iter().map(|&a| instance.attributes().value(0, a as usize)).sum();
//!     assert!(pop >= 150.0);
//! }
//! ```

#![warn(missing_docs)]

pub mod adjust;
pub mod attr;
pub mod constraint;
pub mod control;
pub mod describe;
pub mod engine;
pub mod error;
pub mod feasibility;
pub mod grow;
pub mod heterogeneity;
pub mod instance;
pub mod objective;
pub mod parse;
pub mod partition;
pub mod solution;
pub mod solver;
pub mod tabu;
mod tabu_par;
pub mod validate;
pub mod value;

pub use attr::AttributeTable;
pub use constraint::{Aggregate, Constraint, ConstraintSet, Family};
pub use control::{
    CancelToken, Checkpoint, CheckpointPhase, Progress, SolveBudget, StopReason, TabuCheckpoint,
};
pub use describe::{describe, SolutionReport};
pub use error::EmpError;
pub use feasibility::{FeasibilityReport, Verdict};
pub use instance::EmpInstance;
pub use objective::{Channel, ObjectiveSpec};
pub use parse::{parse_constraint, parse_constraints};
pub use solution::Solution;
pub use solver::{
    resume, resume_observed, solve, solve_budgeted, solve_budgeted_observed, solve_observed,
    FactConfig, PhaseTimings, SolveOutcome, SolveReport,
};
pub use tabu::{
    tabu_search, tabu_search_budgeted, tabu_search_observed, Move, NeighborhoodState, TabuConfig,
    TabuOutcome, TabuResume, TabuStats,
};
pub use validate::{p_upper_bound, recompute_heterogeneity, solution_feasible, validate_solution};

/// Common imports for EMP users.
pub mod prelude {
    pub use crate::attr::AttributeTable;
    pub use crate::constraint::{Aggregate, Constraint, ConstraintSet};
    pub use crate::control::{CancelToken, Checkpoint, SolveBudget, StopReason};
    pub use crate::error::EmpError;
    pub use crate::instance::EmpInstance;
    pub use crate::parse::{parse_constraint, parse_constraints};
    pub use crate::solution::Solution;
    pub use crate::solver::{solve, solve_budgeted, FactConfig, SolveOutcome, SolveReport};
    pub use crate::validate::validate_solution;
}
