//! Phase 1 of FaCT: the feasibility phase (paper §V-A).
//!
//! A single pass over the areas computes the global aggregates every
//! constraint needs, classifies each constraint's feasibility, filters out
//! *invalid areas* (areas that can never belong to any valid region), and
//! piggybacks seed-area selection for Step 1 of the construction phase.

use crate::constraint::Aggregate;
use crate::engine::ConstraintEngine;
use std::fmt;

/// Feasibility classification of a single constraint.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// The constraint poses no global obstruction.
    Ok,
    /// Feasible only after filtering this many invalid areas into `U_0`.
    RequiresFiltering {
        /// Number of areas this constraint invalidates.
        removed: usize,
    },
    /// No partition of *all* areas can satisfy the constraint (Theorem 3 for
    /// AVG); solutions must leave areas unassigned.
    RequiresUnassigned {
        /// The offending global aggregate value.
        global: f64,
    },
    /// No valid region can exist at all; the instance is infeasible.
    Infeasible {
        /// Human-readable explanation.
        reason: String,
    },
}

impl Verdict {
    /// Whether this verdict makes the whole instance unsolvable.
    pub fn is_hard(&self) -> bool {
        matches!(self, Verdict::Infeasible { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Ok => write!(f, "ok"),
            Verdict::RequiresFiltering { removed } => {
                write!(f, "feasible after filtering {removed} invalid areas")
            }
            Verdict::RequiresUnassigned { global } => write!(
                f,
                "no full partition exists (global aggregate {global}); areas will stay unassigned"
            ),
            Verdict::Infeasible { reason } => write!(f, "infeasible: {reason}"),
        }
    }
}

/// Result of the feasibility phase.
#[derive(Clone, Debug)]
pub struct FeasibilityReport {
    /// One verdict per constraint, in input order.
    pub verdicts: Vec<Verdict>,
    /// Areas that cannot belong to any valid region, sorted ascending
    /// (moved to `U_0` before construction).
    pub invalid_areas: Vec<u32>,
    /// Seed areas for Step 1 (valid areas within the bounds of at least one
    /// MIN/MAX constraint; all valid areas when no extrema constraint
    /// exists), sorted ascending.
    pub seeds: Vec<u32>,
}

impl FeasibilityReport {
    /// Whether any constraint is hard-infeasible.
    pub fn is_infeasible(&self) -> bool {
        self.verdicts.iter().any(Verdict::is_hard)
    }

    /// Reasons of all hard-infeasible constraints.
    pub fn infeasible_reasons(&self) -> Vec<String> {
        self.verdicts
            .iter()
            .filter_map(|v| match v {
                Verdict::Infeasible { reason } => Some(reason.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Runs the feasibility phase.
pub fn feasibility_phase(engine: &ConstraintEngine<'_>) -> FeasibilityReport {
    let n = engine.instance().len();
    let constraints = engine.constraints();

    // Global aggregates per constraint column, one pass conceptually; the
    // column-major table makes per-constraint scans equally cache-friendly.
    let mut verdicts = Vec::with_capacity(constraints.len());
    let mut invalid = vec![false; n];

    for (ci, c) in constraints.iter().enumerate() {
        let verdict = match c.aggregate {
            Aggregate::Avg => {
                let mean = if n == 0 {
                    f64::NAN
                } else {
                    (0..n as u32).map(|a| engine.area_value(ci, a)).sum::<f64>() / n as f64
                };
                if n == 0 || c.contains(mean) {
                    Verdict::Ok
                } else {
                    // Theorem 3: no partition of all areas can satisfy c.
                    Verdict::RequiresUnassigned { global: mean }
                }
            }
            Aggregate::Min => {
                let (gmin, gmax) = column_min_max(engine, ci, n);
                if n > 0 && (gmax < c.low || gmin > c.high) {
                    Verdict::Infeasible {
                        reason: format!(
                            "no area can witness MIN within [{}, {}] (attribute spans [{gmin}, {gmax}])",
                            c.low, c.high
                        ),
                    }
                } else {
                    // Areas below the lower bound poison any region's MIN.
                    let removed = mark_invalid(engine, ci, &mut invalid, |v| v < c.low);
                    if removed > 0 {
                        Verdict::RequiresFiltering { removed }
                    } else {
                        Verdict::Ok
                    }
                }
            }
            Aggregate::Max => {
                let (gmin, gmax) = column_min_max(engine, ci, n);
                if n > 0 && (gmin > c.high || gmax < c.low) {
                    Verdict::Infeasible {
                        reason: format!(
                            "no area can witness MAX within [{}, {}] (attribute spans [{gmin}, {gmax}])",
                            c.low, c.high
                        ),
                    }
                } else {
                    // Areas above the upper bound poison any region's MAX.
                    let removed = mark_invalid(engine, ci, &mut invalid, |v| v > c.high);
                    if removed > 0 {
                        Verdict::RequiresFiltering { removed }
                    } else {
                        Verdict::Ok
                    }
                }
            }
            Aggregate::Sum => {
                let (gmin, _gmax) = column_min_max(engine, ci, n);
                let total: f64 = (0..n as u32).map(|a| engine.area_value(ci, a)).sum();
                if n > 0 && gmin > c.high {
                    Verdict::Infeasible {
                        reason: format!(
                            "every area exceeds the SUM upper bound {} (smallest is {gmin})",
                            c.high
                        ),
                    }
                } else if total < c.low {
                    Verdict::Infeasible {
                        reason: format!(
                            "total {} is below the SUM lower bound {}; even one region over all areas fails",
                            total, c.low
                        ),
                    }
                } else {
                    let removed = mark_invalid(engine, ci, &mut invalid, |v| v > c.high);
                    if removed > 0 {
                        Verdict::RequiresFiltering { removed }
                    } else {
                        Verdict::Ok
                    }
                }
            }
            Aggregate::Count => {
                if (n as f64) < c.low {
                    Verdict::Infeasible {
                        reason: format!(
                            "only {n} areas exist; no region can reach the COUNT lower bound {}",
                            c.low
                        ),
                    }
                } else if c.high < 1.0 {
                    Verdict::Infeasible {
                        reason: format!(
                            "COUNT upper bound {} forbids even single-area regions",
                            c.high
                        ),
                    }
                } else {
                    Verdict::Ok
                }
            }
        };
        verdicts.push(verdict);
    }

    // Seed selection piggybacks on the validity pass: a valid area is a seed
    // if it lies within the bounds of at least one MIN or MAX constraint.
    let extrema: Vec<usize> = engine
        .indices_of(Aggregate::Min)
        .iter()
        .chain(engine.indices_of(Aggregate::Max))
        .copied()
        .collect();
    let mut seeds = Vec::new();
    for a in 0..n as u32 {
        if invalid[a as usize] {
            continue;
        }
        let is_seed = if extrema.is_empty() {
            true
        } else {
            extrema.iter().any(|&ci| {
                let c = &constraints[ci];
                c.contains(engine.area_value(ci, a))
            })
        };
        if is_seed {
            seeds.push(a);
        }
    }

    let invalid_areas: Vec<u32> = (0..n as u32).filter(|&a| invalid[a as usize]).collect();
    FeasibilityReport {
        verdicts,
        invalid_areas,
        seeds,
    }
}

fn column_min_max(engine: &ConstraintEngine<'_>, ci: usize, n: usize) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for a in 0..n as u32 {
        let v = engine.area_value(ci, a);
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

fn mark_invalid<F: Fn(f64) -> bool>(
    engine: &ConstraintEngine<'_>,
    ci: usize,
    invalid: &mut [bool],
    pred: F,
) -> usize {
    let mut removed = 0;
    for a in 0..invalid.len() as u32 {
        if pred(engine.area_value(ci, a)) {
            if !invalid[a as usize] {
                removed += 1;
            }
            invalid[a as usize] = true;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttributeTable;
    use crate::constraint::{Constraint, ConstraintSet};
    use crate::instance::EmpInstance;
    use emp_graph::ContiguityGraph;

    /// Figure 1a's running example: values s = [1, 2, 3, 4, 5, 6, 7, 8, 9]
    /// for areas a1..a9 (index 0..8) on a 3x3 lattice.
    fn paper_instance() -> EmpInstance {
        let graph = ContiguityGraph::lattice(3, 3);
        let mut attrs = AttributeTable::new(9);
        attrs
            .push_column("s", (1..=9).map(|v| v as f64).collect())
            .unwrap();
        EmpInstance::new(graph, attrs, "s").unwrap()
    }

    #[test]
    fn paper_step1_example_filtering_and_seeding() {
        // Constraints {(MIN, s, 2, 4), (MAX, s, 6, 7)} — paper Fig. 1b:
        // a1 (s=1) filtered by MIN lower bound; a8, a9 (s=8,9) filtered by
        // MAX upper bound; seeds = {a2,a3,a4} (MIN) ∪ {a6,a7} (MAX).
        let inst = paper_instance();
        let set = ConstraintSet::new()
            .with(Constraint::min("s", 2.0, 4.0).unwrap())
            .with(Constraint::max("s", 6.0, 7.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert!(!report.is_infeasible());
        assert_eq!(report.invalid_areas, vec![0, 7, 8]); // a1, a8, a9
        assert_eq!(report.seeds, vec![1, 2, 3, 5, 6]); // a2,a3,a4,a6,a7
        assert_eq!(
            report.verdicts[0],
            Verdict::RequiresFiltering { removed: 1 }
        );
        assert_eq!(
            report.verdicts[1],
            Verdict::RequiresFiltering { removed: 2 }
        );
    }

    #[test]
    fn avg_theorem3_detection() {
        let inst = paper_instance(); // mean = 5
        let ok = ConstraintSet::new().with(Constraint::avg("s", 4.0, 6.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &ok).unwrap();
        assert_eq!(feasibility_phase(&eng).verdicts[0], Verdict::Ok);

        let too_high = ConstraintSet::new().with(Constraint::avg("s", 7.0, 9.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &too_high).unwrap();
        let report = feasibility_phase(&eng);
        assert_eq!(
            report.verdicts[0],
            Verdict::RequiresUnassigned { global: 5.0 }
        );
        // Not a hard infeasibility: EMP permits unassigned areas.
        assert!(!report.is_infeasible());
    }

    #[test]
    fn min_hard_infeasibility() {
        let inst = paper_instance();
        // No area has s >= 100.
        let set = ConstraintSet::new().with(Constraint::min("s", 100.0, 200.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert!(report.is_infeasible());
        assert_eq!(report.infeasible_reasons().len(), 1);

        // MIN(s) over all areas is 1 > high 0.5.
        let set = ConstraintSet::new().with(Constraint::min("s", f64::NEG_INFINITY, 0.5).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());
    }

    #[test]
    fn max_hard_infeasibility_and_filtering() {
        let inst = paper_instance();
        // Every area is above 0.5 -> gmin > high.
        let set = ConstraintSet::new().with(Constraint::max("s", f64::NEG_INFINITY, 0.5).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());

        // MAX in [5, 7]: areas with s > 7 (a8, a9) are invalid.
        let set = ConstraintSet::new().with(Constraint::max("s", 5.0, 7.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert_eq!(report.invalid_areas, vec![7, 8]);
        // Seeds for MAX in [5,7]: s in {5,6,7} = areas 4,5,6.
        assert_eq!(report.seeds, vec![4, 5, 6]);
    }

    #[test]
    fn sum_infeasibilities() {
        let inst = paper_instance(); // total 45, min 1
                                     // Lower bound above total.
        let set = ConstraintSet::new().with(Constraint::sum("s", 100.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());

        // Upper bound below every single area.
        let set = ConstraintSet::new().with(Constraint::sum("s", f64::NEG_INFINITY, 0.5).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());

        // Upper bound 7 filters areas with s > 7.
        let set = ConstraintSet::new().with(Constraint::sum("s", 0.0, 7.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert!(!report.is_infeasible());
        assert_eq!(report.invalid_areas, vec![7, 8]);
    }

    #[test]
    fn count_infeasibilities() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::count(10.0, f64::INFINITY).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());

        let set = ConstraintSet::new().with(Constraint::count(0.0, 0.5).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert!(feasibility_phase(&eng).is_infeasible());

        let set = ConstraintSet::new().with(Constraint::count(2.0, 9.0).unwrap());
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        assert_eq!(feasibility_phase(&eng).verdicts[0], Verdict::Ok);
    }

    #[test]
    fn no_extrema_means_all_valid_areas_are_seeds() {
        let inst = paper_instance();
        let set = ConstraintSet::new().with(Constraint::sum("s", 0.0, 7.0).unwrap()); // filters a8, a9
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert_eq!(report.seeds, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn empty_constraint_set_everything_valid() {
        let inst = paper_instance();
        let set = ConstraintSet::new();
        let eng = ConstraintEngine::compile(&inst, &set).unwrap();
        let report = feasibility_phase(&eng);
        assert!(report.verdicts.is_empty());
        assert!(report.invalid_areas.is_empty());
        assert_eq!(report.seeds.len(), 9);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Ok.to_string(), "ok");
        assert!(Verdict::RequiresFiltering { removed: 3 }
            .to_string()
            .contains("3 invalid"));
        assert!(Verdict::RequiresUnassigned { global: 5.0 }
            .to_string()
            .contains("unassigned"));
        assert!(Verdict::Infeasible { reason: "x".into() }.is_hard());
    }
}
