//! Column-major storage for spatially extensive attributes.

use crate::error::EmpError;
use std::collections::HashMap;

/// A table of named `f64` columns, one row per area.
///
/// Attribute values must be finite; spatially extensive attributes in EMP are
/// additionally assumed non-negative by the SUM feasibility analysis (the
/// paper's "assuming that all spatially extensive attribute values are
/// positive"), which [`AttributeTable::push_column`] enforces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AttributeTable {
    rows: usize,
    names: Vec<String>,
    columns: Vec<Vec<f64>>,
    index: HashMap<String, usize>,
}

impl AttributeTable {
    /// Creates an empty table for `rows` areas.
    pub fn new(rows: usize) -> Self {
        AttributeTable {
            rows,
            names: Vec::new(),
            columns: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of rows (areas).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (attributes).
    #[inline]
    pub fn columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in insertion order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Adds a column. The name must be unique, the length must match the row
    /// count, and every value must be finite and non-negative.
    pub fn push_column(
        &mut self,
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<(), EmpError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(EmpError::DuplicateAttribute { name });
        }
        if values.len() != self.rows {
            return Err(EmpError::ColumnLengthMismatch {
                name,
                expected: self.rows,
                actual: values.len(),
            });
        }
        if let Some(pos) = values.iter().position(|v| !v.is_finite() || *v < 0.0) {
            return Err(EmpError::InvalidAttributeValue {
                name,
                row: pos,
                value: values[pos],
            });
        }
        self.index.insert(name.clone(), self.columns.len());
        self.names.push(name);
        self.columns.push(values);
        Ok(())
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Column values by index.
    #[inline]
    pub fn column(&self, idx: usize) -> &[f64] {
        &self.columns[idx]
    }

    /// Column values by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[f64]> {
        self.column_index(name).map(|i| self.column(i))
    }

    /// One cell.
    #[inline]
    pub fn value(&self, col: usize, row: usize) -> f64 {
        self.columns[col][row]
    }

    /// Mean of a column (`0` for an empty table).
    pub fn mean(&self, col: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.columns[col].iter().sum::<f64>() / self.rows as f64
    }

    /// Minimum of a column.
    pub fn min(&self, col: usize) -> f64 {
        self.columns[col]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum of a column.
    pub fn max(&self, col: usize) -> f64 {
        self.columns[col]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of a column.
    pub fn sum(&self, col: usize) -> f64 {
        self.columns[col].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AttributeTable {
        let mut t = AttributeTable::new(3);
        t.push_column("POP", vec![10.0, 20.0, 30.0]).unwrap();
        t.push_column("EMP", vec![5.0, 1.0, 9.0]).unwrap();
        t
    }

    #[test]
    fn basic_access() {
        let t = table();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.columns(), 2);
        assert_eq!(t.column_index("EMP"), Some(1));
        assert_eq!(t.column_index("NOPE"), None);
        assert_eq!(t.value(0, 1), 20.0);
        assert_eq!(t.column_by_name("POP").unwrap(), &[10.0, 20.0, 30.0]);
        assert_eq!(t.names(), &["POP".to_string(), "EMP".to_string()]);
    }

    #[test]
    fn aggregates() {
        let t = table();
        assert_eq!(t.mean(0), 20.0);
        assert_eq!(t.min(1), 1.0);
        assert_eq!(t.max(1), 9.0);
        assert_eq!(t.sum(0), 60.0);
    }

    #[test]
    fn rejects_duplicates() {
        let mut t = table();
        assert!(matches!(
            t.push_column("POP", vec![0.0; 3]),
            Err(EmpError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    fn rejects_length_mismatch() {
        let mut t = table();
        assert!(matches!(
            t.push_column("X", vec![0.0; 2]),
            Err(EmpError::ColumnLengthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_invalid_values() {
        let mut t = AttributeTable::new(2);
        assert!(t.push_column("A", vec![1.0, f64::NAN]).is_err());
        assert!(t.push_column("B", vec![1.0, -0.5]).is_err());
        assert!(t.push_column("C", vec![1.0, f64::INFINITY]).is_err());
        assert!(t.push_column("D", vec![1.0, 0.0]).is_ok());
    }

    #[test]
    fn empty_table_mean_is_zero() {
        let mut t = AttributeTable::new(0);
        t.push_column("A", vec![]).unwrap();
        assert_eq!(t.mean(0), 0.0);
    }
}
